// Command-line utility around the instance substrate:
//
//   instance_tool generate <name> [out.txt]   generate a Homberger-style
//                                             instance and write it in the
//                                             Solomon text format
//   instance_tool info <file-or-name>         print instance statistics
//   instance_tool check <file-or-name>        validate + try to construct
//                                             a feasible solution with I1
//
// <name> follows the Homberger convention, e.g. R1_4_2 or C2_6_10.

#include <cmath>
#include <filesystem>
#include <iostream>
#include <string>

#include "construct/i1_insertion.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "vrptw/generator.hpp"
#include "vrptw/solomon_io.hpp"

namespace {

using namespace tsmo;

Instance load(const std::string& spec) {
  if (std::filesystem::exists(spec)) return read_solomon_file(spec);
  return generate_named(spec);
}

int cmd_generate(const std::string& name, const std::string& out) {
  const Instance inst = generate_named(name);
  if (out.empty() || out == "-") {
    write_solomon(std::cout, inst);
  } else {
    write_solomon_file(out, inst);
    std::cout << "Wrote " << inst.num_customers() << "-customer instance "
              << inst.name() << " to " << out << "\n";
  }
  return 0;
}

int cmd_info(const std::string& spec) {
  const Instance inst = load(spec);
  RunningStats demand, width, dist_to_depot;
  int tight = 0;
  for (int i = 1; i <= inst.num_customers(); ++i) {
    const Site& s = inst.site(i);
    demand.add(s.demand);
    width.add(s.due - s.ready);
    dist_to_depot.add(inst.distance(0, i));
    if (s.due - s.ready < inst.horizon() * 0.5) ++tight;
  }
  TextTable t({"property", "value"});
  t.add_row({"name", inst.name()});
  t.add_row({"customers", std::to_string(inst.num_customers())});
  t.add_row({"vehicles", std::to_string(inst.max_vehicles())});
  t.add_row({"capacity", fmt_double(inst.capacity(), 0)});
  t.add_row({"horizon", fmt_double(inst.horizon())});
  t.add_row({"total demand", fmt_double(inst.total_demand(), 0)});
  t.add_row({"min vehicles (capacity bound)",
             std::to_string(inst.min_vehicles_by_capacity())});
  t.add_row({"mean demand", fmt_double(demand.mean(), 1)});
  t.add_row({"mean window width", fmt_double(width.mean(), 1)});
  t.add_row({"tight windows", std::to_string(tight) + " / " +
                                  std::to_string(inst.num_customers())});
  t.add_row({"mean depot distance", fmt_double(dist_to_depot.mean(), 1)});
  t.print(std::cout);
  return 0;
}

int cmd_check(const std::string& spec) {
  const Instance inst = load(spec);
  try {
    inst.validate();
  } catch (const std::exception& e) {
    std::cout << "INVALID: " << e.what() << "\n";
    return 1;
  }
  Rng rng(1);
  const Solution s = construct_i1_random(inst, rng);
  s.validate();
  std::cout << "Instance " << inst.name() << " is structurally valid.\n"
            << "I1 construction: " << s.vehicles_used() << " vehicles, "
            << "distance " << fmt_double(s.objectives().distance)
            << ", tardiness " << fmt_double(s.objectives().tardiness)
            << (s.feasible() ? " (feasible)" : " (INFEASIBLE)") << "\n";
  return s.feasible() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: instance_tool generate <name> [out.txt]\n"
                 "       instance_tool info  <file-or-name>\n"
                 "       instance_tool check <file-or-name>\n";
    return 64;
  }
  const std::string cmd = argv[1];
  const std::string arg = argv[2];
  try {
    if (cmd == "generate") {
      return cmd_generate(arg, argc > 3 ? argv[3] : "");
    }
    if (cmd == "info") return cmd_info(arg);
    if (cmd == "check") return cmd_check(arg);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << cmd << "\n";
  return 64;
}
