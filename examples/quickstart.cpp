// Quickstart: generate a 100-customer instance, run the sequential
// multiobjective Tabu Search, and print the Pareto front it found.
//
//   ./quickstart [instance-name] [evaluations]
//
// Instance names follow the Homberger convention, e.g. R1_1_1 (random
// positions, tight windows, 100 customers) or C2_4_1 (clustered, wide
// windows, 400 customers).

#include <cstdlib>
#include <iostream>

#include "core/sequential_tsmo.hpp"
#include "util/table.hpp"
#include "vrptw/generator.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "R1_1_1";
  const std::int64_t evals =
      argc > 2 ? std::atoll(argv[2]) : std::int64_t{20000};

  const tsmo::Instance inst = tsmo::generate_named(name);
  std::cout << "Instance " << inst.name() << ": " << inst.num_customers()
            << " customers, fleet " << inst.max_vehicles() << " x capacity "
            << inst.capacity() << ", horizon " << inst.horizon() << "\n";

  tsmo::TsmoParams params;
  params.max_evaluations = evals;
  params.seed = 42;

  const tsmo::RunResult result =
      tsmo::SequentialTsmo(inst, params).run();

  std::cout << "Ran " << result.iterations << " iterations / "
            << result.evaluations << " evaluations ("
            << result.restarts << " restarts) in "
            << tsmo::fmt_double(result.wall_seconds, 2) << "s\n\n";

  tsmo::TextTable table({"#", "distance", "vehicles", "tardiness",
                         "feasible"});
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    table.add_row({std::to_string(i + 1),
                   tsmo::fmt_double(result.front[i].distance),
                   std::to_string(result.front[i].vehicles),
                   tsmo::fmt_double(result.front[i].tardiness),
                   result.solutions[i].feasible() ? "yes" : "no"});
  }
  table.print(std::cout, "Pareto archive (" +
                             std::to_string(result.front.size()) +
                             " solutions)");

  // Show the shortest feasible solution's first few routes and the paper's
  // permutation encoding.
  for (std::size_t i = 0; i < result.solutions.size(); ++i) {
    if (!result.solutions[i].feasible()) continue;
    const tsmo::Solution& s = result.solutions[i];
    std::cout << "\nRoutes of archive member " << (i + 1) << ":\n";
    int shown = 0;
    for (int r = 0; r < s.num_routes() && shown < 5; ++r) {
      if (s.route(r).empty()) continue;
      std::cout << "  vehicle " << r << ":";
      for (int c : s.route(r)) std::cout << ' ' << c;
      std::cout << "  (load " << s.route_stats(r).load << ", dist "
                << tsmo::fmt_double(s.route_stats(r).distance) << ")\n";
      ++shown;
    }
    const auto perm = s.to_permutation();
    std::cout << "  permutation string (first 20 of " << perm.size()
              << "):";
    for (std::size_t k = 0; k < perm.size() && k < 20; ++k) {
      std::cout << ' ' << perm[k];
    }
    std::cout << " ...\n";
    break;
  }
  return 0;
}
