// Fleet-sizing decision support — the use case motivating the paper's
// multiobjective formulation (§II.C): "instead of handing [the customer]
// one solution with a given tour and a number of vehicles, we may have
// found solutions with different travel distances and different numbers of
// vehicles.  The customer ... can then decide, based on concrete
// solutions, which of them is most suitable for his or her business."
//
// This example runs TSMO on a wide-window instance (where the
// distance-vs-fleet tradeoff is real), prints the feasible Pareto front,
// and evaluates it under several cost scenarios (fixed cost per vehicle vs
// variable cost per distance unit) to show how different businesses would
// pick different points from the same front.
//
//   ./fleet_sizing [instance-name] [evaluations]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/sequential_tsmo.hpp"
#include "util/table.hpp"
#include "vrptw/generator.hpp"

namespace {

struct Scenario {
  const char* name;
  double cost_per_km;
  double cost_per_vehicle;  // daily fixed cost (driver + amortization)
};

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "R2_1_1";
  const std::int64_t evals =
      argc > 2 ? std::atoll(argv[2]) : std::int64_t{40000};

  const tsmo::Instance inst = tsmo::generate_named(name);
  std::cout << "Optimizing fleet for " << inst.name() << " ("
            << inst.num_customers() << " customers, capacity "
            << inst.capacity() << ")\n";

  tsmo::TsmoParams params;
  params.max_evaluations = evals;
  params.archive_capacity = 30;
  params.seed = 7;
  const tsmo::RunResult result = tsmo::SequentialTsmo(inst, params).run();

  // Collect the feasible front, sorted by vehicle count.
  std::vector<std::size_t> feasible;
  for (std::size_t i = 0; i < result.solutions.size(); ++i) {
    if (result.solutions[i].feasible()) feasible.push_back(i);
  }
  if (feasible.empty()) {
    std::cout << "No feasible solution found at this budget; increase "
                 "evaluations.\n";
    return 1;
  }
  std::sort(feasible.begin(), feasible.end(),
            [&](std::size_t a, std::size_t b) {
              if (result.front[a].vehicles != result.front[b].vehicles) {
                return result.front[a].vehicles < result.front[b].vehicles;
              }
              return result.front[a].distance < result.front[b].distance;
            });

  tsmo::TextTable front({"option", "vehicles", "distance"});
  for (std::size_t k = 0; k < feasible.size(); ++k) {
    const auto& o = result.front[feasible[k]];
    front.add_row({std::string(1, static_cast<char>('A' + k)),
                   std::to_string(o.vehicles),
                   tsmo::fmt_double(o.distance)});
  }
  front.print(std::cout,
              "Feasible Pareto front (" + std::to_string(feasible.size()) +
                  " options, " + std::to_string(result.evaluations) +
                  " evaluations)");

  // Decision analysis: which option wins under which cost structure?
  const Scenario scenarios[] = {
      {"courier (cheap vans, expensive fuel)", 2.0, 50.0},
      {"balanced operator", 1.0, 150.0},
      {"heavy trucks (dear vehicles)", 0.5, 600.0},
  };
  std::cout << "\n";
  tsmo::TextTable analysis(
      {"scenario", "best option", "vehicles", "distance", "total cost"});
  for (const Scenario& sc : scenarios) {
    double best_cost = 1e300;
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < feasible.size(); ++k) {
      const auto& o = result.front[feasible[k]];
      const double cost = sc.cost_per_km * o.distance +
                          sc.cost_per_vehicle * o.vehicles;
      if (cost < best_cost) {
        best_cost = cost;
        best_k = k;
      }
    }
    const auto& o = result.front[feasible[best_k]];
    analysis.add_row({sc.name,
                      std::string(1, static_cast<char>('A' + best_k)),
                      std::to_string(o.vehicles),
                      tsmo::fmt_double(o.distance),
                      tsmo::fmt_double(best_cost)});
  }
  analysis.print(std::cout, "Which front point each business would pick");
  std::cout << "\nOne unbiased multiobjective run served all three "
               "businesses — no per-customer weight tuning needed (§II.C "
               "of the paper).\n";
  return 0;
}
