// Full-featured solver front-end over the library's public API:
//
//   solver_cli --instance R1_4_1 --algorithm coll --processors 6
//              --evaluations 50000 --json out.json
//
// Instances can be Homberger-style names (generated) or Solomon-format
// files.  Algorithms: seq | sync | async | coll | hybrid | nsga2 |
// weighted.  The threaded variants run on real threads; --simulate runs
// the deterministic virtual-clock versions instead and reports the
// modeled runtime.

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include <unistd.h>

#include "core/adaptive_memory.hpp"
#include "core/mots.hpp"
#include "core/pls.hpp"
#include "core/sequential_tsmo.hpp"
#include "core/weighted_ts.hpp"
#include "evolutionary/nsga2.hpp"
#include "evolutionary/spea2.hpp"
#include "harness/job_runner.hpp"
#include "harness/plot.hpp"
#include "harness/report.hpp"
#include "moo/anytime.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/job_manager.hpp"
#include "obs/obs_server.hpp"
#include "operators/local_search.hpp"
#include "parallel/async_tsmo.hpp"
#include "parallel/hybrid_tsmo.hpp"
#include "parallel/multisearch_tsmo.hpp"
#include "parallel/sync_tsmo.hpp"
#include "sim/sim_tsmo.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"
#include "util/progress.hpp"
#include "util/stop.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "vrptw/generator.hpp"
#include "vrptw/solomon_io.hpp"

namespace {

using namespace tsmo;

Instance load_instance(const std::string& spec) {
  if (std::filesystem::exists(spec)) return read_solomon_file(spec);
  return generate_named(spec);
}

// SIGINT/SIGTERM: the first signal requests a cooperative stop — every
// engine loop keys off SearchState::budget_exhausted(), so the run drains
// and the normal post-run flushing (telemetry, convergence, partial
// RunResult JSON) still happens.  A second signal force-exits with the
// conventional 128+SIGINT status.  Everything here is async-signal-safe:
// atomic stores plus (when armed) one lock-free flight-recorder append.
volatile std::sig_atomic_t g_stop_signals = 0;

void handle_stop_signal(int signo) {
  g_stop_signals = g_stop_signals + 1;  // volatile ++ is deprecated in C++20
  if (g_stop_signals > 1) _exit(130);
  if (obs::FlightRecorder::enabled()) {
    obs::FlightRecorder::instance().record(obs::FlightKind::kStopRequest,
                                           nullptr, signo);
  }
  request_stop();
}

void install_stop_signals() {
  struct sigaction sa{};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// Recorder/watchdog knobs forwarded into the engine option structs.
/// The recorder covers the four TSMO engines (threaded) plus the
/// simulated asynchronous master; other algorithms ignore it.
struct ObserveOptions {
  ConvergenceRecorder* recorder = nullptr;
  bool stall_restart = false;
};

RunResult solve(const std::string& algorithm, const Instance& inst,
                const TsmoParams& params, int processors, bool simulate,
                const ObserveOptions& observe = {}) {
  const CostModel cost = CostModel::for_instance(inst);
  if (algorithm == "seq") {
    return simulate ? run_sim_sequential(inst, params, cost)
                    : SequentialTsmo(inst, params).run();
  }
  if (algorithm == "sync") {
    SyncOptions so;
    so.recorder = observe.recorder;
    return simulate ? run_sim_sync(inst, params, processors, cost)
                    : SyncTsmo(inst, params, processors, so).run();
  }
  if (algorithm == "async") {
    if (simulate) {
      SimAsyncOptions sa;
      sa.recorder = observe.recorder;
      return run_sim_async(inst, params, processors, cost, std::move(sa));
    }
    AsyncOptions ao;
    ao.recorder = observe.recorder;
    ao.stall_restart = observe.stall_restart;
    return AsyncTsmo(inst, params, processors, ao).run();
  }
  if (algorithm == "coll") {
    MultisearchOptions mo;
    mo.recorder = observe.recorder;
    MultisearchResult r =
        simulate ? run_sim_multisearch(inst, params, processors, cost)
                 : MultisearchTsmo(inst, params, processors, mo).run();
    for (const RunResult& s : r.per_searcher) {
      r.merged.sim_seconds = std::max(r.merged.sim_seconds, s.sim_seconds);
    }
    return std::move(r.merged);
  }
  if (algorithm == "hybrid") {
    const int per_island = std::max(2, processors / 2);
    HybridOptions ho;
    ho.recorder = observe.recorder;
    ho.stall_restart = observe.stall_restart;
    MultisearchResult r =
        simulate ? run_sim_hybrid(inst, params, 2, per_island, cost)
                 : HybridTsmo(inst, params, 2, per_island, ho).run();
    for (const RunResult& s : r.per_searcher) {
      r.merged.sim_seconds = std::max(r.merged.sim_seconds, s.sim_seconds);
    }
    return std::move(r.merged);
  }
  if (algorithm == "nsga2") {
    Nsga2Params np;
    np.max_evaluations = params.max_evaluations;
    np.seed = params.seed;
    np.feasibility_screen = params.feasibility_screen;
    return Nsga2(inst, np).run();
  }
  if (algorithm == "weighted") {
    Rng rng(params.seed);
    return weighted_sum_front(inst, params, 5, rng);
  }
  if (algorithm == "spea2") {
    Spea2Params sp;
    sp.max_evaluations = params.max_evaluations;
    sp.seed = params.seed;
    sp.feasibility_screen = params.feasibility_screen;
    return Spea2(inst, sp).run();
  }
  if (algorithm == "mots") {
    MotsParams mp;
    mp.max_evaluations = params.max_evaluations;
    mp.tabu_tenure = params.tabu_tenure;
    mp.seed = params.seed;
    mp.feasibility_screen = params.feasibility_screen;
    return Mots(inst, mp).run();
  }
  if (algorithm == "pls") {
    PlsParams pp;
    pp.max_evaluations = params.max_evaluations;
    pp.archive_capacity = params.archive_capacity;
    pp.seed = params.seed;
    pp.feasibility_screen = params.feasibility_screen;
    return ParetoLocalSearch(inst, pp).run();
  }
  if (algorithm == "amts") {
    AdaptiveMemoryParams ap;
    ap.max_evaluations = params.max_evaluations;
    ap.cycle_evaluations =
        std::max<std::int64_t>(params.max_evaluations / 8, 500);
    ap.inner = params;
    ap.seed = params.seed;
    return AdaptiveMemoryTsmo(inst, ap).run();
  }
  throw std::invalid_argument("unknown algorithm: " + algorithm);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("solver_cli",
                "multiobjective CVRPTW solver (TSMO and comparators)");
  cli.add_option("instance", "Homberger-style name or Solomon file",
                 "R1_1_1");
  cli.add_option("algorithm",
                 "seq | sync | async | coll | hybrid | nsga2 | spea2 | "
                 "mots | amts | pls | weighted",
                 "seq");
  cli.add_option("evaluations", "evaluation budget", "20000");
  cli.add_option("processors", "processors for the parallel variants",
                 "3");
  cli.add_option("neighborhood", "neighborhood size", "200");
  cli.add_option("tenure", "tabu tenure", "20");
  cli.add_option("candidate-k",
                 "candidate-list size for pruned neighborhood sampling "
                 "(0 = legacy uniform sampling)",
                 "0");
  cli.add_option("archive", "archive capacity", "20");
  cli.add_option("restart-after", "unimproving iterations before restart",
                 "100");
  cli.add_option("seed", "random seed", "1");
  cli.add_option("screen", "capacity | local | exact", "local");
  cli.add_option("json", "write the result as JSON to this file", "");
  cli.add_option("svg",
                 "render the best feasible solution's routes to this SVG "
                 "file",
                 "");
  cli.add_option("telemetry-out",
                 "write a Chrome trace here (and a .jsonl metrics snapshot "
                 "next to it), plus the per-phase breakdown",
                 "");
  cli.add_option("convergence-out",
                 "record anytime convergence and write the event stream "
                 "(convergence.jsonl schema) to this file",
                 "");
  cli.add_option("sample-iters",
                 "convergence sample cadence in searcher iterations", "50");
  cli.add_option("sample-ms", "convergence sample cadence in wall ms",
                 "250");
  cli.add_option("stall-ms",
                 "flag a worker stalled after this many ms without a "
                 "heartbeat (0 disables the watchdog)",
                 "0");
  cli.add_option("serve",
                 "serve /metrics /healthz /status /buildinfo on this "
                 "HTTP port (0 disables, -1 picks an ephemeral port)",
                 "0");
  cli.add_option("job-workers",
                 "executor threads of the --serve-jobs pool", "2");
  cli.add_option("job-queue",
                 "admission queue depth of --serve-jobs (submissions "
                 "beyond it get 429 + Retry-After)",
                 "16");
  cli.add_option("postmortem",
                 "arm the crash-safe flight recorder: SIGSEGV/SIGABRT/"
                 "SIGBUS dump a postmortem JSON document to this path",
                 "");
  cli.add_option("flight-slots",
                 "capacity of the flight recorder ring, clamped to "
                 "[16, 65536]",
                 "256");
  cli.add_option("log-level",
                 "structured JSONL log threshold: debug | info | warn | "
                 "error | off (default info, or warn under --quiet)",
                 "");
  cli.add_option("log-out",
                 "append structured JSONL logs to this file instead of "
                 "stderr",
                 "");
  cli.add_option("profile-hz",
                 "arm the sampling CPU profiler at this rate (0 = off); "
                 "export via /debug/profile or --profile-out",
                 "0");
  cli.add_option("profile-out",
                 "write the run's folded-stack profile to this file", "");
  cli.add_option("tsdb-period-ms",
                 "sampling cadence of the in-process time-series store "
                 "(min 10; the raw tier keeps 900 samples, the aggregate "
                 "tier 1440 windows of 10 samples each)",
                 "1000");
  cli.add_option("slo-first-front-ms",
                 "submit-to-first-front latency target of the "
                 "first_front_latency SLO (job plane)",
                 "2000");
  cli.add_flag("serve-jobs",
               "run as a batch solver service instead of solving once: "
               "POST /jobs, GET /jobs/<id>[/result], DELETE /jobs/<id> "
               "on the --serve port (ephemeral when --serve is 0), until "
               "SIGINT/SIGTERM");
  cli.add_flag("progress",
               "live one-line status (iterations/s, hypervolume, archive "
               "size, stalled workers)");
  cli.add_flag("stall-restart",
               "let a watchdog verdict trigger the stalled searcher's "
               "diversification restart (async/hybrid, needs --stall-ms)");
  cli.add_flag("introspect",
               "collect live per-operator/tabu/archive search rates "
               "(/jobs introspection and the result's introspect block)");
  cli.add_flag("simulate", "run on the virtual clock (deterministic)");
  cli.add_flag("polish",
               "post-run VND local search on every archive solution");
  cli.add_flag("no-batch-pricing",
               "price candidate moves one-by-one instead of per batch "
               "(results are bitwise-identical either way)");
  cli.add_flag("no-tsdb",
               "disable the time-series history plane (/api/timeseries, "
               "/dashboard) that --serve and --serve-jobs enable");
  cli.add_flag("no-slo",
               "keep the time-series store but disable SLO burn-rate "
               "evaluation (healthz slo block, tsmo_slo_* metrics)");
  cli.add_flag("quiet", "suppress the front table");
  if (!cli.parse(argc, argv, std::cerr)) return 64;

  // Log plane and flight ring are configured before any mode branches, so
  // both the one-shot solver and the job service share one setup.
  // --quiet dampens the default log level; an explicit --log-level wins.
  log::Level log_level =
      cli.flag("quiet") ? log::Level::kWarn : log::Level::kInfo;
  const std::string log_level_arg = cli.get("log-level");
  if (!log_level_arg.empty() && !log::parse_level(log_level_arg, log_level)) {
    std::cerr << "unknown --log-level: " << log_level_arg << "\n";
    return 64;
  }
  log::set_level(log_level);
  if (!log::set_output(cli.get("log-out"))) {
    std::cerr << "cannot open --log-out " << cli.get("log-out") << "\n";
    return 1;
  }

  try {
    const int flight_slots = static_cast<int>(cli.get_int("flight-slots"));
    obs::FlightRecorder::instance().configure_capacity(flight_slots);
    if (cli.flag("serve-jobs")) {
      // Service mode: no one-shot solve — the process fronts the job
      // plane until a stop signal and drains cleanly (queued jobs become
      // cancelled, running engines stop cooperatively).
      install_stop_signals();
      telemetry::set_enabled(true);
      obs::FlightRecorder::set_enabled(true);
      // Service-wide profiler arm: /debug/profile and /jobs/<id>/profile
      // work for every job without each body opting in.
      if (const int hz = static_cast<int>(cli.get_int("profile-hz"));
          hz > 0) {
        if (!prof::start(hz)) {
          std::cerr << "warning: sampling profiler unavailable on this "
                       "platform; /debug/profile will answer 409\n";
        }
      }
      const std::string postmortem = cli.get("postmortem");
      if (!postmortem.empty() &&
          !obs::install_crash_handlers(postmortem)) {
        std::cerr << "cannot open postmortem path " << postmortem << "\n";
        return 1;
      }

      obs::JobManagerConfig jc;
      jc.queue_capacity =
          static_cast<std::size_t>(std::max<long long>(
              1, cli.get_int("job-queue")));
      jc.executors = static_cast<int>(cli.get_int("job-workers"));
      jc.first_front_target_ms =
          std::max(0.0, cli.get_double("slo-first-front-ms"));
      obs::JobManager jobs(jc, make_job_runner());

      obs::ObsServer::Options so;
      const int serve_port = static_cast<int>(cli.get_int("serve"));
      so.port = serve_port <= 0 ? 0 : serve_port;
      obs::ObsServer server(so);
      server.attach_jobs(&jobs);
      if (!cli.flag("no-tsdb")) {
        obs::ObsServer::HistoryOptions ho;
        ho.tsdb.sample_period_s =
            std::max(10.0, cli.get_double("tsdb-period-ms")) / 1000.0;
        ho.slo = !cli.flag("no-slo");
        server.enable_history(std::move(ho));
      }
      if (!server.start()) {
        std::cerr << "cannot serve: " << server.reason() << "\n";
        return 1;
      }
      jobs.start();
      // One parseable line so scripts can discover an ephemeral port.
      std::cout << "job server on http://127.0.0.1:" << server.port()
                << " (POST /jobs, " << jc.executors << " workers, queue "
                << jc.queue_capacity << ")" << std::endl;
      log::info("cli")
          .msg("serving jobs")
          .i64("port", server.port())
          .i64("executors", jc.executors)
          .i64("queue", static_cast<std::int64_t>(jc.queue_capacity));

      while (!stop_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      std::cout << "stop requested: draining job plane\n";
      jobs.shutdown();
      server.stop();
      const obs::JobManager::Stats stats = jobs.stats();
      std::cout << "jobs: " << stats.accepted << " accepted, "
                << stats.done << " done, " << stats.cancelled
                << " cancelled, " << stats.failed << " failed, "
                << stats.rejected << " rejected\n";
      return 0;
    }

    const Instance inst = load_instance(cli.get("instance"));
    TsmoParams params;
    params.flight_slots = flight_slots;
    params.max_evaluations = cli.get_int("evaluations");
    params.neighborhood_size = static_cast<int>(cli.get_int("neighborhood"));
    params.tabu_tenure = static_cast<int>(cli.get_int("tenure"));
    params.candidate_k = static_cast<int>(cli.get_int("candidate-k"));
    params.batch_pricing = !cli.flag("no-batch-pricing");
    params.archive_capacity = static_cast<int>(cli.get_int("archive"));
    params.restart_after = static_cast<int>(cli.get_int("restart-after"));
    params.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    params.profile_hz = static_cast<int>(cli.get_int("profile-hz"));
    params.introspect = cli.flag("introspect");
    const std::string screen = cli.get("screen");
    params.feasibility_screen =
        screen == "capacity" ? FeasibilityScreen::CapacityOnly
        : screen == "exact"  ? FeasibilityScreen::Exact
                             : FeasibilityScreen::Local;
    const std::string telemetry_out = cli.get("telemetry-out");
    if (!telemetry_out.empty()) {
      params.telemetry = true;
      telemetry::set_enabled(true);  // also covers the comparator solvers
    }
    params.convergence_sample_iters =
        static_cast<int>(cli.get_int("sample-iters"));
    params.convergence_sample_ms = cli.get_double("sample-ms");

    // Serving implies the full observation stack: telemetry for /metrics
    // and a convergence recorder for /status and /healthz.  All of it is
    // pure observation, so fingerprints are unaffected.
    params.serve_port = static_cast<int>(cli.get_int("serve"));
    if (params.serve_port != 0) {
      params.telemetry = true;
      telemetry::set_enabled(true);
    }
    // Direct runs mint a deterministic trace id from the seed, so Chrome
    // traces (--telemetry-out) and flight events carry the same causal
    // correlation id scheme as job-plane runs (DESIGN.md §13).
    params.trace_id = telemetry::derive_trace_id(params.seed);

    const std::string convergence_out = cli.get("convergence-out");
    std::unique_ptr<ConvergenceRecorder> recorder;
    if (!convergence_out.empty() || cli.flag("progress") ||
        cli.get_double("stall-ms") > 0.0 || params.serve_port != 0) {
      ConvergenceConfig cc;
      cc.reference = convergence_reference(inst);
      cc.sample_every_iters = params.convergence_sample_iters;
      cc.sample_every_ms = params.convergence_sample_ms;
      cc.stall_threshold_ms = cli.get_double("stall-ms");
      recorder = std::make_unique<ConvergenceRecorder>(cc);
    }
    ObserveOptions observe;
    observe.recorder = recorder.get();
    observe.stall_restart = cli.flag("stall-restart");

    install_stop_signals();

    const std::string postmortem = cli.get("postmortem");
    if (!postmortem.empty()) {
      if (!obs::install_crash_handlers(postmortem)) {
        std::cerr << "cannot open postmortem path " << postmortem << "\n";
        return 1;
      }
    }
    if (recorder && (obs::FlightRecorder::enabled() ||
                     cli.get_int("serve") != 0)) {
      // Postmortems include the last heartbeat of every worker slot; the
      // board outlives the run (detached before the recorder dies below).
      obs::FlightRecorder::instance().set_heartbeat_board(
          &recorder->board());
      recorder->set_stall_observer([](const StallRecord& s) {
        obs::flight_stall(s.label.c_str(), s.slot, s.progress);
      });
    }

    // Declared after `recorder` so it is destroyed (and stopped) first —
    // handlers hold a recorder pointer until then.
    std::unique_ptr<obs::ObsServer> server;
    if (params.serve_port != 0) {
      obs::ObsServer::Options so;
      so.port = params.serve_port < 0 ? 0 : params.serve_port;
      server = std::make_unique<obs::ObsServer>(so);
      obs::FlightRecorder::set_enabled(true);
      if (!cli.flag("no-tsdb")) {
        obs::ObsServer::HistoryOptions ho;
        ho.tsdb.sample_period_s =
            std::max(10.0, cli.get_double("tsdb-period-ms")) / 1000.0;
        ho.slo = !cli.flag("no-slo");
        server->enable_history(std::move(ho));
      }
      if (!server->start()) {
        std::cerr << "cannot serve: " << server->reason() << "\n";
        return 1;
      }
      server->set_recorder(recorder.get());
      std::cout << "observability server on http://127.0.0.1:"
                << server->port()
                << " (/metrics /healthz /status /buildinfo)\n";
    }

    std::unique_ptr<ProgressPrinter> progress;
    if (cli.flag("progress") && recorder) {
      ConvergenceRecorder* rec = recorder.get();
      progress = std::make_unique<ProgressPrinter>(
          std::cout, 200.0, [rec] { return rec->status_line(); });
    }

    RunResult result =
        solve(cli.get("algorithm"), inst, params,
              static_cast<int>(cli.get_int("processors")),
              cli.flag("simulate"), observe);

    if (progress) progress->finish();
    if (recorder) recorder->finalize(result.front);
    log::info("cli")
        .msg("run finished")
        .str("algorithm", result.algorithm)
        .str("instance", inst.name())
        .hex("trace_id", params.trace_id)
        .i64("evaluations", result.evaluations)
        .f64("wall_seconds", result.wall_seconds);
    result.stopped_early = result.stopped_early || stop_requested();
    if (result.stopped_early) {
      std::cout << "stop requested (signal): flushing partial results\n";
    }
    if (!postmortem.empty()) result.postmortem_path = postmortem;

    if (cli.flag("polish")) {
      // Deterministic VND descent on each archive member; the polished
      // front is re-filtered since polishing can create dominance.
      MoveEngine engine(inst);
      VndOptions vnd;
      vnd.screen = params.feasibility_screen;
      int total_moves = 0;
      for (std::size_t i = 0; i < result.solutions.size(); ++i) {
        total_moves += vnd_improve(engine, result.solutions[i], vnd)
                           .moves_applied;
        result.front[i] = result.solutions[i].objectives();
      }
      for (std::size_t i = result.front.size(); i-- > 0;) {
        bool dominated = false;
        for (std::size_t j = 0; j < result.front.size() && !dominated;
             ++j) {
          if (j == i) continue;
          if (dominates(result.front[j], result.front[i]) ||
              (j < i && result.front[j] == result.front[i])) {
            dominated = true;
          }
        }
        if (dominated) {
          result.front.erase(result.front.begin() +
                             static_cast<std::ptrdiff_t>(i));
          result.solutions.erase(result.solutions.begin() +
                                 static_cast<std::ptrdiff_t>(i));
        }
      }
      std::cout << "polished with " << total_moves << " VND moves\n";
    }

    std::cout << result.algorithm << " on " << inst.name() << ": "
              << result.evaluations << " evaluations, "
              << result.iterations << " iterations, wall "
              << fmt_double(result.wall_seconds, 2) << "s";
    if (result.sim_seconds > 0.0) {
      std::cout << ", virtual " << fmt_double(result.sim_seconds, 1)
                << "s";
    }
    std::cout << "\n";

    if (!cli.flag("quiet")) {
      TextTable table({"#", "distance", "vehicles", "tardiness",
                       "feasible"});
      for (std::size_t i = 0; i < result.front.size(); ++i) {
        table.add_row({std::to_string(i + 1),
                       fmt_double(result.front[i].distance),
                       std::to_string(result.front[i].vehicles),
                       fmt_double(result.front[i].tardiness),
                       i < result.solutions.size() &&
                               result.solutions[i].feasible()
                           ? "yes"
                           : "no"});
      }
      table.print(std::cout, "Pareto archive");
    }

    if (recorder && !cli.flag("quiet") &&
        !recorder->attribution().empty()) {
      TextTable attr(
          {"searcher", "worker", "operator", "insertions", "survived"});
      for (const AttributionRow& row : recorder->attribution()) {
        attr.add_row(
            {std::to_string(row.searcher),
             row.worker < 0 ? "self" : std::to_string(row.worker),
             row.op < 0 ? "init/restart"
                        : to_string(static_cast<MoveType>(row.op)),
             std::to_string(row.insertions), std::to_string(row.survived)});
      }
      attr.print(std::cout, "Archive contributions");
    }

    if (const std::string path = cli.get("svg"); !path.empty()) {
      const Solution* best = nullptr;
      for (std::size_t i = 0; i < result.solutions.size(); ++i) {
        const Solution& s = result.solutions[i];
        if (!s.feasible()) continue;
        if (best == nullptr ||
            s.objectives().distance < best->objectives().distance) {
          best = &s;
        }
      }
      if (best == nullptr && !result.solutions.empty()) {
        best = &result.solutions.front();  // nothing feasible: plot anyway
      }
      if (best != nullptr) {
        std::ofstream f(path);
        SvgOptions options;
        options.title = inst.name() + " — " + result.algorithm + ", " +
                        to_string(best->objectives());
        write_solution_svg(f, *best, options);
        std::cout << "SVG written to " << path << "\n";
      }
    }
    if (!telemetry_out.empty()) {
      const auto snap = telemetry::Registry::instance().snapshot();
      if (!cli.flag("quiet")) print_phase_breakdown(std::cout, snap);
      const telemetry::TelemetrySink sink(telemetry_out);
      if (!sink.write(snap)) {
        std::cerr << "cannot write telemetry to " << sink.trace_path()
                  << "\n";
        return 1;
      }
      result.telemetry_path = sink.trace_path();
      std::cout << "telemetry trace written to " << sink.trace_path()
                << ", snapshot to " << sink.snapshot_path() << "\n";
    }
    if (recorder && !convergence_out.empty()) {
      if (!recorder->write_jsonl(convergence_out)) {
        std::cerr << "cannot write convergence stream to "
                  << convergence_out << "\n";
        return 1;
      }
      std::cout << recorder->samples().size() << " convergence samples ("
                << recorder->insertions().size() << " insertions, "
                << recorder->stalls_flagged()
                << " stalls) written to " << convergence_out << "\n";
    }
    if (const std::string path = cli.get("json"); !path.empty()) {
      std::ofstream f(path);
      if (!f) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      write_run_json(f, inst, result);
      std::cout << "JSON written to " << path << "\n";
    }
    if (const std::string path = cli.get("profile-out"); !path.empty()) {
      if (!prof::enabled()) {
        std::cerr << "--profile-out needs --profile-hz N on a supported "
                     "platform\n";
        return 1;
      }
      std::ofstream f(path);
      if (!f) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      const std::vector<prof::Sample> samples = prof::collect();
      f << prof::fold(samples);
      std::cout << samples.size() << " profile samples ("
                << prof::stats().rate_hz << " Hz) written to " << path
                << " (flamegraph.pl-ready folded stacks)\n";
    }
    if (server) {
      server->set_recorder(nullptr);
      server->stop();
    }
    obs::FlightRecorder::instance().set_heartbeat_board(nullptr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
