#pragma once

// Front-quality metrics.
//
// The coverage column of Tables I-IV uses Zitzler's set coverage metric
// C(A,B): the fraction of solutions in B that are weakly dominated by at
// least one solution in A.  "A value of 100% means that the algorithm in
// question dominates all the solutions found by the other algorithms."
// Hypervolume and spacing are provided for the extended ablation benches.

#include <span>
#include <vector>

#include "vrptw/objectives.hpp"

namespace tsmo {

/// Zitzler set coverage C(A, B) in [0, 1].  C(A, B) == 1 means every
/// member of B is weakly dominated by some member of A.  By convention
/// C(A, {}) = 0 (nothing to cover).
double set_coverage(std::span<const Objectives> a,
                    std::span<const Objectives> b);

/// Strips dominated and duplicate points, returning the non-dominated
/// subset in the input order.
std::vector<Objectives> nondominated_filter(std::span<const Objectives> pts);

/// Exact 3-D hypervolume (minimization) dominated by `front` relative to
/// `reference`; points not strictly below the reference in every objective
/// contribute nothing.  Computed by sweeping the vehicle dimension (small
/// integer range) and accumulating 2-D slices.
double hypervolume(std::span<const Objectives> front,
                   const Objectives& reference);

/// Schott's spacing metric: standard deviation of nearest-neighbour
/// Manhattan distances in objective space (0 for fewer than 2 points).
double spacing(std::span<const Objectives> front);

/// Additive epsilon indicator I_eps+(a, b): the smallest epsilon such that
/// every point of `b` is weakly dominated by some point of `a` shifted by
/// epsilon in every objective.  <= 0 when `a` already covers `b` (strictly
/// negative when it dominates with slack); positive when `a` falls short;
/// +inf when `a` is empty and `b` is not; 0 when `b` is empty.
double epsilon_indicator(std::span<const Objectives> a,
                         std::span<const Objectives> b);

/// Merges several fronts and filters to the combined non-dominated set —
/// used by the multisearch algorithm to report one front per parallel run.
std::vector<Objectives> merge_fronts(
    const std::vector<std::vector<Objectives>>& fronts);

/// Provenance of one surviving merged point: the front (worker) and index
/// within that front it came from.
struct MergeProvenance {
  int front = 0;
  std::size_t index = 0;
};

/// merge_fronts with attribution: returns one provenance entry per
/// *distinct* surviving objective vector, in the merged order.  When the
/// same vector appears in several fronts (e.g. two workers discovered the
/// same solution) exactly one entry survives — the earliest (front, index)
/// in scan order — so contribution counts never double-count duplicates.
/// When `merged_out` is non-null it receives the merged front, identical
/// to merge_fronts() of the same input.
std::vector<MergeProvenance> merge_fronts_attributed(
    const std::vector<std::vector<Objectives>>& fronts,
    std::vector<Objectives>* merged_out = nullptr);

}  // namespace tsmo
