#include "moo/anytime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace tsmo {

namespace {

/// Strictly inside the reference box in every objective — only such points
/// dominate volume and can displace front members.
bool interior(const Objectives& p, const Objectives& ref) noexcept {
  return p.distance < ref.distance && p.vehicles < ref.vehicles &&
         p.tardiness < ref.tardiness;
}

/// JSON string escaping for the few label strings we emit.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles round-trip exactly at max_digits10; infinities become null so
/// the stream stays strict JSON.
void put_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_obj(std::ostream& os, const Objectives& o) {
  os << "[";
  put_double(os, o.distance);
  os << "," << o.vehicles << ",";
  put_double(os, o.tardiness);
  os << "]";
}

}  // namespace

// ---------------------------------------------------------------------------
// convergence_reference
// ---------------------------------------------------------------------------

Objectives convergence_reference(const Instance& inst) {
  // Distance: no route visits a customer by a path longer than the
  // out-and-back depot leg, so 2 * sum of depot round-trips bounds any
  // solution the construction or search would keep; doubled again for
  // slack so early infeasible-leaning fronts still register volume.
  double round_trips = 0.0;
  const int n = inst.num_customers();
  for (int i = 1; i <= n; ++i) {
    round_trips += 2.0 * inst.distance(0, i);
  }
  Objectives ref;
  ref.distance = std::max(2.0 * round_trips, 1.0);
  ref.vehicles = inst.max_vehicles() + 1;
  // Tardiness: a visit can be late by at most the horizon (the depot due
  // date bounds every arrival in any evaluated solution).
  ref.tardiness = std::max(inst.horizon() * static_cast<double>(n), 1.0);
  return ref;
}

// ---------------------------------------------------------------------------
// IncrementalHypervolume
// ---------------------------------------------------------------------------

bool IncrementalHypervolume::add(const Objectives& p) {
  ++seen_;
  last_gain_ = 0.0;
  if (!interior(p, ref_)) return false;
  // O(n) reject path: a point weakly dominated by (or equal to) a front
  // member changes nothing — this is the overwhelmingly common case once
  // the search has warmed up.
  for (const Objectives& q : front_) {
    if (weakly_dominates(q, p)) return false;
  }
  // Accept: drop the members p dominates, then recompute over the new
  // front.  hypervolume() sorts internally, so the cached value is the
  // same bits a from-scratch call over this set would produce.
  front_.erase(std::remove_if(front_.begin(), front_.end(),
                              [&p](const Objectives& q) {
                                return weakly_dominates(p, q);
                              }),
               front_.end());
  front_.push_back(p);
  const double before = value_;
  value_ = hypervolume(front_, ref_);
  ++recomputes_;
  last_gain_ = value_ - before;
  return true;
}

// ---------------------------------------------------------------------------
// ConvergenceRecorder
// ---------------------------------------------------------------------------

ConvergenceRecorder::ConvergenceRecorder(ConvergenceConfig config)
    : config_(std::move(config)),
      epoch_ns_(now_ns()),
      global_hv_(config_.reference) {
  if (config_.stall_threshold_ms > 0.0) {
    const auto threshold = static_cast<std::uint64_t>(
        config_.stall_threshold_ms * 1.0e6);
    const auto interval = static_cast<std::uint64_t>(
        std::max(config_.stall_check_interval_ms, 1.0) * 1.0e6);
    watchdog_ = std::make_unique<StallWatchdog>(
        board_, threshold, interval,
        [this](const StallWatchdog::StallEvent& ev) { on_stall(ev); });
  }
}

ConvergenceRecorder::~ConvergenceRecorder() = default;

ConvergenceRecorder::Searcher* ConvergenceRecorder::attach(
    int searcher_id, const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Searcher& s : searchers_) {
    if (s.id_ == searcher_id) return &s;
  }
  searchers_.emplace_back();
  Searcher& s = searchers_.back();
  s.rec_ = this;
  s.id_ = searcher_id;
  s.slot_ = board_.register_slot(label);
  s.hv_ = IncrementalHypervolume(config_.reference);
  s.last_sample_ns_ = now_ns();
  searcher_slots_.push_back(s.slot_);
  if (static_cast<int>(slot_to_searcher_.size()) <= s.slot_) {
    slot_to_searcher_.resize(static_cast<std::size_t>(s.slot_) + 1, -1);
  }
  slot_to_searcher_[static_cast<std::size_t>(s.slot_)] = searcher_id;
  return &s;
}

int ConvergenceRecorder::register_worker(const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int slot = board_.register_slot(label);
  if (static_cast<int>(slot_to_searcher_.size()) <= slot) {
    slot_to_searcher_.resize(static_cast<std::size_t>(slot) + 1, -1);
  }
  return slot;
}

void ConvergenceRecorder::engine_started(const std::string& engine,
                                         int searchers, int workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  engine_name_ = engine;
  engine_start_ns_ = now_ns();
  LifecycleEvent ev;
  ev.kind = "engine_start";
  ev.engine = engine;
  ev.searchers = searchers;
  ev.workers = workers;
  ev.t_ns = engine_start_ns_ - epoch_ns_;
  lifecycle_.push_back(std::move(ev));
}

void ConvergenceRecorder::engine_finished(std::int64_t iterations) {
  std::lock_guard<std::mutex> lock(mutex_);
  LifecycleEvent ev;
  ev.kind = "engine_finish";
  ev.engine = engine_name_;
  ev.iterations = iterations;
  ev.t_ns = now_ns() - epoch_ns_;
  lifecycle_.push_back(std::move(ev));
}

void ConvergenceRecorder::set_stall_action(
    std::function<void(int)> action) {
  std::lock_guard<std::mutex> lock(mutex_);
  stall_action_ = std::move(action);
}

void ConvergenceRecorder::set_stall_observer(
    std::function<void(const StallRecord&)> observer) {
  std::lock_guard<std::mutex> lock(mutex_);
  stall_observer_ = std::move(observer);
}

void ConvergenceRecorder::on_stall(const StallWatchdog::StallEvent& ev) {
  std::lock_guard<std::mutex> lock(mutex_);
  StallRecord rec;
  rec.slot = ev.slot;
  rec.label = ev.label;
  rec.age_ms = static_cast<double>(ev.age_ns) / 1.0e6;
  rec.progress = ev.progress;
  rec.t_ns = now_ns() - epoch_ns_;
  if (stall_observer_) stall_observer_(rec);
  stalls_.push_back(std::move(rec));
  int searcher_id = -1;
  if (ev.slot >= 0 &&
      ev.slot < static_cast<int>(slot_to_searcher_.size())) {
    searcher_id = slot_to_searcher_[static_cast<std::size_t>(ev.slot)];
  }
  // Invoked under the recorder lock on purpose: set_stall_action(nullptr)
  // then guarantees no in-flight invocation survives its return, so
  // engines can clear the action right before their search states die.
  // Actions must therefore be tiny and never call back into the recorder
  // (request_restart is one atomic store).
  if (stall_action_ && searcher_id >= 0) stall_action_(searcher_id);
}

// --- Searcher ---

bool ConvergenceRecorder::Searcher::sample_due(
    std::int64_t iteration) noexcept {
  const int every = rec_->config_.sample_every_iters;
  if (every > 0 && iteration - last_sample_iter_ >= every) return true;
  const double ms = rec_->config_.sample_every_ms;
  if (ms > 0.0) {
    const std::uint64_t elapsed = now_ns() - last_sample_ns_;
    if (static_cast<double>(elapsed) >= ms * 1.0e6) return true;
  }
  return false;
}

void ConvergenceRecorder::Searcher::sample(std::int64_t iteration,
                                           std::int64_t evaluations,
                                           std::vector<Objectives> archive) {
  last_sample_iter_ = iteration;
  last_sample_ns_ = now_ns();
  ConvergenceSample s;
  s.searcher = id_;
  s.iteration = iteration;
  s.evaluations = evaluations;
  s.t_ns = last_sample_ns_ - rec_->epoch_ns_;
  s.hv = hv_.value();
  s.archive_size = archive.size();
  s.spacing = spacing(archive);
  s.best_feasible_distance = best_feasible_;
  s.eps_to_final = std::numeric_limits<double>::infinity();
  s.archive = std::move(archive);
  std::lock_guard<std::mutex> lock(rec_->mutex_);
  s.hv_global = rec_->global_hv_.value();
  rec_->samples_.push_back(std::move(s));
}

void ConvergenceRecorder::Searcher::record_insertion(
    const Objectives& obj, int op, int worker, std::int64_t iteration) {
  hv_.add(obj);
  if (obj.tardiness <= 0.0 &&
      (best_feasible_ == 0.0 || obj.distance < best_feasible_)) {
    best_feasible_ = obj.distance;
  }
  InsertionEvent ev;
  ev.searcher = id_;
  ev.worker = worker;
  ev.op = op;
  ev.iteration = iteration;
  ev.obj = obj;
  ev.t_ns = now_ns() - rec_->epoch_ns_;
  std::lock_guard<std::mutex> lock(rec_->mutex_);
  rec_->global_hv_.add(obj);
  rec_->insertions_.push_back(std::move(ev));
}

// --- Live view ---

std::string ConvergenceRecorder::status_line() const {
  std::string engine;
  double hv = 0.0;
  std::size_t samples = 0;
  std::uint64_t start_ns = epoch_ns_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    engine = engine_name_;
    hv = global_hv_.value();
    samples = samples_.size();
    if (engine_start_ns_ != 0) start_ns = engine_start_ns_;
  }
  const std::int64_t iters = board_.total_progress();
  const double secs =
      static_cast<double>(now_ns() - start_ns) / 1.0e9;
  const double rate = secs > 1.0e-3 ? static_cast<double>(iters) / secs : 0.0;
  std::ostringstream os;
  os << (engine.empty() ? "tsmo" : engine) << " | it " << iters << " | "
     << static_cast<std::int64_t>(rate) << " it/s | hv ";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", hv);
  os << buf << " | samples " << samples << " | stalled "
     << stalled_count();
  return os.str();
}

int ConvergenceRecorder::stalled_count() const noexcept {
  return watchdog_ ? watchdog_->stalled_count() : 0;
}

std::int64_t ConvergenceRecorder::stalls_flagged() const noexcept {
  return watchdog_ ? watchdog_->stalls_flagged() : 0;
}

double ConvergenceRecorder::global_hv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_hv_.value();
}

ConvergenceRecorder::LiveStatus ConvergenceRecorder::live_status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LiveStatus s;
  s.engine = engine_name_;
  s.hv_global = global_hv_.value();
  s.front = global_hv_.front();
  s.samples = samples_.size();
  s.insertions = insertions_.size();
  s.stalls = stalls_.size();
  s.engine_start_ns = engine_start_ns_;
  return s;
}

// --- Post-run ---

void ConvergenceRecorder::finalize(
    const std::vector<Objectives>& final_front) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return;
  finalized_ = true;
  for (ConvergenceSample& s : samples_) {
    s.eps_to_final = epsilon_indicator(s.archive, final_front);
  }
  for (InsertionEvent& ev : insertions_) {
    ev.survived =
        std::find(final_front.begin(), final_front.end(), ev.obj) !=
        final_front.end();
  }
  // Aggregate per (searcher, worker, op).
  attribution_.clear();
  for (const InsertionEvent& ev : insertions_) {
    AttributionRow* row = nullptr;
    for (AttributionRow& r : attribution_) {
      if (r.searcher == ev.searcher && r.worker == ev.worker &&
          r.op == ev.op) {
        row = &r;
        break;
      }
    }
    if (!row) {
      attribution_.emplace_back();
      row = &attribution_.back();
      row->searcher = ev.searcher;
      row->worker = ev.worker;
      row->op = ev.op;
    }
    ++row->insertions;
    if (ev.survived) ++row->survived;
  }
  std::sort(attribution_.begin(), attribution_.end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              if (a.searcher != b.searcher) return a.searcher < b.searcher;
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.op < b.op;
            });
}

void ConvergenceRecorder::write_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"event\":\"meta\",\"version\":1,\"reference\":";
  put_obj(os, config_.reference);
  os << ",\"sample_every_iters\":" << config_.sample_every_iters
     << ",\"sample_every_ms\":";
  put_double(os, config_.sample_every_ms);
  os << ",\"stall_threshold_ms\":";
  put_double(os, config_.stall_threshold_ms);
  os << ",\"finalized\":" << (finalized_ ? "true" : "false") << "}\n";

  for (const LifecycleEvent& ev : lifecycle_) {
    os << "{\"event\":\"" << ev.kind << "\",\"engine\":\""
       << json_escape(ev.engine) << "\"";
    if (ev.kind == "engine_start") {
      os << ",\"searchers\":" << ev.searchers
         << ",\"workers\":" << ev.workers;
    } else {
      os << ",\"iterations\":" << ev.iterations;
    }
    os << ",\"t_ns\":" << ev.t_ns << "}\n";
  }

  for (const ConvergenceSample& s : samples_) {
    os << "{\"event\":\"sample\",\"searcher\":" << s.searcher
       << ",\"iteration\":" << s.iteration
       << ",\"evaluations\":" << s.evaluations << ",\"t_ns\":" << s.t_ns
       << ",\"hv\":";
    put_double(os, s.hv);
    os << ",\"hv_global\":";
    put_double(os, s.hv_global);
    os << ",\"archive_size\":" << s.archive_size << ",\"spacing\":";
    put_double(os, s.spacing);
    os << ",\"best_feasible_distance\":";
    put_double(os, s.best_feasible_distance);
    os << ",\"eps_to_final\":";
    put_double(os, s.eps_to_final);
    os << "}\n";
  }

  for (const InsertionEvent& ev : insertions_) {
    os << "{\"event\":\"insertion\",\"searcher\":" << ev.searcher
       << ",\"worker\":" << ev.worker << ",\"op\":" << ev.op
       << ",\"iteration\":" << ev.iteration << ",\"obj\":";
    put_obj(os, ev.obj);
    os << ",\"t_ns\":" << ev.t_ns
       << ",\"survived\":" << (ev.survived ? "true" : "false") << "}\n";
  }

  for (const StallRecord& st : stalls_) {
    os << "{\"event\":\"stall\",\"slot\":" << st.slot << ",\"label\":\""
       << json_escape(st.label) << "\",\"age_ms\":";
    put_double(os, st.age_ms);
    os << ",\"progress\":" << st.progress << ",\"t_ns\":" << st.t_ns
       << "}\n";
  }

  for (const AttributionRow& r : attribution_) {
    os << "{\"event\":\"attribution\",\"searcher\":" << r.searcher
       << ",\"worker\":" << r.worker << ",\"op\":" << r.op
       << ",\"insertions\":" << r.insertions
       << ",\"survived\":" << r.survived << "}\n";
  }
}

bool ConvergenceRecorder::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace tsmo
