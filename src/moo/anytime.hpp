#pragma once

// Anytime convergence recording (DESIGN.md §9).
//
// The paper's Tables I-IV report only end-of-run fronts, but its central
// claim — that the asynchronous and collaborative parallelizations reach
// good fronts *faster* — is an anytime property.  The ConvergenceRecorder
// makes it observable: it samples every searcher's Pareto archive on a dual
// schedule (every K iterations AND every T ms of wall clock), maintains
// anytime quality indicators (hypervolume against a fixed per-instance
// reference point, additive epsilon vs. the final front, archive size,
// Schott spacing), tags every archive insertion with the worker/operator
// that produced it, and watches per-worker heartbeats for stalls.
//
// Everything here is pure observation: the recorder never touches a search
// RNG or decision, so deterministic-mode trace/archive fingerprints are
// bitwise-identical with the recorder attached or not (guarded by
// tests/test_golden_seed.cpp).  The one deliberate exception is the
// opt-in stall reaction (AsyncOptions/HybridOptions::stall_restart), which
// routes a watchdog verdict into the engine's existing diversification
// path and is off by default.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "moo/metrics.hpp"
#include "util/progress.hpp"
#include "vrptw/instance.hpp"
#include "vrptw/objectives.hpp"

namespace tsmo {

/// Fixed per-instance reference point for anytime hypervolume: strictly
/// worse than any solution the search can report (one more vehicle than
/// the fleet allows, the single-customer-tour distance bound with margin,
/// and a horizon-scaled tardiness bound).  Deterministic in the instance.
Objectives convergence_reference(const Instance& inst);

/// Anytime hypervolume of the non-dominated set of every point fed in,
/// relative to a fixed reference.  Monotone non-decreasing by construction,
/// which is what makes it a convergence measure (a capacity-bounded archive
/// with crowding eviction is not monotone).
///
/// Incremental contract: the common case — a point that is dominated by,
/// equal to, or outside the tracked front — is an O(|front|) dominance scan
/// with no hypervolume work.  Only a genuine front improvement triggers a
/// sweep over the (small) tracked front, and the cached value is then
/// *bitwise identical* to hypervolume() recomputed from scratch over the
/// same set (fuzz-checked in tests/test_anytime.cpp).
class IncrementalHypervolume {
 public:
  IncrementalHypervolume() = default;
  explicit IncrementalHypervolume(const Objectives& reference)
      : ref_(reference) {}

  const Objectives& reference() const noexcept { return ref_; }

  /// Feeds one point.  Returns true when the tracked front (and therefore
  /// the hypervolume) changed.  Points not strictly inside the reference
  /// box are ignored (they contribute no volume and cannot dominate an
  /// interior point).
  bool add(const Objectives& p);

  double value() const noexcept { return value_; }
  /// Hypervolume gained by the last accepted point (0 if none yet).
  double last_gain() const noexcept { return last_gain_; }
  /// Non-dominated set of all accepted points, in insertion order.
  const std::vector<Objectives>& front() const noexcept { return front_; }

  std::uint64_t points_seen() const noexcept { return seen_; }
  /// Number of full sweeps performed (== number of front changes).
  std::uint64_t recomputes() const noexcept { return recomputes_; }

 private:
  Objectives ref_;
  std::vector<Objectives> front_;
  double value_ = 0.0;
  double last_gain_ = 0.0;
  std::uint64_t seen_ = 0;
  std::uint64_t recomputes_ = 0;
};

struct ConvergenceConfig {
  /// Reference point for the hypervolume indicators (convergence_reference
  /// of the instance under study).
  Objectives reference{1.0e12, 1 << 20, 1.0e12};
  /// Dual sampling schedule: a sample fires every `sample_every_iters`
  /// searcher iterations and additionally once `sample_every_ms` of wall
  /// clock passed since that searcher's last sample.  Mirrors
  /// TsmoParams::convergence_sample_iters / convergence_sample_ms.
  int sample_every_iters = 50;
  double sample_every_ms = 250.0;
  /// Stall watchdog: a worker whose last heartbeat is older than this is
  /// flagged (a structured `stall` event).  <= 0 disables the monitor
  /// thread entirely.
  double stall_threshold_ms = 0.0;
  double stall_check_interval_ms = 25.0;
};

/// One archive-quality sample of one searcher.
struct ConvergenceSample {
  int searcher = 0;
  std::int64_t iteration = 0;
  std::int64_t evaluations = 0;
  std::uint64_t t_ns = 0;  ///< since recorder construction
  /// Monotone anytime hypervolume of this searcher / of all searchers.
  double hv = 0.0;
  double hv_global = 0.0;
  std::size_t archive_size = 0;
  double spacing = 0.0;
  /// Best distance over feasible (tardiness-free) archive insertions so
  /// far; 0 until one exists.
  double best_feasible_distance = 0.0;
  /// Additive epsilon of the sampled archive vs. the *final* front —
  /// +inf until finalize() fills it in.
  double eps_to_final = 0.0;
  std::vector<Objectives> archive;  ///< snapshot (for the epsilon pass)
};

/// One successful archive insertion, tagged with its provenance.
struct InsertionEvent {
  int searcher = 0;
  int worker = -1;  ///< generation worker that produced the move; -1 = self
  int op = -1;      ///< MoveType index; -1 = construction / restart pick
  std::int64_t iteration = 0;
  Objectives obj;
  std::uint64_t t_ns = 0;
  bool survived = false;  ///< member of the final front (set by finalize)
};

/// One watchdog verdict.
struct StallRecord {
  int slot = -1;
  std::string label;
  double age_ms = 0.0;
  std::int64_t progress = 0;
  std::uint64_t t_ns = 0;
};

/// Engine lifecycle marker (start/finish).
struct LifecycleEvent {
  std::string kind;  ///< "engine_start" | "engine_finish"
  std::string engine;
  int searchers = 0;
  int workers = 0;
  std::int64_t iterations = 0;  ///< finish only
  std::uint64_t t_ns = 0;
};

/// Per-(searcher, worker, operator) contribution summary over the run.
struct AttributionRow {
  int searcher = 0;
  int worker = -1;
  int op = -1;
  std::int64_t insertions = 0;  ///< archive insertions produced
  std::int64_t survived = 0;    ///< of those, members of the final front
};

/// Thread-safe recorder shared by every searcher/worker of one run.  The
/// engines drive it through three surfaces:
///   * attach() hands each searcher a Searcher handle whose hot-path calls
///     (heartbeat, sample_due) are lock-free or owner-thread-only;
///   * register_worker()/worker_heartbeat() give generation workers
///     heartbeat-only gauges;
///   * engine_started()/engine_finished() bracket the run.
/// The owner (CLI, bench, test) then calls finalize(final_front) once and
/// write_jsonl() to emit the convergence.jsonl event stream.
class ConvergenceRecorder {
 public:
  explicit ConvergenceRecorder(ConvergenceConfig config);
  ~ConvergenceRecorder();

  ConvergenceRecorder(const ConvergenceRecorder&) = delete;
  ConvergenceRecorder& operator=(const ConvergenceRecorder&) = delete;

  /// Per-searcher handle.  heartbeat() and sample_due() are safe on the
  /// owning searcher thread without locking; sample()/record_insertion()
  /// take the recorder mutex.
  class Searcher {
   public:
    int id() const noexcept { return id_; }

    /// One beat per iteration: feeds the stall watchdog and the live
    /// status line.
    void heartbeat(std::int64_t iteration) noexcept {
      rec_->board_.beat(slot_, iteration);
    }

    /// Cheap dual-schedule check; true when a sample should be taken.
    bool sample_due(std::int64_t iteration) noexcept;

    /// Takes one archive sample (computes the indicators, appends a
    /// sample event) and resets both schedules.
    void sample(std::int64_t iteration, std::int64_t evaluations,
                std::vector<Objectives> archive);

    /// Logs one successful archive insertion with provenance and updates
    /// the searcher's anytime hypervolume tracker.
    void record_insertion(const Objectives& obj, int op, int worker,
                          std::int64_t iteration);

   private:
    friend class ConvergenceRecorder;
    ConvergenceRecorder* rec_ = nullptr;
    int id_ = 0;
    int slot_ = -1;
    IncrementalHypervolume hv_;       // owner thread only
    double best_feasible_ = 0.0;      // owner thread only
    std::int64_t last_sample_iter_ = 0;
    std::uint64_t last_sample_ns_ = 0;
  };

  /// Registers (or looks up) the handle for `searcher_id`.  Safe to call
  /// from multiple threads; each id gets one stable handle.
  Searcher* attach(int searcher_id, const std::string& label);

  /// Heartbeat-only slot for a generation worker ("worker 3" etc.).
  int register_worker(const std::string& label);
  void worker_heartbeat(int slot, std::int64_t progress) noexcept {
    board_.beat(slot, progress);
  }

  void engine_started(const std::string& engine, int searchers, int workers);
  void engine_finished(std::int64_t iterations);

  /// Invoked (on the watchdog thread) with the searcher id of every newly
  /// flagged stalled searcher — the hook the engines use to route a stall
  /// into their diversification path.  Worker (non-searcher) slots do not
  /// trigger it.  Pass nullptr to clear; engines must clear before their
  /// searcher states die.
  void set_stall_action(std::function<void(int searcher_id)> action);

  // --- Live view (any thread) ---
  /// "engine | it 123 | 456 it/s | hv 1.2e+09 | stalled 0" for the
  /// --progress status line.
  std::string status_line() const;
  int stalled_count() const noexcept;
  std::int64_t stalls_flagged() const noexcept;
  double global_hv() const;

  /// Consistent copy of the live run state, taken under the recorder
  /// mutex — the mid-run surface the /status endpoint serves.
  struct LiveStatus {
    std::string engine;
    double hv_global = 0.0;
    std::vector<Objectives> front;  ///< global non-dominated set so far
    std::size_t samples = 0;
    std::size_t insertions = 0;
    std::size_t stalls = 0;
    std::uint64_t engine_start_ns = 0;  ///< 0 until engine_started()
  };
  LiveStatus live_status() const;

  /// Observer invoked (under the recorder lock, on the watchdog thread)
  /// for every recorded stall verdict.  Lets the obs layer route stalls
  /// into the flight recorder without a moo->obs dependency.  Same
  /// contract as set_stall_action: keep it tiny, never call back into
  /// the recorder.
  void set_stall_observer(std::function<void(const StallRecord&)> observer);

  // --- Post-run (quiescent: after the engine returned) ---
  /// Computes eps_to_final for every sample, marks surviving insertions,
  /// and builds the attribution table.  Idempotent guard: second call is
  /// ignored.
  void finalize(const std::vector<Objectives>& final_front);
  bool finalized() const noexcept { return finalized_; }

  const ConvergenceConfig& config() const noexcept { return config_; }
  const HeartbeatBoard& board() const noexcept { return board_; }
  const std::vector<ConvergenceSample>& samples() const noexcept {
    return samples_;
  }
  const std::vector<InsertionEvent>& insertions() const noexcept {
    return insertions_;
  }
  const std::vector<StallRecord>& stalls() const noexcept { return stalls_; }
  const std::vector<AttributionRow>& attribution() const noexcept {
    return attribution_;
  }

  /// Writes the convergence.jsonl event stream: one meta line, lifecycle
  /// events, samples, insertions, stalls, and attribution rows.  Call
  /// after finalize() so epsilon/survival fields are filled.
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl(const std::string& path) const;

 private:
  void on_stall(const StallWatchdog::StallEvent& ev);

  ConvergenceConfig config_;
  std::uint64_t epoch_ns_;
  HeartbeatBoard board_;

  mutable std::mutex mutex_;
  std::deque<Searcher> searchers_;       // stable addresses
  std::vector<int> searcher_slots_;      // board slots of searchers
  std::vector<int> slot_to_searcher_;    // board slot -> searcher id (-1)
  IncrementalHypervolume global_hv_;
  std::vector<ConvergenceSample> samples_;
  std::vector<InsertionEvent> insertions_;
  std::vector<StallRecord> stalls_;
  std::vector<LifecycleEvent> lifecycle_;
  std::vector<AttributionRow> attribution_;
  std::function<void(int)> stall_action_;
  std::function<void(const StallRecord&)> stall_observer_;
  std::string engine_name_;
  std::uint64_t engine_start_ns_ = 0;
  bool finalized_ = false;

  std::unique_ptr<StallWatchdog> watchdog_;  // last member: dies first
};

}  // namespace tsmo
