#include "moo/introspect.hpp"

#include <algorithm>
#include <cstdio>

#include "util/timer.hpp"

namespace tsmo {

namespace {

/// Rate window served by windowed_rates(); checkpoints older than this are
/// pruned (one extra is kept so the window always spans >= kWindowNs once
/// the run is old enough).
constexpr std::uint64_t kWindowNs = 5'000'000'000ULL;
/// Minimum spacing between checkpoints — bounds the deque at ~20 entries.
constexpr std::uint64_t kCheckpointEveryNs = 250'000'000ULL;

double per_second(std::uint64_t delta, double seconds) {
  return seconds > 0.0 ? static_cast<double>(delta) / seconds : 0.0;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, double v, bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::uint64_t IntrospectStats::total_proposed() const noexcept {
  std::uint64_t t = 0;
  for (std::uint64_t v : proposed) t += v;
  return t;
}

std::uint64_t IntrospectStats::total_accepted() const noexcept {
  std::uint64_t t = 0;
  for (std::uint64_t v : accepted) t += v;
  return t;
}

std::uint64_t IntrospectStats::total_improving() const noexcept {
  std::uint64_t t = 0;
  for (std::uint64_t v : improving) t += v;
  return t;
}

std::uint64_t IntrospectStats::archive_attempts() const noexcept {
  return archive_inserts + archive_dominated_rejects +
         archive_duplicate_rejects + archive_crowded_rejects;
}

void IntrospectStats::merge(const IntrospectStats& other) noexcept {
  for (std::size_t i = 0; i < static_cast<std::size_t>(kNumMoveTypes); ++i) {
    proposed[i] += other.proposed[i];
    accepted[i] += other.accepted[i];
    improving[i] += other.improving[i];
  }
  steps += other.steps;
  restarts += other.restarts;
  tabu_checked += other.tabu_checked;
  tabu_hits += other.tabu_hits;
  tabu_aspirations += other.tabu_aspirations;
  tabu_occupancy_now += other.tabu_occupancy_now;
  tabu_tenure = std::max(tabu_tenure, other.tabu_tenure);
  archive_inserts += other.archive_inserts;
  archive_evictions += other.archive_evictions;
  archive_dominated_rejects += other.archive_dominated_rejects;
  archive_duplicate_rejects += other.archive_duplicate_rejects;
  archive_crowded_rejects += other.archive_crowded_rejects;
  archive_size_now += other.archive_size_now;
}

LiveIntrospect::LiveIntrospect(std::string label)
    : label_(std::move(label)) {
  IntrospectRegistry::instance().attach(this);
}

LiveIntrospect::~LiveIntrospect() {
  IntrospectRegistry::instance().detach(this);
}

int LiveIntrospect::register_searcher() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.emplace_back();
  return static_cast<int>(slots_.size()) - 1;
}

void LiveIntrospect::publish(int slot, const IntrospectStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) return;
  slots_[static_cast<std::size_t>(slot)] = stats;
  const std::uint64_t now = now_ns();
  if (last_checkpoint_ns_ != 0 &&
      now - last_checkpoint_ns_ < kCheckpointEveryNs) {
    return;
  }
  last_checkpoint_ns_ = now;
  window_.push_back(Checkpoint{now, totals_locked()});
  // Keep one checkpoint older than the window so rates always span >=
  // kWindowNs once the run has been going that long.
  while (window_.size() > 2 && now - window_[1].t_ns >= kWindowNs) {
    window_.pop_front();
  }
}

IntrospectStats LiveIntrospect::totals_locked() const {
  IntrospectStats t;
  for (const IntrospectStats& s : slots_) t.merge(s);
  return t;
}

IntrospectStats LiveIntrospect::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_locked();
}

IntrospectRates LiveIntrospect::rates_locked(std::uint64_t now) const {
  IntrospectRates r;
  if (window_.empty()) return r;
  const Checkpoint& oldest = window_.front();
  const IntrospectStats latest = totals_locked();
  if (now <= oldest.t_ns) return r;
  const double seconds =
      static_cast<double>(now - oldest.t_ns) / 1e9;
  r.window_seconds = seconds;
  const IntrospectStats& base = oldest.totals;
  r.steps_per_s = per_second(latest.steps - base.steps, seconds);
  const std::uint64_t d_prop = latest.total_proposed() - base.total_proposed();
  const std::uint64_t d_acc = latest.total_accepted() - base.total_accepted();
  const std::uint64_t d_imp =
      latest.total_improving() - base.total_improving();
  r.proposals_per_s = per_second(d_prop, seconds);
  r.acceptance_rate = ratio(d_acc, d_prop);
  r.improving_rate = ratio(d_imp, d_acc);
  r.tabu_hit_rate =
      ratio(latest.tabu_hits - base.tabu_hits,
            latest.tabu_checked - base.tabu_checked);
  r.archive_inserts_per_s =
      per_second(latest.archive_inserts - base.archive_inserts, seconds);
  return r;
}

IntrospectRates LiveIntrospect::windowed_rates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rates_locked(now_ns());
}

std::string LiveIntrospect::to_json() const {
  IntrospectStats totals;
  IntrospectRates rates;
  std::size_t searchers = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    totals = totals_locked();
    rates = rates_locked(now_ns());
    searchers = slots_.size();
  }
  std::string out;
  out += "{\"label\":\"";
  out += label_;  // labels are job ids / engine names: no escaping needed
  out += "\",";
  out += "\"searchers\":";
  out += std::to_string(searchers);
  out += ',';
  append_introspect_json(out, totals, &rates);
  out += '}';
  return out;
}

IntrospectRegistry& IntrospectRegistry::instance() {
  static IntrospectRegistry* reg = new IntrospectRegistry();  // leaked
  return *reg;
}

void IntrospectRegistry::attach(LiveIntrospect* hub) {
  std::lock_guard<std::mutex> lock(mutex_);
  hubs_.push_back(hub);
}

void IntrospectRegistry::detach(LiveIntrospect* hub) {
  std::lock_guard<std::mutex> lock(mutex_);
  hubs_.erase(std::remove(hubs_.begin(), hubs_.end(), hub), hubs_.end());
}

IntrospectStats IntrospectRegistry::aggregate(int* hubs) const {
  std::lock_guard<std::mutex> lock(mutex_);
  IntrospectStats t;
  for (const LiveIntrospect* hub : hubs_) t.merge(hub->totals());
  if (hubs != nullptr) *hubs = static_cast<int>(hubs_.size());
  return t;
}

void append_introspect_json(std::string& out, const IntrospectStats& s,
                            const IntrospectRates* rates) {
  out += "\"operators\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(kNumMoveTypes); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += to_string(static_cast<MoveType>(i));
    out += "\":{";
    bool first = true;
    append_kv(out, "proposed", s.proposed[i], &first);
    append_kv(out, "accepted", s.accepted[i], &first);
    append_kv(out, "improving", s.improving[i], &first);
    out += '}';
  }
  out += "},\"search\":{";
  bool first = true;
  append_kv(out, "steps", s.steps, &first);
  append_kv(out, "restarts", s.restarts, &first);
  append_kv(out, "proposed", s.total_proposed(), &first);
  append_kv(out, "accepted", s.total_accepted(), &first);
  append_kv(out, "improving", s.total_improving(), &first);
  out += "},\"tabu\":{";
  first = true;
  append_kv(out, "checked", s.tabu_checked, &first);
  append_kv(out, "hits", s.tabu_hits, &first);
  append_kv(out, "aspirations", s.tabu_aspirations, &first);
  append_kv(out, "occupancy", s.tabu_occupancy_now, &first);
  append_kv(out, "tenure", s.tabu_tenure, &first);
  out += "},\"archive\":{";
  first = true;
  append_kv(out, "inserts", s.archive_inserts, &first);
  append_kv(out, "evictions", s.archive_evictions, &first);
  append_kv(out, "dominated_rejects", s.archive_dominated_rejects, &first);
  append_kv(out, "duplicate_rejects", s.archive_duplicate_rejects, &first);
  append_kv(out, "crowded_rejects", s.archive_crowded_rejects, &first);
  append_kv(out, "size", s.archive_size_now, &first);
  out += '}';
  if (rates != nullptr) {
    out += ",\"rates\":{";
    first = true;
    append_kv(out, "window_seconds", rates->window_seconds, &first);
    append_kv(out, "steps_per_s", rates->steps_per_s, &first);
    append_kv(out, "proposals_per_s", rates->proposals_per_s, &first);
    append_kv(out, "acceptance_rate", rates->acceptance_rate, &first);
    append_kv(out, "improving_rate", rates->improving_rate, &first);
    append_kv(out, "tabu_hit_rate", rates->tabu_hit_rate, &first);
    append_kv(out, "archive_inserts_per_s", rates->archive_inserts_per_s,
              &first);
    out += '}';
  }
}

}  // namespace tsmo
