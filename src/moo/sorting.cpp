#include "moo/sorting.hpp"

namespace tsmo {

std::vector<int> nondominated_sort(std::span<const Objectives> points) {
  const std::size_t n = points.size();
  std::vector<int> rank(n, -1);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(points[i], points[j])) {
        dominated_by[i].push_back(j);
        ++domination_count[j];
      } else if (dominates(points[j], points[i])) {
        dominated_by[j].push_back(i);
        ++domination_count[i];
      }
    }
  }

  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (domination_count[i] == 0) {
      rank[i] = 0;
      current.push_back(i);
    }
  }
  int level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) {
          rank[j] = level + 1;
          next.push_back(j);
        }
      }
    }
    ++level;
    current = std::move(next);
  }
  return rank;
}

std::vector<std::size_t> first_front(std::span<const Objectives> points) {
  const std::vector<int> ranks = nondominated_sort(points);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (ranks[i] == 0) out.push_back(i);
  }
  return out;
}

}  // namespace tsmo
