#include "moo/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace tsmo {

double set_coverage(std::span<const Objectives> a,
                    std::span<const Objectives> b) {
  if (b.empty()) return 0.0;
  std::size_t covered = 0;
  for (const Objectives& bo : b) {
    for (const Objectives& ao : a) {
      if (weakly_dominates(ao, bo)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(b.size());
}

std::vector<Objectives> nondominated_filter(std::span<const Objectives> pts) {
  std::vector<Objectives> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < pts.size() && keep; ++j) {
      if (j == i) continue;
      if (dominates(pts[j], pts[i])) keep = false;
      // Deduplicate: keep only the first of identical points.
      if (j < i && pts[j] == pts[i]) keep = false;
    }
    if (keep) out.push_back(pts[i]);
  }
  return out;
}

namespace {

/// 2-D hypervolume (minimization of (x, y)) against reference (rx, ry).
double hv2d(std::vector<std::pair<double, double>> pts, double rx,
            double ry) {
  std::erase_if(pts, [&](const auto& p) {
    return p.first >= rx || p.second >= ry;
  });
  if (pts.empty()) return 0.0;
  std::sort(pts.begin(), pts.end());
  double area = 0.0;
  double prev_y = ry;
  for (const auto& [x, y] : pts) {
    if (y < prev_y) {
      area += (rx - x) * (prev_y - y);
      prev_y = y;
    }
  }
  return area;
}

}  // namespace

double hypervolume(std::span<const Objectives> front,
                   const Objectives& reference) {
  // Sweep the (integer) vehicle axis: the region dominated at vehicle
  // level v is the union of 2-D fronts of all points with vehicles <= v.
  std::map<int, std::vector<std::pair<double, double>>> by_vehicles;
  for (const Objectives& o : front) {
    if (o.vehicles >= reference.vehicles || o.distance >= reference.distance ||
        o.tardiness >= reference.tardiness) {
      continue;
    }
    by_vehicles[o.vehicles].push_back({o.distance, o.tardiness});
  }
  if (by_vehicles.empty()) return 0.0;

  double volume = 0.0;
  std::vector<std::pair<double, double>> accumulated;
  int prev_level = 0;
  bool first = true;
  for (auto it = by_vehicles.begin(); it != by_vehicles.end(); ++it) {
    if (!first) {
      const double slab = static_cast<double>(it->first - prev_level);
      volume += slab * hv2d(accumulated, reference.distance,
                            reference.tardiness);
    }
    accumulated.insert(accumulated.end(), it->second.begin(),
                       it->second.end());
    prev_level = it->first;
    first = false;
  }
  const double top_slab =
      static_cast<double>(reference.vehicles - prev_level);
  volume += top_slab * hv2d(accumulated, reference.distance,
                            reference.tardiness);
  return volume;
}

double spacing(std::span<const Objectives> front) {
  const std::size_t n = front.size();
  if (n < 2) return 0.0;
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d =
          std::fabs(front[i].distance - front[j].distance) +
          std::fabs(static_cast<double>(front[i].vehicles -
                                        front[j].vehicles)) +
          std::fabs(front[i].tardiness - front[j].tardiness);
      nearest[i] = std::min(nearest[i], d);
    }
  }
  double mean = 0.0;
  for (double d : nearest) mean += d;
  mean /= static_cast<double>(n);
  double ss = 0.0;
  for (double d : nearest) ss += (d - mean) * (d - mean);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double epsilon_indicator(std::span<const Objectives> a,
                         std::span<const Objectives> b) {
  if (b.empty()) return 0.0;
  if (a.empty()) return std::numeric_limits<double>::infinity();
  double eps = -std::numeric_limits<double>::infinity();
  for (const Objectives& bo : b) {
    // Smallest shift with which *some* a-point covers this b-point.
    double best = std::numeric_limits<double>::infinity();
    for (const Objectives& ao : a) {
      const double need =
          std::max({ao.distance - bo.distance,
                    static_cast<double>(ao.vehicles - bo.vehicles),
                    ao.tardiness - bo.tardiness});
      best = std::min(best, need);
    }
    eps = std::max(eps, best);
  }
  return eps;
}

std::vector<MergeProvenance> merge_fronts_attributed(
    const std::vector<std::vector<Objectives>>& fronts,
    std::vector<Objectives>* merged_out) {
  std::vector<Objectives> all;
  std::vector<MergeProvenance> origin;
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    for (std::size_t i = 0; i < fronts[f].size(); ++i) {
      all.push_back(fronts[f][i]);
      origin.push_back({static_cast<int>(f), i});
    }
  }
  std::vector<MergeProvenance> out;
  std::vector<Objectives> merged;
  for (std::size_t i = 0; i < all.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < all.size() && keep; ++j) {
      if (j == i) continue;
      if (dominates(all[j], all[i])) keep = false;
      // Exactly one survivor per distinct vector: the earliest in scan
      // order wins, regardless of which front contributed it.
      if (j < i && all[j] == all[i]) keep = false;
    }
    if (keep) {
      out.push_back(origin[i]);
      merged.push_back(all[i]);
    }
  }
  if (merged_out) *merged_out = std::move(merged);
  return out;
}

std::vector<Objectives> merge_fronts(
    const std::vector<std::vector<Objectives>>& fronts) {
  std::vector<Objectives> merged;
  merge_fronts_attributed(fronts, &merged);
  return merged;
}

}  // namespace tsmo
