#pragma once

// Fast non-dominated sorting (Deb et al., NSGA-II): partitions a set of
// objective vectors into Pareto ranks — rank 0 is the non-dominated front,
// rank 1 the front after removing rank 0, and so on.

#include <span>
#include <vector>

#include "vrptw/objectives.hpp"

namespace tsmo {

/// Returns the Pareto rank of every point (rank 0 = non-dominated).
/// O(N^2 * M) like the NSGA-II original; N is a population, not an
/// archive, so this is the intended use.
std::vector<int> nondominated_sort(std::span<const Objectives> points);

/// Indices of the rank-0 points (convenience wrapper).
std::vector<std::size_t> first_front(std::span<const Objectives> points);

}  // namespace tsmo
