#pragma once

// Bounded Pareto archive with crowding-distance replacement.
//
// This is the paper's M_archive (§III.B): "A chosen solution can be added
// to the archive when it is not dominated [by] the solutions in the archive
// and when the archive is not full.  If the archive is full, the solution
// is added based on the result of a crowding comparison [NSGA-II]. ...
// A solution that has a low distance value has similar fitness values
// compared to the rest of the solutions and will be deleted."
//
// The archive is generic over the payload so tests can exercise it with
// plain tags while the algorithms store full Solutions.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/profiler.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"
#include "vrptw/objectives.hpp"

namespace tsmo {

enum class ArchiveOutcome {
  Added,            ///< inserted (possibly evicting dominated members)
  AddedEvicted,     ///< inserted into a full archive; most-crowded evicted
  Dominated,        ///< rejected: an existing member dominates it
  Duplicate,        ///< rejected: identical objectives already present
  RejectedCrowded,  ///< rejected: archive full and candidate most crowded
};

/// True when the outcome means the candidate now lives in the archive.
constexpr bool archive_accepted(ArchiveOutcome o) noexcept {
  return o == ArchiveOutcome::Added || o == ArchiveOutcome::AddedEvicted;
}

/// Crowding distances for a set of objective vectors (NSGA-II, Deb et al.):
/// per objective, boundary points get +inf and interior points accumulate
/// the normalized gap between their neighbours.
std::vector<double> crowding_distances(const std::vector<Objectives>& objs);

template <typename T>
class ParetoArchive {
 public:
  struct Entry {
    Objectives obj;
    T value;
  };

  explicit ParetoArchive(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  bool full() const noexcept { return entries_.size() >= capacity_; }

  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// True when `obj` would be accepted (non-dominated, non-duplicate and
  /// either the archive has room or `obj` would not be the most crowded).
  /// Does not modify the archive.
  bool would_improve(const Objectives& obj) const {
    for (const Entry& e : entries_) {
      if (e.obj == obj || dominates(e.obj, obj)) return false;
    }
    return true;
  }

  /// Attempts to insert.  Strong guarantee: on rejection the archive is
  /// unchanged.
  ArchiveOutcome try_add(const Objectives& obj, T value) {
    TSMO_TIME_SCOPE("archive.insert_ns");
    TSMO_PROFILE_FRAME("archive.insert");
    const ArchiveOutcome outcome = try_add_impl(obj, std::move(value));
    switch (outcome) {
      case ArchiveOutcome::Added:
        TSMO_COUNT("archive.insert");
        break;
      case ArchiveOutcome::AddedEvicted:
        TSMO_COUNT("archive.insert");
        TSMO_COUNT("archive.evict_crowded");
        break;
      case ArchiveOutcome::Dominated:
        TSMO_COUNT("archive.reject_dominated");
        break;
      case ArchiveOutcome::Duplicate:
        TSMO_COUNT("archive.reject_duplicate");
        break;
      case ArchiveOutcome::RejectedCrowded:
        TSMO_COUNT("archive.reject_crowded");
        break;
    }
    TSMO_GAUGE_SET("archive.size", entries_.size());
    return outcome;
  }

  /// Uniformly random member; archive must be non-empty.
  const Entry& sample(Rng& rng) const {
    return entries_[rng.below(entries_.size())];
  }

  /// Objective vectors of all members (for metrics).
  std::vector<Objectives> objectives() const {
    std::vector<Objectives> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.obj);
    return out;
  }

  void clear() noexcept { entries_.clear(); }

 private:
  ArchiveOutcome try_add_impl(const Objectives& obj, T value) {
    for (const Entry& e : entries_) {
      if (e.obj == obj) return ArchiveOutcome::Duplicate;
      if (dominates(e.obj, obj)) return ArchiveOutcome::Dominated;
    }
    // Remove members the candidate dominates.
    const std::size_t pruned = std::erase_if(
        entries_, [&](const Entry& e) { return dominates(obj, e.obj); });
    if (pruned > 0) TSMO_COUNT_N("archive.prune_dominated", pruned);
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{obj, std::move(value)});
      return ArchiveOutcome::Added;
    }
    // Full: crowding comparison over members plus the candidate.
    std::vector<Objectives> objs;
    objs.reserve(entries_.size() + 1);
    for (const Entry& e : entries_) objs.push_back(e.obj);
    objs.push_back(obj);
    const std::vector<double> dist = crowding_distances(objs);
    const std::size_t worst = static_cast<std::size_t>(
        std::min_element(dist.begin(), dist.end()) - dist.begin());
    if (worst == entries_.size()) {
      return ArchiveOutcome::RejectedCrowded;  // candidate is most crowded
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(worst));
    entries_.push_back(Entry{obj, std::move(value)});
    return ArchiveOutcome::AddedEvicted;
  }

  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace tsmo
