#pragma once

// Live search-introspection plane (DESIGN.md §14).
//
// Answers "why is the search converging (or not)?" while a run is still in
// flight: per-operator proposal/acceptance/improving-move counts, tabu-list
// occupancy and hit/aspiration pressure, and Pareto-archive churn.
//
// Three layers, mirroring the telemetry split of §8:
//   - IntrospectStats: a plain per-searcher counter block owned by
//     SearchState.  Always maintained (the counters are a handful of
//     increments per step, observed from values the search computes
//     anyway) and copied into RunResult at collect time, so the JSON
//     report carries the summary even when nothing watches live.
//   - LiveIntrospect: an optional shared hub (one per run/job) that
//     searchers publish into at step granularity.  Keeps a short window
//     of timestamped checkpoints so /jobs/<id>/introspect can serve
//     *rates* (steps/s, acceptance %, archive churn/s), not just totals.
//   - IntrospectRegistry: process-wide set of live hubs, aggregated into
//     tsmo_search_* gauges on /metrics.
//
// Nothing in this file feeds back into the search: no RNG draws, no
// decision inputs — golden-seed fingerprints are bitwise-identical with
// introspection on or off (tests/test_introspect.cpp).

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "operators/move.hpp"

namespace tsmo {

/// Plain counter block, one per searcher.  All counts are cumulative over
/// the run; `*_now` fields are the most recent observation.
struct IntrospectStats {
  // Per-operator move funnel: generated -> selected as step -> improved
  // the step objective (indexed by MoveType).
  std::array<std::uint64_t, kNumMoveTypes> proposed{};
  std::array<std::uint64_t, kNumMoveTypes> accepted{};
  std::array<std::uint64_t, kNumMoveTypes> improving{};

  std::uint64_t steps = 0;
  std::uint64_t restarts = 0;

  // Tabu pressure, observed in candidate selection.
  std::uint64_t tabu_checked = 0;
  std::uint64_t tabu_hits = 0;
  std::uint64_t tabu_aspirations = 0;
  std::uint64_t tabu_occupancy_now = 0;
  std::uint64_t tabu_tenure = 0;

  // Archive churn, keyed off the ArchiveOutcome of every try_add.
  std::uint64_t archive_inserts = 0;
  std::uint64_t archive_evictions = 0;
  std::uint64_t archive_dominated_rejects = 0;
  std::uint64_t archive_duplicate_rejects = 0;
  std::uint64_t archive_crowded_rejects = 0;
  std::uint64_t archive_size_now = 0;

  std::uint64_t total_proposed() const noexcept;
  std::uint64_t total_accepted() const noexcept;
  std::uint64_t total_improving() const noexcept;
  std::uint64_t archive_attempts() const noexcept;

  /// Element-wise sum; `*_now` gauges take the sum too (they aggregate
  /// occupancy/size across searchers).
  void merge(const IntrospectStats& other) noexcept;
};

/// Windowed rates derived from two checkpoints ~5 s apart (or the whole
/// run when younger than the window).
struct IntrospectRates {
  double window_seconds = 0.0;
  double steps_per_s = 0.0;
  double proposals_per_s = 0.0;
  double acceptance_rate = 0.0;   ///< accepted / proposed within the window
  double improving_rate = 0.0;    ///< improving / accepted within the window
  double tabu_hit_rate = 0.0;     ///< hits / checked within the window
  double archive_inserts_per_s = 0.0;
};

/// Shared live hub for one run/job.  Searchers register a slot and publish
/// their counter block each step; readers (HTTP handlers, /metrics) take
/// totals and windowed rates under the same mutex.  Registered with the
/// process-wide IntrospectRegistry for its whole lifetime.
class LiveIntrospect {
 public:
  explicit LiveIntrospect(std::string label = {});
  ~LiveIntrospect();

  LiveIntrospect(const LiveIntrospect&) = delete;
  LiveIntrospect& operator=(const LiveIntrospect&) = delete;

  const std::string& label() const noexcept { return label_; }

  /// Reserves a per-searcher slot (cheap; called once per searcher).
  int register_searcher();

  /// Copies `stats` into `slot` and advances the rate window.  Called by
  /// the owning searcher thread once per step.
  void publish(int slot, const IntrospectStats& stats);

  /// Sum over all registered searcher slots.
  IntrospectStats totals() const;

  IntrospectRates windowed_rates() const;

  /// Full live document for GET /jobs/<id>/introspect: totals, rates and
  /// the per-operator funnel with operator names.
  std::string to_json() const;

 private:
  struct Checkpoint {
    std::uint64_t t_ns = 0;
    IntrospectStats totals;
  };

  IntrospectStats totals_locked() const;
  IntrospectRates rates_locked(std::uint64_t now_ns) const;

  mutable std::mutex mutex_;
  std::string label_;
  std::vector<IntrospectStats> slots_;
  std::deque<Checkpoint> window_;
  std::uint64_t last_checkpoint_ns_ = 0;
};

/// Process-wide registry of live hubs, aggregated into the tsmo_search_*
/// gauges on /metrics.  Hubs attach in their constructor and detach in
/// their destructor, so a registered pointer is always safe to aggregate.
class IntrospectRegistry {
 public:
  static IntrospectRegistry& instance();

  void attach(LiveIntrospect* hub);
  void detach(LiveIntrospect* hub);

  /// Totals summed over every attached hub; `hubs` (when non-null)
  /// receives the number of hubs aggregated.
  IntrospectStats aggregate(int* hubs = nullptr) const;

 private:
  IntrospectRegistry() = default;
  mutable std::mutex mutex_;
  std::vector<LiveIntrospect*> hubs_;
};

/// Writes the introspection summary block (shared by RunResult JSON and
/// the live endpoint).
void append_introspect_json(std::string& out, const IntrospectStats& s,
                            const IntrospectRates* rates);

}  // namespace tsmo
