#pragma once

// The paper's medium-term memory M_nondom (§III.B): non-dominated solutions
// collected from past neighborhoods.  When the search stagnates it restarts
// from one of these ("it will attempt to try one of the solutions from this
// memory instead of generating a new neighborhood").
//
// Unlike M_archive this memory is consumable: taking a restart solution
// removes it, so repeated restarts explore different remembered points.

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "vrptw/objectives.hpp"

namespace tsmo {

template <typename T>
class NondomMemory {
 public:
  struct Entry {
    Objectives obj;
    T value;
  };

  explicit NondomMemory(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// True when try_add(obj, ...) would store the candidate.  Lets callers
  /// skip materializing solutions that would be rejected anyway.
  bool would_add(const Objectives& obj) const {
    for (const Entry& e : entries_) {
      if (e.obj == obj || dominates(e.obj, obj)) return false;
    }
    return true;
  }

  /// Inserts unless dominated by or identical to a member; evicts members
  /// the candidate dominates; drops the oldest entry when over capacity.
  /// Returns true when the candidate was stored.
  bool try_add(const Objectives& obj, T value) {
    for (const Entry& e : entries_) {
      if (e.obj == obj || dominates(e.obj, obj)) return false;
    }
    std::erase_if(entries_,
                  [&](const Entry& e) { return dominates(obj, e.obj); });
    entries_.push_back(Entry{obj, std::move(value)});
    if (entries_.size() > capacity_) {
      entries_.erase(entries_.begin());  // FIFO aging of the medium memory
    }
    return true;
  }

  /// Removes and returns a uniformly random entry; memory must be
  /// non-empty.
  Entry take_random(Rng& rng) {
    const std::size_t i = rng.below(entries_.size());
    Entry e = std::move(entries_[i]);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    return e;
  }

  void clear() noexcept { entries_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace tsmo
