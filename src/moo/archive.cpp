#include "moo/archive.hpp"

#include <numeric>

namespace tsmo {

std::vector<double> crowding_distances(const std::vector<Objectives>& objs) {
  const std::size_t n = objs.size();
  std::vector<double> dist(n, 0.0);
  if (n <= 2) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    return dist;
  }

  auto accumulate_dim = [&](auto key) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return key(objs[a]) < key(objs[b]);
    });
    const double lo = key(objs[idx.front()]);
    const double hi = key(objs[idx.back()]);
    dist[idx.front()] = std::numeric_limits<double>::infinity();
    dist[idx.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) return;  // degenerate dimension: no spread to credit
    for (std::size_t i = 1; i + 1 < n; ++i) {
      dist[idx[i]] +=
          (key(objs[idx[i + 1]]) - key(objs[idx[i - 1]])) / (hi - lo);
    }
  };

  accumulate_dim([](const Objectives& o) { return o.distance; });
  accumulate_dim(
      [](const Objectives& o) { return static_cast<double>(o.vehicles); });
  accumulate_dim([](const Objectives& o) { return o.tardiness; });
  return dist;
}

}  // namespace tsmo
