#pragma once

// In-process sampling profiler (DESIGN.md §14).
//
// A POSIX per-thread CPU-time sampler: every profiled thread owns a
// timer_create(CLOCK_THREAD_CPUTIME_ID) timer that delivers SIGPROF to
// exactly that thread at `rate_hz` of *its own* CPU time (idle threads are
// never sampled — CPU-time timers do not advance while a thread blocks).
// The signal handler captures a *shadow stack* of RAII phase frames
// (`ProfileFrame` markers reusing the span taxonomy of DESIGN.md §8:
// run.sync, sync.round, worker.chunk, move.evaluate_batch, channel.wait,
// archive.insert, construct.i1, …) into a per-thread lock-free sample
// ring.  Merging into Brendan-Gregg folded-stack text or speedscope JSON
// happens on the *request* thread (GET /debug/profile, /jobs/<id>/profile)
// — the handler itself performs only lock-free atomic stores, no write(2),
// no allocation, no locks.
//
// Each sample additionally records the thread's ambient causal trace id
// (DESIGN.md §13), captured at the outermost frame push, so the job plane
// can serve per-job profiles by filtering the merged rings.
//
// Gating mirrors the telemetry layer: TSMO_PROFILE_FRAME compiles to
// nothing under TSMO_TELEMETRY=OFF, and at run time a disarmed profiler
// costs one relaxed atomic load per frame.  The profiler never touches the
// search RNG or any decision path, so golden-seed fingerprints are
// bitwise-identical with profiling on or off (tests/test_profiler.cpp).

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/telemetry.hpp"

#ifndef TSMO_TELEMETRY_ENABLED
#define TSMO_TELEMETRY_ENABLED 1
#endif

/// Compile-time mirror of prof::supported(): the sampler needs POSIX
/// per-thread CPU timers with SIGEV_THREAD_ID delivery (Linux).  Tests
/// gate live-capture suites on it.
#if defined(__linux__)
#define TSMO_PROFILER_SUPPORTED 1
#else
#define TSMO_PROFILER_SUPPORTED 0
#endif

namespace tsmo::prof {

/// Deepest shadow stack a sample can carry; pushes beyond it are counted
/// (Stats::frames_truncated) and the sample keeps its outermost frames.
inline constexpr int kMaxFrameDepth = 16;
/// Per-thread sample ring capacity; ~40 s of history at the default rate.
inline constexpr int kSampleRingCapacity = 4096;
/// Fixed thread-slot table.  Slots are immortal (never freed) so a SIGPROF
/// that races thread teardown can only ever touch live memory; exiting
/// threads release their slot for reuse.
inline constexpr int kMaxThreadSlots = 64;
inline constexpr int kDefaultRateHz = 99;

namespace detail {

extern std::atomic<bool> g_enabled;

/// One recorded sample.  Every field is a lock-free atomic: the SIGPROF
/// handler writes cells while merge threads read them, and the per-cell
/// `seq` (absolute index + 1, published last with release order) lets a
/// reader detect torn or overwritten cells and skip them.
struct SampleCell {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<const char*> frames[kMaxFrameDepth];
};

/// Per-thread profiling state.  The shadow stack is touched only by the
/// owning thread and its own (same-thread) signal handler; the ring is
/// written by the handler and read by merge threads via the seq protocol.
struct ThreadSlot {
  // Shadow stack of live ProfileFrame names, outermost first.
  std::atomic<std::uint32_t> stack_depth{0};
  std::atomic<const char*> stack[kMaxFrameDepth];
  /// Ambient trace id, refreshed at every outermost frame push.
  std::atomic<std::uint64_t> trace_id{0};

  SampleCell ring[kSampleRingCapacity];
  std::atomic<std::uint64_t> head{0};  ///< absolute samples written
  std::atomic<std::uint64_t> captured{0};
  std::atomic<std::uint64_t> truncated{0};  ///< stacks deeper than the cap
  std::atomic<bool> in_use{false};
  int index = 0;
};

/// This thread's slot, registering it (and arming its CPU-time timer) on
/// first use after the profiler started.  nullptr when the profiler is
/// off, unsupported, or the slot table is exhausted.
ThreadSlot* local_slot();

}  // namespace detail

/// True while the sampler is armed (one relaxed load — the hot-path gate).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arms the sampler at `hz` (clamped to [1, 1000]).  Threads register
/// lazily at their next ProfileFrame push; idempotent (a second start at a
/// different rate re-arms every thread's timer at the new rate).  Returns
/// false on platforms without per-thread CPU-time timers — the profiler
/// then stays disabled and every endpoint reports it as such.
bool start(int hz = kDefaultRateHz);

/// Disarms sampling.  Per-thread timers stay allocated (they re-arm on the
/// next start()); a late in-flight SIGPROF sees the disabled flag and
/// records nothing.
void stop();

/// Configured rate (0 when stopped).
int rate_hz() noexcept;

/// True when the platform supports the sampler (Linux SIGEV_THREAD_ID).
bool supported() noexcept;

/// /healthz "profiler" section.
struct Stats {
  bool enabled = false;
  int rate_hz = 0;
  std::uint64_t samples_captured = 0;  ///< total over all thread rings
  std::uint64_t ring_drops = 0;        ///< samples rotated out of a ring
  std::uint64_t frames_truncated = 0;  ///< stacks deeper than kMaxFrameDepth
  int threads_registered = 0;          ///< slots currently armed
};
Stats stats();

/// One merged sample: the phase stack (outermost first, interned names
/// from the frame taxonomy) plus provenance.
struct Sample {
  std::uint64_t trace_id = 0;
  int thread_slot = 0;
  std::vector<const char*> frames;
};

/// Per-slot ring positions; a window [cursor(), now] names the samples
/// recorded in between (GET /debug/profile?seconds=N).
struct Cursor {
  std::array<std::uint64_t, kMaxThreadSlots> heads{};
};
Cursor cursor();

/// Every valid sample currently held in the rings, oldest first per slot;
/// `trace_filter` != 0 keeps only samples recorded under that trace id.
std::vector<Sample> collect(std::uint64_t trace_filter = 0);

/// Samples recorded after `since` was taken.
std::vector<Sample> collect_since(const Cursor& since,
                                  std::uint64_t trace_filter = 0);

/// Interns a frame name into the phase taxonomy (idempotent; returns the
/// pointer to push).  Every TSMO_PROFILE_FRAME site registers its literal
/// once, so tests can assert merged samples only carry known phases.
const char* register_frame_name(const char* name);

/// All frame names registered so far, sorted.
std::vector<std::string> frame_taxonomy();

/// Brendan-Gregg folded stacks: one "frame;frame;frame <count>" line per
/// distinct stack, sorted lexicographically.  Sample counts are conserved:
/// the line counts sum to samples.size().
std::string fold(const std::vector<Sample>& samples);

/// speedscope-compatible JSON (https://www.speedscope.app/file-format);
/// one "sampled" profile holding every sample with unit weight.
void write_speedscope(std::ostream& os, const std::vector<Sample>& samples,
                      const std::string& name);

/// RAII phase marker.  Construction pushes `name` (which must be an
/// interned/static string — use the macro) onto this thread's shadow
/// stack; destruction pops it.  Disarmed cost: one relaxed load.
class Frame {
 public:
  explicit Frame(const char* name) noexcept {
    if (!enabled()) return;
    detail::ThreadSlot* s = detail::local_slot();
    if (s == nullptr) return;
    slot_ = s;
    const std::uint32_t d = s->stack_depth.load(std::memory_order_relaxed);
    if (d == 0) {
      s->trace_id.store(telemetry::current_trace().trace_id,
                        std::memory_order_relaxed);
    }
    if (d < static_cast<std::uint32_t>(kMaxFrameDepth)) {
      s->stack[d].store(name, std::memory_order_relaxed);
    } else {
      s->truncated.fetch_add(1, std::memory_order_relaxed);
    }
    // Publish the name before the depth: the same-thread signal handler
    // reads depth first, so it can never observe a stale frame pointer.
    s->stack_depth.store(d + 1, std::memory_order_release);
  }
  ~Frame() noexcept {
    if (slot_ == nullptr) return;
    const std::uint32_t d = slot_->stack_depth.load(std::memory_order_relaxed);
    if (d > 0) slot_->stack_depth.store(d - 1, std::memory_order_release);
  }
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

 private:
  detail::ThreadSlot* slot_ = nullptr;
};

}  // namespace tsmo::prof

// Phase frame macro; compiles out with the rest of the observability layer
// under TSMO_TELEMETRY=OFF.  The name literal is interned once per call
// site (thread-safe function-local static).
#if TSMO_TELEMETRY_ENABLED

#define TSMO_PROF_CONCAT_IMPL(a, b) a##b
#define TSMO_PROF_CONCAT(a, b) TSMO_PROF_CONCAT_IMPL(a, b)

#define TSMO_PROFILE_FRAME(name_literal)                                      \
  static const char* TSMO_PROF_CONCAT(tsmo_prof_name_, __LINE__) =            \
      ::tsmo::prof::register_frame_name(name_literal);                        \
  ::tsmo::prof::Frame TSMO_PROF_CONCAT(tsmo_prof_frame_, __LINE__)(           \
      TSMO_PROF_CONCAT(tsmo_prof_name_, __LINE__))

#else  // !TSMO_TELEMETRY_ENABLED

#define TSMO_PROFILE_FRAME(name_literal) \
  do {                                   \
  } while (0)

#endif  // TSMO_TELEMETRY_ENABLED
