#include "util/profiler.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <ostream>

#if defined(__linux__)
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
// glibc exposes the SIGEV_THREAD_ID target tid through this accessor macro;
// provide it for libcs that predate the name.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif

namespace tsmo::prof {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::atomic<int> g_rate_hz{0};
/// Bumped on every start(); threads compare it to re-arm their timer at
/// the current rate after a stop()/start() cycle or a rate change.
std::atomic<std::uint64_t> g_epoch{0};

/// Guards the slot table, the handler installation and the taxonomy.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

/// Immortal slot table: entries are heap-allocated on first use and never
/// freed, so a signal racing thread teardown can only touch live memory.
detail::ThreadSlot* g_slots[kMaxThreadSlots] = {};
std::atomic<int> g_slot_count{0};

std::vector<std::string>& taxonomy() {
  static std::vector<std::string> names;
  return names;
}

#if TSMO_PROFILER_SUPPORTED

bool g_handler_installed = false;

/// SIGPROF handler: async-signal-safe by construction — it performs only
/// lock-free atomic loads/stores on the slot delivered via sival_ptr (the
/// thread's own state; the shadow stack is same-thread data).  No write(2),
/// no allocation, no locks, no errno.
void sigprof_handler(int /*signo*/, siginfo_t* info, void* /*uctx*/) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  if (info == nullptr) return;
  auto* slot = static_cast<detail::ThreadSlot*>(info->si_value.sival_ptr);
  if (slot == nullptr) return;
  const std::uint32_t depth =
      slot->stack_depth.load(std::memory_order_acquire);
  if (depth == 0) return;  // outside every phase: nothing to attribute
  const std::uint64_t idx = slot->head.fetch_add(1, std::memory_order_relaxed);
  detail::SampleCell& cell =
      slot->ring[idx % static_cast<std::uint64_t>(kSampleRingCapacity)];
  // Invalidate first so a concurrent reader can never stitch old and new
  // halves together; the final seq store publishes the cell.
  cell.seq.store(0, std::memory_order_release);
  const std::uint32_t n =
      std::min(depth, static_cast<std::uint32_t>(kMaxFrameDepth));
  for (std::uint32_t i = 0; i < n; ++i) {
    cell.frames[i].store(slot->stack[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  cell.depth.store(n, std::memory_order_relaxed);
  cell.trace_id.store(slot->trace_id.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  cell.seq.store(idx + 1, std::memory_order_release);
  slot->captured.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread timer registration.  The destructor runs at thread exit:
/// it disarms and deletes the timer, then releases the slot for reuse
/// (ring contents are kept so short-lived workers stay mergeable).
struct ThreadReg {
  detail::ThreadSlot* slot = nullptr;
  timer_t timer{};
  bool timer_created = false;
  std::uint64_t armed_epoch = 0;
  bool failed = false;
  std::uint64_t failed_epoch = 0;

  ~ThreadReg() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    if (timer_created) {
      timer_delete(timer);
      timer_created = false;
    }
    if (slot != nullptr) {
      slot->stack_depth.store(0, std::memory_order_release);
      slot->in_use.store(false, std::memory_order_release);
      slot = nullptr;
    }
  }
};

thread_local ThreadReg t_reg;

detail::ThreadSlot* acquire_slot_locked() {
  const int count = g_slot_count.load(std::memory_order_relaxed);
  for (int i = 0; i < count; ++i) {
    detail::ThreadSlot* s = g_slots[i];
    if (s != nullptr && !s->in_use.load(std::memory_order_acquire)) {
      s->stack_depth.store(0, std::memory_order_relaxed);
      s->trace_id.store(0, std::memory_order_relaxed);
      s->in_use.store(true, std::memory_order_release);
      return s;
    }
  }
  if (count >= kMaxThreadSlots) return nullptr;
  auto* s = new detail::ThreadSlot();  // immortal, see file header
  s->index = count;
  s->in_use.store(true, std::memory_order_release);
  g_slots[count] = s;
  g_slot_count.store(count + 1, std::memory_order_release);
  return s;
}

bool arm_timer_locked(ThreadReg& reg, int hz) {
  if (!reg.timer_created) {
    struct sigevent sev{};
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_value.sival_ptr = reg.slot;
    sev.sigev_notify_thread_id =
        static_cast<pid_t>(::syscall(SYS_gettid));
    if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &reg.timer) != 0) {
      return false;
    }
    reg.timer_created = true;
  }
  const long interval_ns = 1000000000L / std::max(hz, 1);
  struct itimerspec its{};
  its.it_interval.tv_sec = interval_ns / 1000000000L;
  its.it_interval.tv_nsec = interval_ns % 1000000000L;
  its.it_value = its.it_interval;
  return timer_settime(reg.timer, 0, &its, nullptr) == 0;
}

#endif  // TSMO_PROFILER_SUPPORTED

/// Reads every valid sample of one slot whose absolute index is >= `from`.
void collect_slot(const detail::ThreadSlot& slot, std::uint64_t from,
                  std::uint64_t trace_filter, std::vector<Sample>& out) {
  const std::uint64_t head = slot.head.load(std::memory_order_acquire);
  const auto cap = static_cast<std::uint64_t>(kSampleRingCapacity);
  std::uint64_t lo = head > cap ? head - cap : 0;
  lo = std::max(lo, from);
  for (std::uint64_t idx = lo; idx < head; ++idx) {
    const detail::SampleCell& cell = slot.ring[idx % cap];
    if (cell.seq.load(std::memory_order_acquire) != idx + 1) continue;
    Sample s;
    s.trace_id = cell.trace_id.load(std::memory_order_relaxed);
    s.thread_slot = slot.index;
    const std::uint32_t depth = std::min(
        cell.depth.load(std::memory_order_relaxed),
        static_cast<std::uint32_t>(kMaxFrameDepth));
    s.frames.reserve(depth);
    for (std::uint32_t i = 0; i < depth; ++i) {
      const char* name = cell.frames[i].load(std::memory_order_relaxed);
      if (name != nullptr) s.frames.push_back(name);
    }
    // Validate after the payload copy: a wrapped writer bumps seq past
    // idx + 1 (via the zero store), exposing the torn read.
    if (cell.seq.load(std::memory_order_acquire) != idx + 1) continue;
    if (s.frames.empty()) continue;
    if (trace_filter != 0 && s.trace_id != trace_filter) continue;
    out.push_back(std::move(s));
  }
}

}  // namespace

namespace detail {

ThreadSlot* local_slot() {
#if TSMO_PROFILER_SUPPORTED
  ThreadReg& reg = t_reg;
  const std::uint64_t ep = g_epoch.load(std::memory_order_acquire);
  if (reg.slot != nullptr && reg.armed_epoch == ep) return reg.slot;
  if (reg.failed && reg.failed_epoch == ep) return nullptr;
  std::lock_guard<std::mutex> lock(registry_mutex());
  if (reg.slot == nullptr) reg.slot = acquire_slot_locked();
  if (reg.slot == nullptr ||
      !arm_timer_locked(reg, g_rate_hz.load(std::memory_order_relaxed))) {
    reg.failed = true;
    reg.failed_epoch = ep;
    return nullptr;
  }
  reg.failed = false;
  reg.armed_epoch = ep;
  return reg.slot;
#else
  return nullptr;
#endif
}

}  // namespace detail

bool supported() noexcept { return TSMO_PROFILER_SUPPORTED != 0; }

bool start(int hz) {
#if TSMO_PROFILER_SUPPORTED
  hz = std::clamp(hz, 1, 1000);
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    if (!g_handler_installed) {
      struct sigaction sa{};
      sa.sa_sigaction = &sigprof_handler;
      sa.sa_flags = SA_SIGINFO | SA_RESTART;
      sigemptyset(&sa.sa_mask);
      if (sigaction(SIGPROF, &sa, nullptr) != 0) return false;
      g_handler_installed = true;
    }
  }
  g_rate_hz.store(hz, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
  return true;
#else
  (void)hz;
  return false;
#endif
}

void stop() {
  detail::g_enabled.store(false, std::memory_order_release);
  g_rate_hz.store(0, std::memory_order_relaxed);
}

int rate_hz() noexcept { return g_rate_hz.load(std::memory_order_relaxed); }

Stats stats() {
  Stats st;
  st.enabled = enabled();
  st.rate_hz = rate_hz();
  const int count = g_slot_count.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    const detail::ThreadSlot* s = g_slots[i];
    if (s == nullptr) continue;
    const std::uint64_t head = s->head.load(std::memory_order_relaxed);
    st.samples_captured += s->captured.load(std::memory_order_relaxed);
    st.frames_truncated += s->truncated.load(std::memory_order_relaxed);
    const auto cap = static_cast<std::uint64_t>(kSampleRingCapacity);
    if (head > cap) st.ring_drops += head - cap;
    if (s->in_use.load(std::memory_order_relaxed)) ++st.threads_registered;
  }
  return st;
}

Cursor cursor() {
  Cursor c;
  const int count = g_slot_count.load(std::memory_order_acquire);
  for (int i = 0; i < count && i < kMaxThreadSlots; ++i) {
    if (g_slots[i] != nullptr) {
      c.heads[static_cast<std::size_t>(i)] =
          g_slots[i]->head.load(std::memory_order_acquire);
    }
  }
  return c;
}

std::vector<Sample> collect(std::uint64_t trace_filter) {
  std::vector<Sample> out;
  const int count = g_slot_count.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    if (g_slots[i] != nullptr) {
      collect_slot(*g_slots[i], 0, trace_filter, out);
    }
  }
  return out;
}

std::vector<Sample> collect_since(const Cursor& since,
                                  std::uint64_t trace_filter) {
  std::vector<Sample> out;
  const int count = g_slot_count.load(std::memory_order_acquire);
  for (int i = 0; i < count; ++i) {
    if (g_slots[i] != nullptr) {
      collect_slot(*g_slots[i], since.heads[static_cast<std::size_t>(i)],
                   trace_filter, out);
    }
  }
  return out;
}

const char* register_frame_name(const char* name) {
  if (name == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string>& names = taxonomy();
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    names.emplace_back(name);
  }
  return name;
}

std::vector<std::string> frame_taxonomy() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names = taxonomy();
  std::sort(names.begin(), names.end());
  return names;
}

std::string fold(const std::vector<Sample>& samples) {
  std::map<std::string, std::uint64_t> stacks;
  std::string key;
  for (const Sample& s : samples) {
    key.clear();
    for (std::size_t i = 0; i < s.frames.size(); ++i) {
      if (i > 0) key += ';';
      key += s.frames[i];
    }
    if (key.empty()) continue;
    ++stacks[key];
  }
  std::string out;
  for (const auto& [stack, count] : stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void write_speedscope(std::ostream& os, const std::vector<Sample>& samples,
                      const std::string& name) {
  // Frame table: distinct names in first-seen order.
  std::vector<const char*> frames;
  std::map<const char*, std::size_t> index;
  for (const Sample& s : samples) {
    for (const char* f : s.frames) {
      if (index.emplace(f, frames.size()).second) frames.push_back(f);
    }
  }
  auto escape = [](const std::string& v) {
    std::string out;
    for (char c : v) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out += c;
    }
    return out;
  };
  os << "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
     << "\"name\":\"" << escape(name) << "\",\"exporter\":\"tsmo\","
     << "\"shared\":{\"frames\":[";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"name\":\"" << escape(frames[i]) << "\"}";
  }
  os << "]},\"profiles\":[{\"type\":\"sampled\",\"name\":\"" << escape(name)
     << "\",\"unit\":\"none\",\"startValue\":0,\"endValue\":"
     << samples.size() << ",\"samples\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) os << ',';
    os << '[';
    const Sample& s = samples[i];
    for (std::size_t j = 0; j < s.frames.size(); ++j) {
      if (j > 0) os << ',';
      os << index[s.frames[j]];
    }
    os << ']';
  }
  os << "],\"weights\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) os << ',';
    os << 1;
  }
  os << "]}]}\n";
}

}  // namespace tsmo::prof
