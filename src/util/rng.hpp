#pragma once

// Deterministic pseudo-random number substrate.
//
// Every stochastic component in the library (neighborhood sampling,
// construction heuristics, parameter perturbation, simulated work costs)
// draws from an explicitly seeded Rng instance.  Parallel searchers and
// workers each own an independent stream derived with jump(), so runs are
// reproducible regardless of scheduling.

#include <array>
#include <cstdint>
#include <limits>

namespace tsmo {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
/// Reference: Sebastiano Vigna, public domain reference implementation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator with 2^256-1
/// period and an efficient 2^128 jump for independent parallel streams.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 as recommended by the
  /// xoshiro authors (avoids correlated states from small seeds).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 1;  // all-zero state is the one forbidden fixed point
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances this stream by 2^128 draws.  Calling jump() k times on copies
  /// of one generator yields k non-overlapping streams.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        next();
      }
    }
    state_ = acc;
  }

  /// Returns a fresh generator 2^128 draws ahead and advances *this* past it,
  /// so successive calls yield pairwise-independent streams.
  Rng split() noexcept {
    Rng child = *this;
    jump();
    return child;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal deviate via Box–Muller (cached second value).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tsmo
