#pragma once

// Plain-text table rendering used by the benchmark harness to print the
// paper-style result tables (Tables I-IV) and ablation summaries.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace tsmo {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// Minimal fixed-width text table.  Rows are vectors of preformatted cells;
/// the renderer pads each column to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns = {});

  /// Appends a data row.  Short rows are padded with empty cells; extra
  /// cells widen the table.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator at this position.
  void add_separator();

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table; `title` (if non-empty) is printed above it.
  void print(std::ostream& os, const std::string& title = "") const;

  std::string to_string(const std::string& title = "") const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Formats a double with fixed precision into a std::string.
std::string fmt_double(double v, int precision = 2);

/// Formats a percentage ("12.34%").
std::string fmt_percent(double fraction, int precision = 2);

/// Writes rows as CSV (no quoting of embedded commas — callers use plain
/// numeric/identifier cells).
void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace tsmo
