#pragma once

// Minimal streaming JSON writer (objects, arrays, scalars, correct string
// escaping) plus a small recursive-descent parser (JsonValue/json_parse).
// Used to export run results for external tooling and to accept job
// submissions on the HTTP job plane (DESIGN.md §12) without any
// third-party dependency.

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tsmo {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(&os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes a key inside an object; must be followed by a value or a
  /// begin_object/begin_array.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// True when all opened scopes are closed again.
  bool complete() const noexcept { return stack_.empty() && started_; }

  /// Escapes a string for embedding in JSON (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  enum class Scope { Object, Array };
  void before_value();
  void newline_indent();

  std::ostream* os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool expecting_value_ = false;  // a key was just written
  bool started_ = false;
};

/// An immutable parsed JSON document node.  Numbers are stored as double
/// (plus the raw text so exact 64-bit integers survive via as_int64);
/// objects keep their keys in input order.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }

  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const noexcept {
    return is_number() ? number_ : fallback;
  }
  /// Exact for integers the input spelled without fraction/exponent (the
  /// raw token is re-parsed); otherwise the double is truncated.
  std::int64_t as_int64(std::int64_t fallback = 0) const noexcept;
  const std::string& as_string() const noexcept { return string_; }

  const std::vector<JsonValue>& items() const noexcept { return items_; }
  std::size_t size() const noexcept {
    return is_object() ? keys_.size() : items_.size();
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const noexcept;
  /// Object keys, in input order (empty unless is_object()).
  const std::vector<std::string>& keys() const noexcept { return keys_; }

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  ///< String value, or the raw number token
  std::vector<JsonValue> items_;   ///< array elements / object values
  std::vector<std::string> keys_;  ///< object keys, parallel to items_
};

/// Parses a complete JSON document.  Returns nullptr and fills `error`
/// (position-annotated) on malformed input or trailing garbage.
std::unique_ptr<JsonValue> json_parse(const std::string& text,
                                      std::string* error = nullptr);

}  // namespace tsmo
