#pragma once

// Minimal streaming JSON writer (objects, arrays, scalars, correct string
// escaping).  Used to export run results for external tooling without any
// third-party dependency.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tsmo {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(&os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes a key inside an object; must be followed by a value or a
  /// begin_object/begin_array.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// True when all opened scopes are closed again.
  bool complete() const noexcept { return stack_.empty() && started_; }

  /// Escapes a string for embedding in JSON (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  enum class Scope { Object, Array };
  void before_value();
  void newline_indent();

  std::ostream* os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool expecting_value_ = false;  // a key was just written
  bool started_ = false;
};

}  // namespace tsmo
