#pragma once

// Process-wide cooperative stop flag (DESIGN.md §10).
//
// solver_cli's SIGINT/SIGTERM handler sets it (one async-signal-safe
// atomic store); every engine loop observes it through
// SearchState::budget_exhausted(), so a stop request drains exactly like
// an exhausted evaluation budget: workers finish their current move,
// channels close, results are collected and flushed.  Never set during a
// normal run, so determinism and golden-seed fingerprints are untouched.

#include <atomic>

namespace tsmo {

namespace detail {
extern std::atomic<bool> g_stop_requested;
}  // namespace detail

/// True once request_stop() was called.  One relaxed load — cheap enough
/// for every budget_exhausted() check.
inline bool stop_requested() noexcept {
  return detail::g_stop_requested.load(std::memory_order_relaxed);
}

/// Requests a cooperative stop.  Async-signal-safe (one atomic store).
inline void request_stop() noexcept {
  detail::g_stop_requested.store(true, std::memory_order_relaxed);
}

/// Re-arms the flag (tests; between runs in one process).
inline void clear_stop_request() noexcept {
  detail::g_stop_requested.store(false, std::memory_order_relaxed);
}

}  // namespace tsmo
