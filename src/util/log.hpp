#pragma once

// Structured leveled log plane (DESIGN.md §13).
//
// One JSONL event per line on a single sink (stderr by default, or a file
// via set_output / --log-out).  Events carry a monotonic timestamp, level,
// component, message, optional typed fields, and — when the emitting thread
// runs under a telemetry::TraceContext — the trace id as a correlation id,
// so log lines join the same causal story as /jobs/<id>/trace spans.
//
// Design constraints:
//   * never on the search hot path — events are per-request / per-lifecycle
//     granularity, so one global mutex around the sink is fine;
//   * rate limited (token bucket per wall-second, default 200 events/s);
//     suppressed events are counted and reported in a periodic summary line
//     that bypasses the limiter, so bursts can never flood a disk;
//   * levels below the threshold cost one relaxed atomic load and build
//     nothing (the Event constructor checks first);
//   * no allocation after the event is filtered out;
//   * observation-only: logging never touches search RNG or decisions, so
//     golden fingerprints are identical with logging on or off.
//
// Usage:
//   log::info("jobs").msg("accepted").str("id", id).i64("queue", depth);
// The Event emits in its destructor (end of the full expression).

#include <atomic>
#include <cstdint>
#include <string>

namespace tsmo::log {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug"/"info"/"warn"/"error"/"off"; unknown strings return false and
/// leave `out` untouched.
bool parse_level(const std::string& text, Level& out) noexcept;
const char* to_string(Level level) noexcept;

/// Global threshold; events below it are discarded at construction.
/// Default kInfo.
void set_level(Level level) noexcept;
Level level() noexcept;

/// Redirects the sink.  Empty or "-" selects stderr; otherwise the file is
/// opened for append.  Returns false (and keeps the current sink) when the
/// file cannot be opened.  Not safe concurrently with in-flight emits from
/// other threads mid-line; call during startup/config.
bool set_output(const std::string& path);

/// Events allowed per wall-clock second before suppression kicks in
/// (0 = unlimited).  Default 200.
void set_rate_limit(std::uint64_t events_per_second) noexcept;

/// Totals since process start (emitted + suppressed), for tests and the
/// suppression summary line.
std::uint64_t emitted() noexcept;
std::uint64_t suppressed() noexcept;

namespace detail {
extern std::atomic<int> g_level;
}  // namespace detail

inline bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) >=
         detail::g_level.load(std::memory_order_relaxed);
}

/// One structured event, built fluently and emitted on destruction.  When
/// the level is filtered out the constructor stores nothing and every
/// chained call is a no-op returning *this.
class Event {
 public:
  Event(Level lvl, const char* component) noexcept;
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& msg(const char* text);
  Event& str(const char* key, const std::string& value);
  Event& i64(const char* key, std::int64_t value);
  Event& u64(const char* key, std::uint64_t value);
  Event& f64(const char* key, double value);
  /// 64-bit id rendered as "0x%016llx" (trace/span ids).
  Event& hex(const char* key, std::uint64_t value);

 private:
  bool live_ = false;
  std::string line_;  // partial JSON object, without the closing brace
};

inline Event debug(const char* component) {
  return Event(Level::kDebug, component);
}
inline Event info(const char* component) {
  return Event(Level::kInfo, component);
}
inline Event warn(const char* component) {
  return Event(Level::kWarn, component);
}
inline Event error(const char* component) {
  return Event(Level::kError, component);
}

}  // namespace tsmo::log
