#include "util/rng.hpp"

#include <cmath>

namespace tsmo {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method: multiply-shift with a rejection
  // loop that triggers only for the tiny biased fraction of the range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace tsmo
