#pragma once

// Wall-clock timing helpers.  now_ns() is the single monotonic clock
// source for the library: Timer, telemetry spans and latency histograms
// all derive from it, so timestamps from different subsystems compose.

#include <chrono>
#include <cstdint>

namespace tsmo {

/// Monotonic nanoseconds since the first call in this process.  Starting
/// from a process-local epoch keeps the values small enough to survive
/// double conversion (Chrome trace timestamps are microsecond doubles).
inline std::uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() noexcept : start_ns_(now_ns()) {}

  void reset() noexcept { start_ns_ = now_ns(); }

  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_ns_; }

  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }
  double elapsed_us() const noexcept { return elapsed_seconds() * 1e6; }

 private:
  std::uint64_t start_ns_;
};

}  // namespace tsmo
