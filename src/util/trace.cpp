#include "util/trace.hpp"

#include <algorithm>
#include <tuple>

namespace tsmo {

std::uint64_t archive_fingerprint(std::vector<Objectives> front) {
  std::sort(front.begin(), front.end(),
            [](const Objectives& a, const Objectives& b) {
              return std::tie(a.distance, a.vehicles, a.tardiness) <
                     std::tie(b.distance, b.vehicles, b.tardiness);
            });
  std::uint64_t h = 0x452821e638d01377ULL;
  for (const Objectives& o : front) h = hash_combine(h, hash_objectives(o));
  return hash_combine(h, front.size());
}

}  // namespace tsmo
