#include "util/env.hpp"

#include <cstdlib>

namespace tsmo {

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return fallback;
  return static_cast<std::int64_t>(v);
}

double env_double(const std::string& name, double fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return fallback;
  return v;
}

}  // namespace tsmo
