#pragma once

// Environment-variable configuration used by the benchmark binaries
// (e.g. TSMO_BENCH_SCALE=ci|small|paper, TSMO_SEED=...).

#include <cstdint>
#include <optional>
#include <string>

namespace tsmo {

/// Returns the value of an environment variable, if set and non-empty.
std::optional<std::string> env_string(const std::string& name);

/// Parses an integer environment variable; returns fallback when unset or
/// malformed.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Parses a floating-point environment variable.
double env_double(const std::string& name, double fallback);

}  // namespace tsmo
