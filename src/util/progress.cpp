#include "util/progress.hpp"

#include <algorithm>

namespace tsmo {

// ---------------------------------------------------------------------------
// HeartbeatBoard
// ---------------------------------------------------------------------------

int HeartbeatBoard::register_slot(std::string label) {
  std::lock_guard<std::mutex> lock(register_mutex_);
  slots_.emplace_back();
  slots_.back().label = std::move(label);
  const int slot = static_cast<int>(slots_.size()) - 1;
  registered_.store(slot + 1, std::memory_order_release);
  return slot;
}

int HeartbeatBoard::size() const {
  return registered_.load(std::memory_order_acquire);
}

const std::string& HeartbeatBoard::label(int slot) const {
  return slots_[static_cast<std::size_t>(slot)].label;
}

void HeartbeatBoard::beat(int slot, std::int64_t progress) noexcept {
  if (slot < 0 || slot >= registered_.load(std::memory_order_acquire)) {
    return;
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.progress.store(progress, std::memory_order_relaxed);
  s.beats.fetch_add(1, std::memory_order_relaxed);
  // The timestamp is stored last so a reader that sees a fresh time also
  // sees a progress value at least as fresh.
  s.last_beat_ns.store(now_ns(), std::memory_order_release);
}

HeartbeatBoard::Reading HeartbeatBoard::read(int slot) const {
  Reading r;
  if (slot < 0 || slot >= size()) return r;
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  r.slot = slot;
  r.label = s.label;
  r.last_beat_ns = s.last_beat_ns.load(std::memory_order_acquire);
  r.progress = s.progress.load(std::memory_order_relaxed);
  r.beats = s.beats.load(std::memory_order_relaxed);
  return r;
}

void HeartbeatBoard::read_raw(int slot, std::uint64_t& last_beat_ns,
                              std::int64_t& progress,
                              std::uint64_t& beats) const noexcept {
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  last_beat_ns = s.last_beat_ns.load(std::memory_order_acquire);
  progress = s.progress.load(std::memory_order_relaxed);
  beats = s.beats.load(std::memory_order_relaxed);
}

const char* HeartbeatBoard::label_c_str(int slot) const noexcept {
  return slots_[static_cast<std::size_t>(slot)].label.c_str();
}

std::vector<HeartbeatBoard::Reading> HeartbeatBoard::read_all() const {
  const int n = size();
  std::vector<Reading> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(read(i));
  return out;
}

std::int64_t HeartbeatBoard::total_progress() const noexcept {
  const int n = size();
  std::int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += slots_[static_cast<std::size_t>(i)].progress.load(
        std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// StallWatchdog
// ---------------------------------------------------------------------------

StallWatchdog::StallWatchdog(const HeartbeatBoard& board,
                             std::uint64_t threshold_ns,
                             std::uint64_t check_interval_ns,
                             Callback on_stall)
    : board_(&board),
      threshold_ns_(std::max<std::uint64_t>(threshold_ns, 1)),
      check_interval_ns_(std::max<std::uint64_t>(check_interval_ns, 100000)),
      on_stall_(std::move(on_stall)) {
  thread_ = std::thread([this] { loop(); });
}

StallWatchdog::~StallWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::scan_now() {
  const std::uint64_t now = now_ns();
  const int n = board_->size();
  if (static_cast<int>(flagged_slots_.size()) < n) {
    flagged_slots_.resize(static_cast<std::size_t>(n), false);
  }
  int stalled = 0;
  for (int i = 0; i < n; ++i) {
    const HeartbeatBoard::Reading r = board_->read(i);
    if (r.last_beat_ns == 0) continue;  // never beat: not yet running
    const std::uint64_t age =
        now > r.last_beat_ns ? now - r.last_beat_ns : 0;
    const auto idx = static_cast<std::size_t>(i);
    if (age >= threshold_ns_) {
      ++stalled;
      if (!flagged_slots_[idx]) {
        flagged_slots_[idx] = true;
        flagged_.fetch_add(1, std::memory_order_relaxed);
        if (on_stall_) {
          on_stall_(StallEvent{i, r.label, age, r.progress});
        }
      }
    } else {
      flagged_slots_[idx] = false;  // re-arm after a fresh beat
    }
  }
  stalled_now_.store(stalled, std::memory_order_relaxed);
}

void StallWatchdog::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::nanoseconds(check_interval_ns_),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    scan_now();
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// ProgressPrinter
// ---------------------------------------------------------------------------

ProgressPrinter::ProgressPrinter(std::ostream& os, double interval_ms,
                                 Render render)
    : os_(&os),
      interval_ms_(std::max(interval_ms, 20.0)),
      render_(std::move(render)) {
  thread_ = std::thread([this] { loop(); });
}

ProgressPrinter::~ProgressPrinter() { finish(); }

void ProgressPrinter::paint() {
  if (!render_) return;
  const std::string line = render_();
  *os_ << '\r' << line << "\033[K" << std::flush;
}

void ProgressPrinter::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock,
                 std::chrono::microseconds(
                     static_cast<std::int64_t>(interval_ms_ * 1000.0)),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    paint();
    lock.lock();
  }
}

void ProgressPrinter::finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) return;
    finished_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  paint();
  *os_ << '\n' << std::flush;
}

}  // namespace tsmo
