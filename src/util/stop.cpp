#include "util/stop.hpp"

namespace tsmo::detail {

std::atomic<bool> g_stop_requested{false};

}  // namespace tsmo::detail
