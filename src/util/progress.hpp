#pragma once

// Liveness primitives for the anytime convergence recorder (DESIGN.md §9).
//
// Three pieces, all independent of the VRPTW domain so they live in util:
//   * HeartbeatBoard — a registry of per-worker heartbeat gauges.  A beat
//     is one relaxed store pair (timestamp, progress counter) on a slot
//     only the owning thread writes; readers (the watchdog, the live
//     status line) take racy-but-atomic snapshots.
//   * StallWatchdog — a monitor thread that periodically scans a
//     HeartbeatBoard and invokes a callback for every slot whose last
//     beat is older than a threshold.  Each stall episode fires once; the
//     slot re-arms when a fresh beat arrives.
//   * ProgressPrinter — a background thread that repaints one terminal
//     status line ("\r…\033[K") on a steady cadence from a render
//     callback.
//
// None of these touch search state or RNG streams — they observe, so
// deterministic-mode fingerprints are identical with or without them.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace tsmo {

/// Registry of per-worker heartbeat gauges.  Registration is mutex
/// protected; beats and reads are lock-free on stable slot storage
/// (std::deque never relocates).
class HeartbeatBoard {
 public:
  struct Reading {
    int slot = -1;
    std::string label;
    std::uint64_t last_beat_ns = 0;  ///< 0 until the first beat
    std::int64_t progress = 0;       ///< e.g. the worker's iteration count
    std::uint64_t beats = 0;
  };

  /// Registers a new gauge and returns its slot index.
  int register_slot(std::string label);

  int size() const;
  const std::string& label(int slot) const;

  /// One heartbeat: stamps now_ns() and the caller's progress counter.
  /// Invalid slots are ignored (so callers can pass -1 for "detached").
  void beat(int slot, std::int64_t progress) noexcept;

  Reading read(int slot) const;
  std::vector<Reading> read_all() const;

  /// Async-signal-safe raw slot access (no locks, no allocation) for the
  /// flight recorder's postmortem writer.  `slot` must be in [0, size()).
  void read_raw(int slot, std::uint64_t& last_beat_ns, std::int64_t& progress,
                std::uint64_t& beats) const noexcept;
  const char* label_c_str(int slot) const noexcept;

  /// Sum of the progress counters over all slots (for throughput lines).
  std::int64_t total_progress() const noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> last_beat_ns{0};
    std::atomic<std::int64_t> progress{0};
    std::atomic<std::uint64_t> beats{0};
    std::string label;
  };

  mutable std::mutex register_mutex_;
  std::deque<Slot> slots_;                 // stable addresses
  std::atomic<int> registered_{0};         // slots [0, registered_) readable
};

/// Monitor thread flagging workers whose heartbeat has gone quiet.
class StallWatchdog {
 public:
  struct StallEvent {
    int slot = -1;
    std::string label;
    std::uint64_t age_ns = 0;      ///< time since the last beat
    std::int64_t progress = 0;     ///< progress counter at stall time
  };
  using Callback = std::function<void(const StallEvent&)>;

  /// Starts the monitor.  A slot is stalled when it has beaten at least
  /// once and its last beat is older than `threshold_ns`.  The callback
  /// runs on the monitor thread, once per stall episode per slot.
  StallWatchdog(const HeartbeatBoard& board, std::uint64_t threshold_ns,
                std::uint64_t check_interval_ns, Callback on_stall);

  /// Stops and joins the monitor.
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Slots currently considered stalled (monitor's last scan).
  int stalled_count() const noexcept {
    return stalled_now_.load(std::memory_order_relaxed);
  }
  /// Total stall episodes flagged since construction.
  std::int64_t stalls_flagged() const noexcept {
    return flagged_.load(std::memory_order_relaxed);
  }

  /// Runs one scan immediately (tests; also used by the final scan).
  void scan_now();

 private:
  void loop();

  const HeartbeatBoard* board_;
  std::uint64_t threshold_ns_;
  std::uint64_t check_interval_ns_;
  Callback on_stall_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<bool> flagged_slots_;  // monitor thread only
  std::atomic<int> stalled_now_{0};
  std::atomic<std::int64_t> flagged_{0};
  std::thread thread_;
};

/// Background single-line status repainter.  Writes "\r<line>\033[K" to the
/// stream every `interval_ms`; finish() (or destruction) paints the final
/// line and moves to a fresh line.
class ProgressPrinter {
 public:
  using Render = std::function<std::string()>;

  ProgressPrinter(std::ostream& os, double interval_ms, Render render);
  ~ProgressPrinter();

  ProgressPrinter(const ProgressPrinter&) = delete;
  ProgressPrinter& operator=(const ProgressPrinter&) = delete;

  /// Stops the repaint thread, paints one last line and ends it with '\n'.
  /// Idempotent.
  void finish();

 private:
  void paint();
  void loop();

  std::ostream* os_;
  double interval_ms_;
  Render render_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool finished_ = false;
  std::thread thread_;
};

}  // namespace tsmo
