#pragma once

// Low-overhead telemetry layer (DESIGN.md §8).
//
// Three primitives, all merged into one `Snapshot`:
//   * named counters/gauges in a `Registry` backed by thread-local
//     cache-line-padded shards — a hot-path increment is a relaxed load +
//     relaxed store on a slot only the owning thread writes;
//   * fixed-bucket log2 latency histograms (ns→s range) with p50/p90/p99
//     extraction at snapshot time;
//   * RAII `Span`s recorded into per-thread ring buffers, exportable as
//     Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// Everything is gated twice: at compile time by the TSMO_TELEMETRY_ENABLED
// preprocessor flag (CMake option TSMO_TELEMETRY; when OFF every macro below
// expands to nothing), and at run time by `telemetry::enabled()` (a relaxed
// atomic load; off by default, switched on by TsmoParams::telemetry or the
// --telemetry-out CLI flag).  Telemetry never touches the search RNG or any
// search decision, so fingerprints are identical with it on or off (tested
// by the golden-seed guard in tests/test_telemetry.cpp).
//
// Snapshot consistency: counter/gauge/histogram reads are racy-but-atomic
// (each shard slot is owner-written), so totals taken mid-run are merely
// approximate.  Span ring contents are plain records; take snapshots at
// quiescent points (after joining workers) for exact, torn-free data — all
// engines snapshot only after their teams have stopped.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/timer.hpp"

#ifndef TSMO_TELEMETRY_ENABLED
#define TSMO_TELEMETRY_ENABLED 1
#endif

namespace tsmo::telemetry {

/// log2 buckets: bucket 0 holds exact zeros, bucket b >= 1 holds
/// [2^(b-1), 2^b) ns.  44 buckets reach 2^42 ns ≈ 73 min in the top
/// (open-ended) bucket — comfortably past any single-run phase.
inline constexpr int kHistogramBuckets = 44;
inline constexpr int kMaxCounters = 192;
inline constexpr int kMaxGauges = 64;
inline constexpr int kMaxHistograms = 48;
/// Per-thread span ring capacity; older spans are overwritten and counted
/// as dropped.
inline constexpr int kSpanRingCapacity = 8192;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Global runtime switch; hot paths check this before touching the shard.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the runtime switch; returns the previous value.
bool set_enabled(bool on) noexcept;

// ---------------------------------------------------------------------------
// Causal tracing (DESIGN.md §13).  A TraceContext names one request (a job,
// or a direct CLI run) and the innermost live span on the current thread.
// Ids are deterministic: trace ids are a splitmix64 mix of the request seed,
// span ids mix the trace id with a process-wide monotone counter — no
// wall clock and no RNG anywhere in the id path, so tracing can never
// perturb a seeded run.  The context propagates two ways: ambiently via a
// thread-local (TraceScope / Span nesting on one thread) and explicitly via
// TsmoParams across thread boundaries (engines re-establish scope on their
// master and worker threads).
// ---------------------------------------------------------------------------

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = untraced
  std::uint64_t span_id = 0;   ///< innermost enclosing span (parent of children)

  bool valid() const noexcept { return trace_id != 0; }
};

/// Deterministic non-zero trace id from a request seed (splitmix64 finalizer).
std::uint64_t derive_trace_id(std::uint64_t seed) noexcept;

/// Fresh non-zero span id under `trace_id`: mixes the trace id with a
/// relaxed atomic counter (collision-free per process, clock/RNG-free).
std::uint64_t next_span_id(std::uint64_t trace_id) noexcept;

/// The calling thread's ambient context ({0,0} when untraced).
TraceContext current_trace() noexcept;
void set_current_trace(TraceContext ctx) noexcept;

/// RAII ambient-context scope.  An invalid context arms nothing, so passing
/// TsmoParams ids through unconditionally is safe for untraced runs.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx) noexcept {
    if (ctx.valid()) {
      prev_ = current_trace();
      set_current_trace(ctx);
      armed_ = true;
    }
  }
  ~TraceScope() {
    if (armed_) set_current_trace(prev_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
  bool armed_ = false;
};

/// One collected span of a trace.  `name` must have static storage (the
/// same contract record_span has); kind 1 marks an instant event.
struct TraceSpan {
  const char* name = nullptr;
  int tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of the trace
  std::uint8_t kind = 0;        ///< 0 complete, 1 instant
};

/// Bounded per-request span collector.  Attach it to the registry under a
/// trace id (Registry::attach_trace) and every span recorded with that id
/// lands here until the budget fills; overflow is counted, never silently
/// lost.  Appends take a mutex — spans are per-round/per-chunk granularity,
/// never per-evaluation, so the lock is cold.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t budget)
      : budget_(budget == 0 ? 1 : budget) {}

  void append(const TraceSpan& span) {
    std::lock_guard<std::mutex> lock(mu_);
    ++seen_;
    if (spans_.size() >= budget_) {
      ++dropped_;
      return;
    }
    spans_.push_back(span);
  }

  std::vector<TraceSpan> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  std::size_t budget() const noexcept { return budget_; }
  std::uint64_t seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::size_t budget_;
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Concurrently collectable traces; bounds the registry's subscription
/// table.  Attaching beyond it fails soft (spans simply stay uncollected).
inline constexpr int kMaxActiveTraces = 16;

/// Slot handles returned by Registry::counter/gauge/histogram.  Invalid ids
/// (registration table full) make every recording call a silent no-op.
struct CounterId {
  std::int16_t index = -1;
  bool valid() const noexcept { return index >= 0; }
};
struct GaugeId {
  std::int16_t index = -1;
  bool valid() const noexcept { return index >= 0; }
};
struct HistogramId {
  std::int16_t index = -1;
  bool valid() const noexcept { return index >= 0; }
};

struct CounterSnap {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnap {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnap {
  std::string name;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  double mean_ns() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
  /// Quantile estimate by bucket walk with linear interpolation inside the
  /// hit bucket; exact to within the power-of-two bucket bounds.
  double quantile_ns(double q) const noexcept;
};

struct SpanSnap {
  std::string name;
  int tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  // Causal ids; all zero for untraced spans.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint8_t kind = 0;  ///< 0 complete, 1 instant
};

struct ThreadSnap {
  int tid = 0;
  std::string label;
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
};

struct Snapshot {
  std::vector<CounterSnap> counters;
  std::vector<GaugeSnap> gauges;
  std::vector<HistogramSnap> histograms;
  std::vector<SpanSnap> spans;
  std::vector<ThreadSnap> threads;

  const CounterSnap* find_counter(const std::string& name) const noexcept;
  const GaugeSnap* find_gauge(const std::string& name) const noexcept;
  const HistogramSnap* find_histogram(const std::string& name) const noexcept;
};

/// Process-wide metrics registry.  The singleton is intentionally leaked so
/// thread_local shard leases destroyed during process teardown never touch a
/// dead object.
class Registry {
 public:
  static Registry& instance() noexcept;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (or look up) a named slot.  Idempotent per name; returns an
  /// invalid id once the fixed table is full.
  CounterId counter(const std::string& name);
  GaugeId gauge(const std::string& name);
  HistogramId histogram(const std::string& name);

  /// Owner-thread increment on this thread's shard (relaxed load + store).
  void add(CounterId id, std::uint64_t delta = 1) noexcept;
  /// Gauges are process-global atomics (per-worker gauges get distinct
  /// names, so each is still single-writer in practice).
  void gauge_add(GaugeId id, std::int64_t delta) noexcept;
  void gauge_set(GaugeId id, std::int64_t value) noexcept;
  void record_ns(HistogramId id, std::uint64_t ns) noexcept;

  /// Appends an untraced span to this thread's ring buffer.  `name` must
  /// have static storage duration (string literal) — the record stores the
  /// pointer.
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t dur_ns) noexcept;

  /// Traced span: mints a fresh span id under `parent` (when valid) and
  /// additionally routes the record to an attached TraceBuffer.
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t dur_ns, TraceContext parent) noexcept;

  /// Traced span with a caller-minted id — the RAII Span mints its id at
  /// construction so children created inside it can parent to it.
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t dur_ns, TraceContext parent,
                   std::uint64_t span_id) noexcept;

  /// Zero-duration instant event (Chrome "i" phase), e.g. an anytime-front
  /// insertion.  Untraced instants (invalid parent) are dropped — they only
  /// carry information relative to a trace.
  void record_instant(const char* name, std::uint64_t t_ns,
                      TraceContext parent) noexcept;

  /// Subscribes `buffer` to every span recorded under `trace_id`; at most
  /// kMaxActiveTraces subscriptions are live at once (false when full or
  /// the id is 0).  The buffer must stay alive until detach_trace returns.
  bool attach_trace(std::uint64_t trace_id, TraceBuffer* buffer);
  void detach_trace(std::uint64_t trace_id) noexcept;

  /// Names this thread's lane in the Chrome trace (e.g. "worker 3").
  void set_thread_label(const std::string& label);

  /// Merges every shard into one consistent view.  Call at quiescent points
  /// for exact data (see file header).
  Snapshot snapshot() const;

  /// Same, but `include_spans` false skips the per-thread span rings.
  /// Span records are plain (non-atomic) storage, so this is the variant
  /// a *live* reader — the /metrics scrape handler — must use; counters,
  /// gauges and histograms stay safe (racy-but-atomic) mid-run.
  Snapshot snapshot(bool include_spans) const;

  /// Zeroes all counters, gauges, histograms and span rings while keeping
  /// every registration valid (function-local static ids in the macros must
  /// survive a reset).
  void reset() noexcept;

  struct Impl;  // opaque; named by free helpers in telemetry.cpp

 private:
  Registry();
  ~Registry() = delete;  // leaked on purpose

  Impl* impl_;
};

/// RAII wall-clock span; records into the per-thread ring on destruction.
/// `name` must be a string literal (static storage).  Under a valid ambient
/// TraceContext the span mints its own id at construction and installs
/// itself as the ambient parent for its lifetime, so nested spans (and
/// record_span calls using current_trace()) form a rooted parent tree.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (enabled()) {
      name_ = name;
      start_ns_ = now_ns();
      parent_ = current_trace();
      if (parent_.valid()) {
        self_ = next_span_id(parent_.trace_id);
        set_current_trace(TraceContext{parent_.trace_id, self_});
      }
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      if (self_ != 0) set_current_trace(parent_);
      Registry::instance().record_span(name_, start_ns_, now_ns() - start_ns_,
                                       parent_, self_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  TraceContext parent_;
  std::uint64_t self_ = 0;
};

/// RAII duration recorder feeding a histogram.  Takes a capture-less lambda
/// (as a function pointer) that resolves the HistogramId lazily, so the
/// registration only happens once telemetry is actually enabled.
class ScopedTimer {
 public:
  using IdFn = HistogramId (*)();

  explicit ScopedTimer(IdFn resolve) noexcept {
    if (enabled()) {
      id_ = resolve();
      start_ns_ = now_ns();
      active_ = true;
    }
  }
  ~ScopedTimer() {
    if (active_) {
      Registry::instance().record_ns(id_, now_ns() - start_ns_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  HistogramId id_{};
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Chrome trace-event JSON ("X" complete events + "M" thread_name metadata,
/// pid 0, tid = telemetry lane).  Load via chrome://tracing or ui.perfetto.dev.
void write_chrome_trace(std::ostream& os, const Snapshot& snap);

/// One JSON object per line: a meta header, then every counter, gauge,
/// histogram (with p50/p90/p99) and thread record.
void write_snapshot_jsonl(std::ostream& os, const Snapshot& snap);

/// Pairs an output trace path with a derived `.jsonl` snapshot path and
/// writes both files from one Snapshot.
class TelemetrySink {
 public:
  /// `trace_path` names the Chrome trace file; the JSONL snapshot lands next
  /// to it ("foo.json" -> "foo.jsonl", otherwise "<path>.jsonl").
  explicit TelemetrySink(std::string trace_path);

  const std::string& trace_path() const noexcept { return trace_path_; }
  const std::string& snapshot_path() const noexcept { return snapshot_path_; }

  /// Writes both files; returns false if either stream failed.
  bool write(const Snapshot& snap) const;

 private:
  std::string trace_path_;
  std::string snapshot_path_;
};

}  // namespace tsmo::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros.  All of them compile to nothing when the CMake
// option TSMO_TELEMETRY is OFF; when ON they are no-ops (one relaxed load)
// until telemetry::set_enabled(true).  Name arguments must be string
// literals; each call site caches its slot id in a function-local static.
// ---------------------------------------------------------------------------

#if TSMO_TELEMETRY_ENABLED

#define TSMO_TEL_CONCAT_IMPL(a, b) a##b
#define TSMO_TEL_CONCAT(a, b) TSMO_TEL_CONCAT_IMPL(a, b)

#define TSMO_COUNT_N(name_literal, delta)                                     \
  do {                                                                        \
    if (::tsmo::telemetry::enabled()) {                                       \
      static const ::tsmo::telemetry::CounterId TSMO_TEL_CONCAT(              \
          tsmo_tel_id_, __LINE__) =                                           \
          ::tsmo::telemetry::Registry::instance().counter(name_literal);      \
      ::tsmo::telemetry::Registry::instance().add(                            \
          TSMO_TEL_CONCAT(tsmo_tel_id_, __LINE__),                            \
          static_cast<std::uint64_t>(delta));                                 \
    }                                                                         \
  } while (0)

#define TSMO_COUNT(name_literal) TSMO_COUNT_N(name_literal, 1)

#define TSMO_GAUGE_SET(name_literal, value)                                   \
  do {                                                                        \
    if (::tsmo::telemetry::enabled()) {                                       \
      static const ::tsmo::telemetry::GaugeId TSMO_TEL_CONCAT(                \
          tsmo_tel_id_, __LINE__) =                                           \
          ::tsmo::telemetry::Registry::instance().gauge(name_literal);        \
      ::tsmo::telemetry::Registry::instance().gauge_set(                      \
          TSMO_TEL_CONCAT(tsmo_tel_id_, __LINE__),                            \
          static_cast<std::int64_t>(value));                                  \
    }                                                                         \
  } while (0)

#define TSMO_GAUGE_ADD(name_literal, delta)                                   \
  do {                                                                        \
    if (::tsmo::telemetry::enabled()) {                                       \
      static const ::tsmo::telemetry::GaugeId TSMO_TEL_CONCAT(                \
          tsmo_tel_id_, __LINE__) =                                           \
          ::tsmo::telemetry::Registry::instance().gauge(name_literal);        \
      ::tsmo::telemetry::Registry::instance().gauge_add(                      \
          TSMO_TEL_CONCAT(tsmo_tel_id_, __LINE__),                            \
          static_cast<std::int64_t>(delta));                                  \
    }                                                                         \
  } while (0)

/// Records a one-shot duration into a histogram without RAII.
#define TSMO_RECORD_NS(name_literal, ns)                                      \
  do {                                                                        \
    if (::tsmo::telemetry::enabled()) {                                       \
      static const ::tsmo::telemetry::HistogramId TSMO_TEL_CONCAT(            \
          tsmo_tel_id_, __LINE__) =                                           \
          ::tsmo::telemetry::Registry::instance().histogram(name_literal);    \
      ::tsmo::telemetry::Registry::instance().record_ns(                      \
          TSMO_TEL_CONCAT(tsmo_tel_id_, __LINE__),                            \
          static_cast<std::uint64_t>(ns));                                    \
    }                                                                         \
  } while (0)

/// Times the rest of the enclosing scope into a histogram.
#define TSMO_TIME_SCOPE(name_literal)                                         \
  ::tsmo::telemetry::ScopedTimer TSMO_TEL_CONCAT(tsmo_tel_timer_, __LINE__)(  \
      +[]() -> ::tsmo::telemetry::HistogramId {                               \
        static const ::tsmo::telemetry::HistogramId id =                      \
            ::tsmo::telemetry::Registry::instance().histogram(name_literal);  \
        return id;                                                            \
      })

/// Records the rest of the enclosing scope as a Chrome-trace span.
#define TSMO_SPAN(name_literal)                                               \
  ::tsmo::telemetry::Span TSMO_TEL_CONCAT(tsmo_tel_span_, __LINE__)(          \
      name_literal)

/// Span + histogram in one; use at block scope (expands to two declarations).
#define TSMO_SPAN_TIMED(span_literal, hist_literal)                           \
  TSMO_SPAN(span_literal);                                                    \
  TSMO_TIME_SCOPE(hist_literal)

/// Records an instant event ("i" phase) under the ambient trace context.
#define TSMO_INSTANT(name_literal)                                            \
  do {                                                                        \
    if (::tsmo::telemetry::enabled()) {                                       \
      ::tsmo::telemetry::Registry::instance().record_instant(                 \
          name_literal, ::tsmo::now_ns(),                                     \
          ::tsmo::telemetry::current_trace());                                \
    }                                                                         \
  } while (0)

/// Passes gated statements through verbatim (for non-macro-able telemetry
/// code, e.g. dynamically named per-worker gauges).  Wrap runtime-sensitive
/// bodies in `if (telemetry::enabled())` yourself.
#define TSMO_TELEMETRY_ONLY(...) __VA_ARGS__

#else  // !TSMO_TELEMETRY_ENABLED

#define TSMO_COUNT_N(name_literal, delta) \
  do {                                    \
  } while (0)
#define TSMO_COUNT(name_literal) \
  do {                           \
  } while (0)
#define TSMO_GAUGE_SET(name_literal, value) \
  do {                                      \
  } while (0)
#define TSMO_GAUGE_ADD(name_literal, delta) \
  do {                                      \
  } while (0)
#define TSMO_RECORD_NS(name_literal, ns) \
  do {                                   \
  } while (0)
#define TSMO_TIME_SCOPE(name_literal) \
  do {                                \
  } while (0)
#define TSMO_SPAN(name_literal) \
  do {                          \
  } while (0)
#define TSMO_SPAN_TIMED(span_literal, hist_literal) \
  do {                                              \
  } while (0)
#define TSMO_INSTANT(name_literal) \
  do {                             \
  } while (0)
#define TSMO_TELEMETRY_ONLY(...)

#endif  // TSMO_TELEMETRY_ENABLED
