#include "util/log.hpp"

#include <cstdio>
#include <mutex>

#include "util/json.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo::log {

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::kInfo)};
}  // namespace detail

namespace {

std::mutex g_mu;                  // guards sink + limiter state
std::FILE* g_sink = nullptr;      // nullptr = stderr
std::FILE* g_owned = nullptr;     // file we opened (closed on replace)
std::uint64_t g_rate_limit = 200;  // events per second; 0 = unlimited
std::uint64_t g_window_s = 0;
std::uint64_t g_window_count = 0;
std::uint64_t g_window_suppressed = 0;
std::atomic<std::uint64_t> g_emitted{0};
std::atomic<std::uint64_t> g_suppressed{0};

std::FILE* sink() noexcept { return g_sink != nullptr ? g_sink : stderr; }

void write_line_locked(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), sink());
  std::fputc('\n', sink());
  std::fflush(sink());
  g_emitted.fetch_add(1, std::memory_order_relaxed);
}

/// Admission control; called with the event timestamp.  Rolls the
/// per-second window, emitting a suppression summary (which bypasses the
/// limiter) when the previous window dropped anything.
bool admit_locked(std::uint64_t t_ns) {
  if (g_rate_limit == 0) return true;
  const std::uint64_t second = t_ns / 1000000000ULL;
  if (second != g_window_s) {
    if (g_window_suppressed > 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"t_ns\":%llu,\"level\":\"warn\",\"component\":\"log\","
                    "\"msg\":\"rate limited\",\"suppressed\":%llu}",
                    static_cast<unsigned long long>(t_ns),
                    static_cast<unsigned long long>(g_window_suppressed));
      write_line_locked(buf);
    }
    g_window_s = second;
    g_window_count = 0;
    g_window_suppressed = 0;
  }
  if (g_window_count >= g_rate_limit) {
    ++g_window_suppressed;
    g_suppressed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++g_window_count;
  return true;
}

void append_key(std::string& line, const char* key) {
  line += ",\"";
  line += JsonWriter::escape(key);
  line += "\":";
}

}  // namespace

bool parse_level(const std::string& text, Level& out) noexcept {
  if (text == "debug") out = Level::kDebug;
  else if (text == "info") out = Level::kInfo;
  else if (text == "warn") out = Level::kWarn;
  else if (text == "error") out = Level::kError;
  else if (text == "off") out = Level::kOff;
  else return false;
  return true;
}

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

void set_level(Level level) noexcept {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() noexcept {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

bool set_output(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (path.empty() || path == "-") {
    if (g_owned != nullptr) std::fclose(g_owned);
    g_owned = nullptr;
    g_sink = nullptr;
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  if (g_owned != nullptr) std::fclose(g_owned);
  g_owned = f;
  g_sink = f;
  return true;
}

void set_rate_limit(std::uint64_t events_per_second) noexcept {
  std::lock_guard<std::mutex> lock(g_mu);
  g_rate_limit = events_per_second;
}

std::uint64_t emitted() noexcept {
  return g_emitted.load(std::memory_order_relaxed);
}

std::uint64_t suppressed() noexcept {
  return g_suppressed.load(std::memory_order_relaxed);
}

Event::Event(Level lvl, const char* component) noexcept {
  if (!enabled(lvl)) return;
  const std::uint64_t t_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!admit_locked(t_ns)) return;
  }
  live_ = true;
  line_.reserve(128);
  char head[96];
  std::snprintf(head, sizeof(head), "{\"t_ns\":%llu,\"level\":\"%s\"",
                static_cast<unsigned long long>(t_ns), to_string(lvl));
  line_ = head;
  line_ += ",\"component\":\"";
  line_ += JsonWriter::escape(component);
  line_ += "\"";
  const telemetry::TraceContext ctx = telemetry::current_trace();
  if (ctx.valid()) hex("trace_id", ctx.trace_id);
}

Event::~Event() {
  if (!live_) return;
  line_ += "}";
  std::lock_guard<std::mutex> lock(g_mu);
  write_line_locked(line_);
}

Event& Event::msg(const char* text) { return str("msg", text); }

Event& Event::str(const char* key, const std::string& value) {
  if (!live_) return *this;
  append_key(line_, key);
  line_ += "\"";
  line_ += JsonWriter::escape(value);
  line_ += "\"";
  return *this;
}

Event& Event::i64(const char* key, std::int64_t value) {
  if (!live_) return *this;
  append_key(line_, key);
  line_ += std::to_string(value);
  return *this;
}

Event& Event::u64(const char* key, std::uint64_t value) {
  if (!live_) return *this;
  append_key(line_, key);
  line_ += std::to_string(value);
  return *this;
}

Event& Event::f64(const char* key, double value) {
  if (!live_) return *this;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  append_key(line_, key);
  line_ += buf;
  return *this;
}

Event& Event::hex(const char* key, std::uint64_t value) {
  if (!live_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(value));
  append_key(line_, key);
  line_ += buf;
  return *this;
}

}  // namespace tsmo::log
