#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tsmo {

TextTable::TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  aligns_.resize(header_.size(), Align::Right);
  if (!aligns_.empty()) aligns_[0] = Align::Left;
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      // Count display width; the ± sign is 2 bytes in UTF-8 but 1 column.
      std::size_t w = cells[i].size();
      for (std::size_t p = cells[i].find("±"); p != std::string::npos;
           p = cells[i].find("±", p + 2)) {
        --w;
      }
      widths[i] = std::max(widths[i], w);
    }
  };
  widen(header_);
  for (const auto& r : rows_) {
    if (!r.separator) widen(r.cells);
  }

  auto pad = [&](const std::string& s, std::size_t i) {
    std::size_t display = s.size();
    for (std::size_t p = s.find("±"); p != std::string::npos;
         p = s.find("±", p + 2)) {
      --display;
    }
    const std::size_t w = widths[i];
    const std::string fill(display < w ? w - display : 0, ' ');
    const Align a = i < aligns_.size() ? aligns_[i] : Align::Right;
    return a == Align::Left ? s + fill : fill + s;
  };

  std::size_t total = ncols > 0 ? (ncols - 1) * 3 : 0;
  for (std::size_t w : widths) total += w;

  if (!title.empty()) {
    os << title << '\n';
    os << std::string(std::max(title.size(), total), '=') << '\n';
  }
  for (std::size_t i = 0; i < ncols; ++i) {
    if (i) os << " | ";
    os << pad(i < header_.size() ? header_[i] : "", i);
  }
  os << '\n' << std::string(total, '-') << '\n';
  for (const auto& r : rows_) {
    if (r.separator) {
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (std::size_t i = 0; i < ncols; ++i) {
      if (i) os << " | ";
      os << pad(i < r.cells.size() ? r.cells[i] : "", i);
    }
    os << '\n';
  }
}

std::string TextTable::to_string(const std::string& title) const {
  std::ostringstream oss;
  print(oss, title);
  return oss.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) os << ',';
    os << header[i];
  }
  os << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
}

}  // namespace tsmo
