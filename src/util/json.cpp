#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tsmo {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  *os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int k = 0; k < indent_; ++k) *os_ << ' ';
  }
}

void JsonWriter::before_value() {
  started_ = true;
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (has_items_.back()) *os_ << ',';
    has_items_.back() = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(Scope::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(Scope::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (has_items_.back()) *os_ << ',';
  has_items_.back() = true;
  newline_indent();
  *os_ << '"' << escape(name) << "\": ";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  *os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    *os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  *os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  *os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *os_ << "null";
  return *this;
}

std::int64_t JsonValue::as_int64(std::int64_t fallback) const noexcept {
  if (!is_number()) return fallback;
  // Integer tokens (no '.', 'e', 'E') re-parse exactly; doubles lose
  // precision above 2^53, which matters for 64-bit fingerprints.
  if (string_.find_first_of(".eE") == std::string::npos) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(string_.c_str(), &end, 10);
    if (end != string_.c_str() && errno == 0) return v;
  }
  return static_cast<std::int64_t>(number_);
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (!is_object()) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &items_[i];
  }
  return nullptr;
}

/// Recursive-descent parser.  Depth-limited so a hostile body cannot blow
/// the stack (the job plane feeds it network input).
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::unique_ptr<JsonValue> parse() {
    auto root = std::make_unique<JsonValue>();
    if (!parse_value(*root, 0)) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return nullptr;
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[++pos_];
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are kept as
            // two 3-byte sequences — lossless for our round-trip needs).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("invalid escape");
        }
        continue;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      out += static_cast<char>(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = start;
      return fail("invalid number");
    }
    out.kind_ = JsonValue::Kind::Number;
    out.number_ = v;
    out.string_ = token;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind_ = JsonValue::Kind::Object;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
          return fail("expected object key");
        }
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        JsonValue member;
        if (!parse_value(member, depth + 1)) return false;
        out.keys_.push_back(std::move(key));
        out.items_.push_back(std::move(member));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind_ = JsonValue::Kind::Array;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        JsonValue element;
        if (!parse_value(element, depth + 1)) return false;
        out.items_.push_back(std::move(element));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind_ = JsonValue::Kind::String;
      return parse_string(out.string_);
    }
    if (c == 't') {
      if (!literal("true", 4)) return false;
      out.kind_ = JsonValue::Kind::Bool;
      out.bool_ = true;
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return false;
      out.kind_ = JsonValue::Kind::Bool;
      out.bool_ = false;
      return true;
    }
    if (c == 'n') {
      if (!literal("null", 4)) return false;
      out.kind_ = JsonValue::Kind::Null;
      return true;
    }
    return parse_number(out);
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

std::unique_ptr<JsonValue> json_parse(const std::string& text,
                                      std::string* error) {
  return JsonParser(text, error).parse();
}

}  // namespace tsmo
