#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace tsmo {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  *os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int k = 0; k < indent_; ++k) *os_ << ' ';
  }
}

void JsonWriter::before_value() {
  started_ = true;
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (has_items_.back()) *os_ << ',';
    has_items_.back() = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(Scope::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(Scope::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (has_items_.back()) *os_ << ',';
  has_items_.back() = true;
  newline_indent();
  *os_ << '"' << escape(name) << "\": ";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  *os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    *os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  *os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  *os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *os_ << "null";
  return *this;
}

}  // namespace tsmo
