#include "util/tsdb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tsmo::tsdb {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::unique_ptr<std::atomic<double>[]> make_ring(int n) {
  auto ring = std::make_unique<std::atomic<double>[]>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ring[i].store(kNaN, std::memory_order_relaxed);
  return ring;
}

}  // namespace

const char* to_string(Kind kind) noexcept {
  return kind == Kind::kCounter ? "counter" : "gauge";
}

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative wildcard match with backtracking to the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

Tsdb::Tsdb(TsdbOptions opts) : opts_(opts) {
  opts_.sample_period_s = std::max(opts_.sample_period_s, 1e-3);
  opts_.raw_capacity = std::max(opts_.raw_capacity, 2);
  opts_.agg_every = std::max(opts_.agg_every, 1);
  opts_.agg_capacity = std::max(opts_.agg_capacity, 2);
  opts_.max_series = std::max(opts_.max_series, 1);
  raw_t_ms_ = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<std::size_t>(opts_.raw_capacity));
  agg_t_ms_ = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<std::size_t>(opts_.agg_capacity));
  for (int i = 0; i < opts_.raw_capacity; ++i)
    raw_t_ms_[i].store(0, std::memory_order_relaxed);
  for (int i = 0; i < opts_.agg_capacity; ++i)
    agg_t_ms_[i].store(0, std::memory_order_relaxed);
}

Tsdb::Series* Tsdb::find_or_create(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lock(series_mu_);
  for (auto& s : series_) {
    if (s->name == name) return s.get();
  }
  if (series_.size() >= static_cast<std::size_t>(opts_.max_series)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto s = std::make_unique<Series>();
  s->name.assign(name);
  s->kind = kind;
  s->raw = make_ring(opts_.raw_capacity);
  s->agg_min = make_ring(opts_.agg_capacity);
  s->agg_mean = make_ring(opts_.agg_capacity);
  s->agg_max = make_ring(opts_.agg_capacity);
  series_.push_back(std::move(s));
  return series_.back().get();
}

const Tsdb::Series* Tsdb::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(series_mu_);
  for (const auto& s : series_) {
    if (s->name == name) return s.get();
  }
  return nullptr;
}

void Tsdb::begin_tick(std::int64_t t_ms) {
  open_t_ms_ = t_ms;
  tick_open_ = true;
  std::lock_guard<std::mutex> lock(series_mu_);
  for (auto& s : series_) s->has_staged = false;
}

void Tsdb::set(std::string_view name, Kind kind, double value) {
  if (!tick_open_ || !std::isfinite(value)) return;
  Series* s = find_or_create(name, kind);
  if (s == nullptr) return;
  s->staged = value;
  s->has_staged = true;
}

void Tsdb::commit_tick() {
  if (!tick_open_) return;
  tick_open_ = false;

  const std::uint64_t tick = ticks_.load(std::memory_order_relaxed);
  const int raw_slot = static_cast<int>(tick % opts_.raw_capacity);
  const bool fold = (tick + 1) % static_cast<std::uint64_t>(opts_.agg_every) == 0;
  const int agg_slot = static_cast<int>(
      (tick / opts_.agg_every) % static_cast<std::uint64_t>(opts_.agg_capacity));

  // Hold the table lock across publish so creation can't interleave with a
  // half-written tick; readers never take this lock for ring data.
  std::lock_guard<std::mutex> lock(series_mu_);
  version_.fetch_add(1, std::memory_order_acq_rel);  // odd: publishing
  raw_t_ms_[raw_slot].store(open_t_ms_, std::memory_order_relaxed);
  for (auto& s : series_) {
    s->raw[raw_slot].store(s->has_staged ? s->staged : kNaN,
                           std::memory_order_relaxed);
  }
  if (fold) {
    agg_t_ms_[agg_slot].store(open_t_ms_, std::memory_order_relaxed);
    const std::uint64_t first = tick + 1 - static_cast<std::uint64_t>(opts_.agg_every);
    for (auto& s : series_) {
      double mn = kNaN, mx = kNaN, sum = 0.0;
      int n = 0;
      for (std::uint64_t i = first; i <= tick; ++i) {
        const double v =
            s->raw[static_cast<int>(i % opts_.raw_capacity)].load(
                std::memory_order_relaxed);
        if (!std::isfinite(v)) continue;
        mn = (n == 0) ? v : std::min(mn, v);
        mx = (n == 0) ? v : std::max(mx, v);
        sum += v;
        ++n;
      }
      s->agg_min[agg_slot].store(mn, std::memory_order_relaxed);
      s->agg_mean[agg_slot].store(n > 0 ? sum / n : kNaN,
                                  std::memory_order_relaxed);
      s->agg_max[agg_slot].store(mx, std::memory_order_relaxed);
    }
  }
  ticks_.store(tick + 1, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);  // even: stable
}

std::uint64_t Tsdb::copy_tail(const Series& s, bool agg, int want,
                              std::vector<std::int64_t>& t_ms,
                              std::vector<double>& v_min,
                              std::vector<double>& v_mean,
                              std::vector<double>& v_max) const {
  const int cap = agg ? opts_.agg_capacity : opts_.raw_capacity;
  want = std::min(want, cap);
  std::uint64_t ticks_seen = 0;
  for (;;) {
    const std::uint64_t v1 = version_.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // publish in flight; retry
    ticks_seen = ticks_.load(std::memory_order_acquire);
    // Newest complete slot index (global), per tier.
    const std::uint64_t slots =
        agg ? ticks_seen / static_cast<std::uint64_t>(opts_.agg_every)
            : ticks_seen;
    const int have =
        static_cast<int>(std::min<std::uint64_t>(slots, static_cast<std::uint64_t>(cap)));
    const int n = std::min(want, have);
    t_ms.assign(static_cast<std::size_t>(n), 0);
    v_min.assign(static_cast<std::size_t>(n), kNaN);
    v_mean.assign(static_cast<std::size_t>(n), kNaN);
    v_max.assign(static_cast<std::size_t>(n), kNaN);
    for (int k = 0; k < n; ++k) {
      // k = 0 is oldest of the tail; global slot index:
      const std::uint64_t g = slots - static_cast<std::uint64_t>(n - k);
      const int idx = static_cast<int>(g % static_cast<std::uint64_t>(cap));
      if (agg) {
        t_ms[k] = agg_t_ms_[idx].load(std::memory_order_relaxed);
        v_min[k] = s.agg_min[idx].load(std::memory_order_relaxed);
        v_mean[k] = s.agg_mean[idx].load(std::memory_order_relaxed);
        v_max[k] = s.agg_max[idx].load(std::memory_order_relaxed);
      } else {
        t_ms[k] = raw_t_ms_[idx].load(std::memory_order_relaxed);
        const double v = s.raw[idx].load(std::memory_order_relaxed);
        v_min[k] = v_mean[k] = v_max[k] = v;
      }
    }
    const std::uint64_t v2 = version_.load(std::memory_order_acquire);
    if (v1 == v2) return ticks_seen;
  }
}

std::vector<TsSeries> Tsdb::query(std::string_view glob, double window_s,
                                  double step_s, std::int64_t now_ms) const {
  window_s = std::max(window_s, opts_.sample_period_s);
  step_s = std::max(step_s, opts_.sample_period_s);
  const bool use_agg = window_s > opts_.raw_retention_s();
  const double slot_s =
      use_agg ? opts_.sample_period_s * opts_.agg_every : opts_.sample_period_s;
  const int want = static_cast<int>(
      std::min<double>(std::ceil(window_s / slot_s) + 2, 1e7));

  // Snapshot the matching series set, then read rings lock-free.
  std::vector<const Series*> matched;
  {
    std::lock_guard<std::mutex> lock(series_mu_);
    for (const auto& s : series_) {
      if (glob_match(glob, s->name)) matched.push_back(s.get());
    }
  }
  std::sort(matched.begin(), matched.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });

  std::vector<TsSeries> out;
  out.reserve(matched.size());
  std::vector<std::int64_t> t_ms;
  std::vector<double> v_min, v_mean, v_max;
  const std::int64_t win_lo = now_ms - static_cast<std::int64_t>(window_s * 1000.0);
  const std::int64_t step_ms =
      std::max<std::int64_t>(static_cast<std::int64_t>(step_s * 1000.0), 1);

  for (const Series* s : matched) {
    copy_tail(*s, use_agg, want, t_ms, v_min, v_mean, v_max);
    TsSeries ts;
    ts.name = s->name;
    ts.kind = s->kind;

    // Bucket b covers (now - (b+1)*step, now - b*step]; emitted ascending.
    struct Acc {
      double mn = 0, mx = 0, sum = 0;
      int n = 0;
      std::int64_t t = 0;  // newest sample time in bucket
      double last = 0;     // newest sample value (counter rate base)
    };
    std::vector<Acc> buckets;
    const std::int64_t span_ms = now_ms - win_lo;
    const int nb = static_cast<int>((span_ms + step_ms - 1) / step_ms);
    buckets.resize(static_cast<std::size_t>(std::max(nb, 1)));

    for (std::size_t i = 0; i < t_ms.size(); ++i) {
      const std::int64_t t = t_ms[i];
      const double vm = v_min[i];
      if (!std::isfinite(vm) || t <= win_lo || t > now_ms) continue;
      // Bucket b covers (now - (b+1)*step, now - b*step]; a sample with
      // back = now - t lands in bucket back / step (boundary closes b).
      const std::int64_t back = now_ms - t;
      const int b = static_cast<int>(back / step_ms);
      if (b < 0 || b >= static_cast<int>(buckets.size())) continue;
      Acc& a = buckets[static_cast<std::size_t>(b)];
      if (a.n == 0) {
        a.mn = vm;
        a.mx = v_max[i];
        a.sum = v_mean[i];
      } else {
        a.mn = std::min(a.mn, vm);
        a.mx = std::max(a.mx, v_max[i]);
        a.sum += v_mean[i];
      }
      ++a.n;
      if (a.n == 1 || t >= a.t) {
        a.t = t;
        a.last = v_max[i];
      }
    }

    if (s->kind == Kind::kGauge) {
      for (int b = static_cast<int>(buckets.size()) - 1; b >= 0; --b) {
        const Acc& a = buckets[static_cast<std::size_t>(b)];
        if (a.n == 0) continue;
        TsPoint p;
        p.t_ms = now_ms - static_cast<std::int64_t>(b) * step_ms;
        p.min = a.mn;
        p.mean = a.sum / a.n;
        p.max = a.mx;
        ts.points.push_back(p);
      }
    } else {
      // Counter: per-bucket rate from consecutive cumulative maxima.
      bool have_prev = false;
      double prev_v = 0.0;
      std::int64_t prev_t = 0;
      std::vector<TsPoint> pts;
      for (int b = static_cast<int>(buckets.size()) - 1; b >= 0; --b) {
        const Acc& a = buckets[static_cast<std::size_t>(b)];
        if (a.n == 0) continue;
        if (have_prev) {
          const double dt_s =
              static_cast<double>(a.t - prev_t) / 1000.0;
          if (dt_s > 0.0) {
            const double rate = std::max(a.mx - prev_v, 0.0) / dt_s;
            TsPoint p;
            p.t_ms = now_ms - static_cast<std::int64_t>(b) * step_ms;
            p.min = p.mean = p.max = rate;
            pts.push_back(p);
          }
        }
        have_prev = true;
        prev_v = a.mx;
        prev_t = a.t;
      }
      ts.points = std::move(pts);
    }
    out.push_back(std::move(ts));
  }
  return out;
}

double Tsdb::increase(std::string_view name, double window_s,
                      std::int64_t now_ms) const {
  const Series* s = find(name);
  if (s == nullptr || s->kind != Kind::kCounter) return 0.0;
  const bool use_agg = window_s > opts_.raw_retention_s();
  const double slot_s =
      use_agg ? opts_.sample_period_s * opts_.agg_every : opts_.sample_period_s;
  const int want =
      static_cast<int>(std::min<double>(std::ceil(window_s / slot_s) + 2, 1e7));
  std::vector<std::int64_t> t_ms;
  std::vector<double> v_min, v_mean, v_max;
  copy_tail(*s, use_agg, want, t_ms, v_min, v_mean, v_max);
  const std::int64_t win_lo = now_ms - static_cast<std::int64_t>(window_s * 1000.0);
  bool have_first = false;
  double first = 0.0, last = 0.0;
  for (std::size_t i = 0; i < t_ms.size(); ++i) {
    if (!std::isfinite(v_min[i]) || t_ms[i] <= win_lo || t_ms[i] > now_ms)
      continue;
    if (!have_first) {
      first = v_min[i];
      have_first = true;
    }
    last = v_max[i];
  }
  if (!have_first) return 0.0;
  return std::max(last - first, 0.0);
}

double Tsdb::latest(std::string_view name) const {
  const Series* s = find(name);
  if (s == nullptr) return kNaN;
  std::vector<std::int64_t> t_ms;
  std::vector<double> v_min, v_mean, v_max;
  // Scan back over the raw tail for the newest finite sample.
  copy_tail(*s, /*agg=*/false, opts_.raw_capacity, t_ms, v_min, v_mean, v_max);
  for (std::size_t i = t_ms.size(); i-- > 0;) {
    if (std::isfinite(v_max[i])) return v_max[i];
  }
  return kNaN;
}

std::vector<std::string> Tsdb::names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(series_mu_);
    out.reserve(series_.size());
    for (const auto& s : series_) out.push_back(s->name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Tsdb::series_count() const {
  std::lock_guard<std::mutex> lock(series_mu_);
  return series_.size();
}

}  // namespace tsmo::tsdb
