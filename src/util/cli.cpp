#include "util/cli.hpp"

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tsmo {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  options_[name] = Option{help, default_value, false, false};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{help, "", true, false};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      err << help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      err << program_ << ": unknown option --" << name << "\n" << help();
      return false;
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      if (has_value) {
        err << program_ << ": flag --" << name << " takes no value\n";
        return false;
      }
      opt.set = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        err << program_ << ": option --" << name << " needs a value\n";
        return false;
      }
      value = argv[++i];
    }
    opt.value = std::move(value);
    opt.set = true;
  }
  return true;
}

const std::string& CliParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::logic_error("CliParser: unregistered option " + name);
  }
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool CliParser::flag(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::logic_error("CliParser: unregistered flag " + name);
  }
  return it->second.set;
}

bool CliParser::was_set(const std::string& name) const {
  const auto it = options_.find(name);
  return it != options_.end() && it->second.set;
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const std::string& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) {
      os << " <value>";
      if (!opt.value.empty()) os << " (default: " << opt.value << ")";
    }
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      show this text\n";
  return os.str();
}

}  // namespace tsmo
