#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace tsmo {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return Summary{rs.count(), rs.mean(), rs.stddev(), rs.min(), rs.max()};
}

// ---------------------------------------------------------------------------
// Special functions
// ---------------------------------------------------------------------------

double log_gamma(double x) {
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static constexpr double kCoeff[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps the approximation in its accurate range.
    const double pi = 3.14159265358979323846;
    return std::log(pi / std::sin(pi * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoeff[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoeff[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * 3.14159265358979323846) +
         (x + 0.5) * std::log(t) - t + std::log(a);
}

namespace {

/// Continued fraction for the incomplete beta function (Numerical-Recipes
/// style modified Lentz algorithm).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete_beta: a and b must be positive");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  if (dof <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * incomplete_beta(0.5 * dof, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

// ---------------------------------------------------------------------------
// Hypothesis tests
// ---------------------------------------------------------------------------

namespace {

TTestResult finish_t(double t, double dof) {
  TTestResult r;
  r.t = t;
  r.dof = dof;
  if (dof <= 0.0 || !std::isfinite(t)) {
    r.p_value = 1.0;
    r.valid = false;
    return r;
  }
  const double cdf = student_t_cdf(std::fabs(t), dof);
  r.p_value = std::clamp(2.0 * (1.0 - cdf), 0.0, 1.0);
  r.valid = true;
  return r;
}

}  // namespace

TTestResult paired_t_test(std::span<const double> xs,
                          std::span<const double> ys) {
  TTestResult r;
  if (xs.size() != ys.size() || xs.size() < 2) return r;
  RunningStats diff;
  for (std::size_t i = 0; i < xs.size(); ++i) diff.add(xs[i] - ys[i]);
  const double sd = diff.stddev();
  const auto n = static_cast<double>(diff.count());
  if (sd == 0.0) {
    // All differences identical: either trivially equal (p = 1) or a
    // degenerate perfect separation (report p = 0).
    r.t = diff.mean() == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    r.dof = n - 1.0;
    r.p_value = diff.mean() == 0.0 ? 1.0 : 0.0;
    r.valid = true;
    return r;
  }
  const double t = diff.mean() / (sd / std::sqrt(n));
  return finish_t(t, n - 1.0);
}

TTestResult welch_t_test(std::span<const double> xs,
                         std::span<const double> ys) {
  TTestResult r;
  if (xs.size() < 2 || ys.size() < 2) return r;
  RunningStats a, b;
  for (double x : xs) a.add(x);
  for (double y : ys) b.add(y);
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double se2 = va + vb;
  if (se2 == 0.0) {
    r.t = a.mean() == b.mean() ? 0.0 : std::numeric_limits<double>::infinity();
    r.dof = static_cast<double>(a.count() + b.count() - 2);
    r.p_value = a.mean() == b.mean() ? 1.0 : 0.0;
    r.valid = true;
    return r;
  }
  const double t = (a.mean() - b.mean()) / std::sqrt(se2);
  const double dof =
      se2 * se2 /
      (va * va / (static_cast<double>(a.count()) - 1.0) +
       vb * vb / (static_cast<double>(b.count()) - 1.0));
  return finish_t(t, dof);
}

TTestResult one_sample_t_test(std::span<const double> xs, double mu0) {
  TTestResult r;
  if (xs.size() < 2) return r;
  RunningStats s;
  for (double x : xs) s.add(x);
  const double sd = s.stddev();
  const auto n = static_cast<double>(s.count());
  if (sd == 0.0) {
    r.t = s.mean() == mu0 ? 0.0 : std::numeric_limits<double>::infinity();
    r.dof = n - 1.0;
    r.p_value = s.mean() == mu0 ? 1.0 : 0.0;
    r.valid = true;
    return r;
  }
  const double t = (s.mean() - mu0) / (sd / std::sqrt(n));
  return finish_t(t, n - 1.0);
}

MannWhitneyResult mann_whitney_u(std::span<const double> xs,
                                 std::span<const double> ys) {
  MannWhitneyResult r;
  const std::size_t n1 = xs.size(), n2 = ys.size();
  if (n1 == 0 || n2 == 0) return r;

  // Rank the pooled sample with midranks for ties.
  struct Tagged {
    double value;
    bool from_x;
  };
  std::vector<Tagged> pool;
  pool.reserve(n1 + n2);
  for (double x : xs) pool.push_back({x, true});
  for (double y : ys) pool.push_back({y, false});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& a, const Tagged& b) {
              return a.value < b.value;
            });

  double rank_sum_x = 0.0;
  double tie_term = 0.0;  // sum of t^3 - t over tie groups
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].value == pool[i].value) ++j;
    const double midrank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    const auto ties = static_cast<double>(j - i);
    if (ties > 1.0) tie_term += ties * ties * ties - ties;
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].from_x) rank_sum_x += midrank;
    }
    i = j;
  }

  const double fn1 = static_cast<double>(n1);
  const double fn2 = static_cast<double>(n2);
  const double n = fn1 + fn2;
  r.u = rank_sum_x - fn1 * (fn1 + 1.0) / 2.0;
  const double mean_u = fn1 * fn2 / 2.0;
  const double var_u =
      fn1 * fn2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All values tied: no evidence of a difference.
    r.z = 0.0;
    r.p_value = 1.0;
    r.valid = true;
    return r;
  }
  // Continuity correction toward the mean.
  const double diff = r.u - mean_u;
  const double corrected =
      diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  r.z = corrected / std::sqrt(var_u);
  r.p_value = std::clamp(2.0 * (1.0 - normal_cdf(std::fabs(r.z))), 0.0, 1.0);
  r.valid = true;
  return r;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, double confidence,
                              int resamples, std::uint64_t seed) {
  BootstrapCi ci;
  if (xs.empty()) return ci;
  ci.point = mean_of(xs);
  if (xs.size() == 1 || resamples <= 0) {
    ci.lower = ci.upper = ci.point;
    return ci;
  }
  // Local xorshift-style generator keeps this independent of util/rng.hpp
  // (stats is used below rng in some builds) and deterministic.
  std::uint64_t state = seed ^ 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    double sum = 0.0;
    for (std::size_t k = 0; k < xs.size(); ++k) {
      sum += xs[next() % xs.size()];
    }
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = std::clamp(1.0 - confidence, 1e-6, 1.0);
  const auto idx = [&](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    return means[static_cast<std::size_t>(pos + 0.5)];
  };
  ci.lower = idx(alpha / 2.0);
  ci.upper = idx(1.0 - alpha / 2.0);
  return ci;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::string format_mean_sd(double mean, double sd, int precision) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean, precision,
                sd);
  return buf;
}

double mean_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double median_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace tsmo
