#include "util/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/json.hpp"

namespace tsmo::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

bool set_enabled(bool on) noexcept {
  return detail::g_enabled.exchange(on, std::memory_order_seq_cst);
}

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.  Used for
/// id derivation only — never for search randomness.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<std::uint64_t> g_span_counter{0};

thread_local TraceContext t_ambient_trace;

}  // namespace

std::uint64_t derive_trace_id(std::uint64_t seed) noexcept {
  const std::uint64_t id = mix64(seed ^ 0x74736d6f5452ULL);  // "tsmoTR"
  return id == 0 ? 1 : id;
}

std::uint64_t next_span_id(std::uint64_t trace_id) noexcept {
  const std::uint64_t n =
      g_span_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = mix64(trace_id ^ (n * 0x9e3779b97f4a7c15ULL));
  return id == 0 ? 1 : id;
}

TraceContext current_trace() noexcept { return t_ambient_trace; }

void set_current_trace(TraceContext ctx) noexcept { t_ambient_trace = ctx; }

namespace {

/// Bucket index for a duration: 0 for exact zeros, otherwise bit_width
/// clamped into the top (open-ended) bucket.
int bucket_index(std::uint64_t ns) noexcept {
  if (ns == 0) return 0;
  return std::min(static_cast<int>(std::bit_width(ns)), kHistogramBuckets - 1);
}

double bucket_lower_ns(int b) noexcept {
  return b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
}

double bucket_upper_ns(int b) noexcept { return std::ldexp(1.0, b); }

/// Owner-thread increment: cheaper than fetch_add because the slot has
/// exactly one writer; readers see a monotone (if slightly stale) value.
void owner_add(std::atomic<std::uint64_t>& slot, std::uint64_t delta) noexcept {
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

struct HistogramCell {
  std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum_ns{0};
};

struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint8_t kind = 0;  ///< 0 complete, 1 instant
};

/// One per live thread (leased; values survive thread exit so counter totals
/// conserve exactly).  alignas(64) keeps neighbouring shards off each
/// other's cache lines.
struct alignas(64) Shard {
  explicit Shard(int tid_in) : tid(tid_in) {
    hists = std::make_unique<HistogramCell[]>(kMaxHistograms);
    ring = std::make_unique<SpanRecord[]>(kSpanRingCapacity);
    label = "thread " + std::to_string(tid_in);
  }

  int tid;
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};
  std::unique_ptr<HistogramCell[]> hists;
  std::unique_ptr<SpanRecord[]> ring;
  /// Total spans ever recorded; ring slot = head % capacity.  Release store
  /// so a quiescent-point reader sees the records it covers.
  std::atomic<std::uint64_t> span_head{0};
  std::string label;  // guarded by the registry mutex
};

struct NameTable {
  std::unordered_map<std::string, int> index;
  std::vector<std::string> names;

  /// Returns the slot for `name`, or -1 once `capacity` slots are taken.
  int intern(const std::string& name, int capacity) {
    auto it = index.find(name);
    if (it != index.end()) return it->second;
    if (static_cast<int>(names.size()) >= capacity) return -1;
    const int slot = static_cast<int>(names.size());
    names.push_back(name);
    index.emplace(name, slot);
    return slot;
  }
};

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  NameTable counter_names;
  NameTable gauge_names;
  NameTable histogram_names;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<int> free_shards;
  std::atomic<std::int64_t> gauges[kMaxGauges] = {};

  /// Per-trace subscription slots.  The id is the fast-path filter (one
  /// relaxed load per slot on traced records); the buffer pointer is only
  /// touched under the slot mutex, so detach can never race an append into
  /// a freed buffer.
  struct TraceSlot {
    std::atomic<std::uint64_t> id{0};
    std::mutex slot_mu;
    TraceBuffer* buffer = nullptr;  // guarded by slot_mu
  };
  TraceSlot trace_slots[kMaxActiveTraces];

  void route_trace(const SpanRecord& rec, int tid) {
    for (TraceSlot& slot : trace_slots) {
      if (slot.id.load(std::memory_order_relaxed) != rec.trace_id) continue;
      std::lock_guard<std::mutex> lock(slot.slot_mu);
      if (slot.id.load(std::memory_order_relaxed) == rec.trace_id &&
          slot.buffer != nullptr) {
        slot.buffer->append(TraceSpan{rec.name, tid, rec.start_ns, rec.dur_ns,
                                      rec.span_id, rec.parent_id, rec.kind});
      }
      return;
    }
  }

  Shard* acquire_shard() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free_shards.empty()) {
      const int idx = free_shards.back();
      free_shards.pop_back();
      return shards[idx].get();
    }
    const int tid = static_cast<int>(shards.size());
    shards.push_back(std::make_unique<Shard>(tid));
    return shards.back().get();
  }

  void release_shard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mu);
    free_shards.push_back(shard->tid);
  }
};

namespace {

/// Thread-local shard lease.  The destructor returns the shard (with its
/// values intact) to the registry free-list for reuse by later threads, so
/// shard count stays bounded under thread churn and totals never regress.
struct ShardLease {
  Shard* shard = nullptr;
  Registry::Impl* impl = nullptr;
  ~ShardLease() {
    if (shard != nullptr) impl->release_shard(shard);
  }
};

}  // namespace

// Out-of-line so Impl is complete; called through the public methods below.
namespace {

Shard& local_shard(Registry::Impl& impl) {
  static thread_local ShardLease lease;
  if (lease.shard == nullptr) {
    lease.shard = impl.acquire_shard();
    lease.impl = &impl;
  }
  return *lease.shard;
}

}  // namespace

Registry::Registry() : impl_(new Impl()) {}

Registry& Registry::instance() noexcept {
  // Leaked: thread_local ShardLease destructors may run arbitrarily late in
  // process teardown and must find the registry alive.
  static Registry* r = new Registry();
  return *r;
}

CounterId Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return CounterId{static_cast<std::int16_t>(
      impl_->counter_names.intern(name, kMaxCounters))};
}

GaugeId Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return GaugeId{
      static_cast<std::int16_t>(impl_->gauge_names.intern(name, kMaxGauges))};
}

HistogramId Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return HistogramId{static_cast<std::int16_t>(
      impl_->histogram_names.intern(name, kMaxHistograms))};
}

void Registry::add(CounterId id, std::uint64_t delta) noexcept {
  if (!id.valid()) return;
  owner_add(local_shard(*impl_).counters[id.index], delta);
}

void Registry::gauge_add(GaugeId id, std::int64_t delta) noexcept {
  if (!id.valid()) return;
  impl_->gauges[id.index].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_set(GaugeId id, std::int64_t value) noexcept {
  if (!id.valid()) return;
  impl_->gauges[id.index].store(value, std::memory_order_relaxed);
}

void Registry::record_ns(HistogramId id, std::uint64_t ns) noexcept {
  if (!id.valid()) return;
  HistogramCell& cell = local_shard(*impl_).hists[id.index];
  owner_add(cell.buckets[bucket_index(ns)], 1);
  owner_add(cell.count, 1);
  owner_add(cell.sum_ns, ns);
}

void Registry::record_span(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns) noexcept {
  record_span(name, start_ns, dur_ns, TraceContext{}, 0);
}

void Registry::record_span(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns,
                           TraceContext parent) noexcept {
  record_span(name, start_ns, dur_ns, parent,
              parent.valid() ? next_span_id(parent.trace_id) : 0);
}

void Registry::record_span(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns, TraceContext parent,
                           std::uint64_t span_id) noexcept {
  Shard& shard = local_shard(*impl_);
  const std::uint64_t head =
      shard.span_head.load(std::memory_order_relaxed);
  SpanRecord rec{name, start_ns, dur_ns};
  if (parent.valid()) {
    rec.trace_id = parent.trace_id;
    rec.span_id = span_id;
    rec.parent_id = parent.span_id;
  }
  shard.ring[head % kSpanRingCapacity] = rec;
  shard.span_head.store(head + 1, std::memory_order_release);
  if (rec.trace_id != 0) impl_->route_trace(rec, shard.tid);
}

void Registry::record_instant(const char* name, std::uint64_t t_ns,
                              TraceContext parent) noexcept {
  if (!parent.valid()) return;  // instants only matter inside a trace
  Shard& shard = local_shard(*impl_);
  const std::uint64_t head =
      shard.span_head.load(std::memory_order_relaxed);
  SpanRecord rec{name, t_ns, 0};
  rec.trace_id = parent.trace_id;
  rec.span_id = next_span_id(parent.trace_id);
  rec.parent_id = parent.span_id;
  rec.kind = 1;
  shard.ring[head % kSpanRingCapacity] = rec;
  shard.span_head.store(head + 1, std::memory_order_release);
  impl_->route_trace(rec, shard.tid);
}

bool Registry::attach_trace(std::uint64_t trace_id, TraceBuffer* buffer) {
  if (trace_id == 0 || buffer == nullptr) return false;
  for (auto& slot : impl_->trace_slots) {
    std::uint64_t expected = 0;
    if (slot.id.compare_exchange_strong(expected, trace_id,
                                        std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(slot.slot_mu);
      slot.buffer = buffer;
      return true;
    }
  }
  return false;  // all kMaxActiveTraces slots busy; spans still hit the rings
}

void Registry::detach_trace(std::uint64_t trace_id) noexcept {
  if (trace_id == 0) return;
  for (auto& slot : impl_->trace_slots) {
    if (slot.id.load(std::memory_order_relaxed) != trace_id) continue;
    {
      std::lock_guard<std::mutex> lock(slot.slot_mu);
      slot.buffer = nullptr;
      slot.id.store(0, std::memory_order_release);
    }
    return;
  }
}

void Registry::set_thread_label(const std::string& label) {
  Shard& shard = local_shard(*impl_);
  std::lock_guard<std::mutex> lock(impl_->mu);
  shard.label = label;
}

Snapshot Registry::snapshot() const { return snapshot(true); }

Snapshot Registry::snapshot(bool include_spans) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Snapshot snap;

  const auto& counter_names = impl_->counter_names.names;
  snap.counters.resize(counter_names.size());
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    snap.counters[i].name = counter_names[i];
  }
  const auto& hist_names = impl_->histogram_names.names;
  snap.histograms.resize(hist_names.size());
  for (std::size_t i = 0; i < hist_names.size(); ++i) {
    snap.histograms[i].name = hist_names[i];
  }

  for (const auto& shard_ptr : impl_->shards) {
    const Shard& shard = *shard_ptr;
    for (std::size_t i = 0; i < counter_names.size(); ++i) {
      snap.counters[i].value +=
          shard.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < hist_names.size(); ++i) {
      const HistogramCell& cell = shard.hists[i];
      HistogramSnap& out = snap.histograms[i];
      for (int b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
      out.count += cell.count.load(std::memory_order_relaxed);
      out.sum_ns += cell.sum_ns.load(std::memory_order_relaxed);
    }

    const std::uint64_t head = shard.span_head.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(head, kSpanRingCapacity);
    if (include_spans) {
      for (std::uint64_t k = 0; k < kept; ++k) {
        const SpanRecord& rec =
            shard.ring[(head - kept + k) % kSpanRingCapacity];
        if (rec.name == nullptr) continue;
        snap.spans.push_back(SpanSnap{rec.name, shard.tid, rec.start_ns,
                                      rec.dur_ns, rec.trace_id, rec.span_id,
                                      rec.parent_id, rec.kind});
      }
    }
    snap.threads.push_back(
        ThreadSnap{shard.tid, shard.label, head, head - kept});
  }

  const auto& gauge_names = impl_->gauge_names.names;
  snap.gauges.resize(gauge_names.size());
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    snap.gauges[i].name = gauge_names[i];
    snap.gauges[i].value = impl_->gauges[i].load(std::memory_order_relaxed);
  }

  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanSnap& a, const SpanSnap& b) {
              return a.start_ns < b.start_ns;
            });
  return snap;
}

void Registry::reset() noexcept {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& shard_ptr : impl_->shards) {
    Shard& shard = *shard_ptr;
    for (auto& c : shard.counters) c.store(0, std::memory_order_relaxed);
    for (int h = 0; h < kMaxHistograms; ++h) {
      HistogramCell& cell = shard.hists[h];
      for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum_ns.store(0, std::memory_order_relaxed);
    }
    for (int s = 0; s < kSpanRingCapacity; ++s) shard.ring[s] = SpanRecord{};
    shard.span_head.store(0, std::memory_order_relaxed);
  }
  for (auto& g : impl_->gauges) g.store(0, std::memory_order_relaxed);
}

double HistogramSnap::quantile_ns(double q) const noexcept {
  if (count == 0) return 0.0;
  double target = q * static_cast<double>(count);
  if (target < 1.0) target = 1.0;
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += buckets[b];
    if (static_cast<double>(cum) >= target) {
      const double lo = bucket_lower_ns(b);
      const double hi = bucket_upper_ns(b);
      const double frac =
          (target - before) / static_cast<double>(buckets[b]);
      return lo + frac * (hi - lo);
    }
  }
  return bucket_upper_ns(kHistogramBuckets - 1);
}

const CounterSnap* Snapshot::find_counter(
    const std::string& name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnap* Snapshot::find_gauge(const std::string& name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnap* Snapshot::find_histogram(
    const std::string& name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

/// Prints nanoseconds as fractional microseconds ("1234.567") — the
/// timestamp unit Chrome trace events use.
void write_us(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Snapshot& snap) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadSnap& t : snap.threads) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t.tid
       << ",\"args\":{\"name\":\"" << JsonWriter::escape(t.label) << "\"}}";
  }
  for (const SpanSnap& s : snap.spans) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << JsonWriter::escape(s.name) << "\",\"cat\":\"tsmo\"";
    if (s.kind == 1) {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      write_us(os, s.start_ns);
    } else {
      os << ",\"ph\":\"X\",\"ts\":";
      write_us(os, s.start_ns);
      os << ",\"dur\":";
      write_us(os, s.dur_ns);
    }
    os << ",\"pid\":0,\"tid\":" << s.tid;
    if (s.trace_id != 0) {
      char ids[128];
      std::snprintf(ids, sizeof(ids),
                    ",\"args\":{\"trace\":\"0x%016llx\",\"span\":\"0x%016llx\","
                    "\"parent\":\"0x%016llx\"}",
                    static_cast<unsigned long long>(s.trace_id),
                    static_cast<unsigned long long>(s.span_id),
                    static_cast<unsigned long long>(s.parent_id));
      os << ids;
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_snapshot_jsonl(std::ostream& os, const Snapshot& snap) {
  os << "{\"kind\":\"meta\",\"counters\":" << snap.counters.size()
     << ",\"gauges\":" << snap.gauges.size()
     << ",\"histograms\":" << snap.histograms.size()
     << ",\"spans\":" << snap.spans.size()
     << ",\"threads\":" << snap.threads.size() << "}\n";
  for (const CounterSnap& c : snap.counters) {
    os << "{\"kind\":\"counter\",\"name\":\"" << JsonWriter::escape(c.name)
       << "\",\"value\":" << c.value << "}\n";
  }
  for (const GaugeSnap& g : snap.gauges) {
    os << "{\"kind\":\"gauge\",\"name\":\"" << JsonWriter::escape(g.name)
       << "\",\"value\":" << g.value << "}\n";
  }
  for (const HistogramSnap& h : snap.histograms) {
    os << "{\"kind\":\"histogram\",\"name\":\"" << JsonWriter::escape(h.name)
       << "\",\"count\":" << h.count << ",\"sum_ns\":" << h.sum_ns;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ",\"mean_ns\":%.1f,\"p50_ns\":%.1f,\"p90_ns\":%.1f,"
                  "\"p99_ns\":%.1f",
                  h.mean_ns(), h.quantile_ns(0.50), h.quantile_ns(0.90),
                  h.quantile_ns(0.99));
    os << buf << ",\"buckets\":[";
    // Trim trailing empty buckets to keep lines short.
    int last = kHistogramBuckets - 1;
    while (last > 0 && h.buckets[last] == 0) --last;
    for (int b = 0; b <= last; ++b) {
      if (b > 0) os << ",";
      os << h.buckets[b];
    }
    os << "]}\n";
  }
  for (const ThreadSnap& t : snap.threads) {
    os << "{\"kind\":\"thread\",\"tid\":" << t.tid << ",\"label\":\""
       << JsonWriter::escape(t.label)
       << "\",\"spans_recorded\":" << t.spans_recorded
       << ",\"spans_dropped\":" << t.spans_dropped << "}\n";
  }
}

namespace {

std::string derive_snapshot_path(const std::string& trace_path) {
  const std::string suffix = ".json";
  if (trace_path.size() > suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return trace_path.substr(0, trace_path.size() - suffix.size()) + ".jsonl";
  }
  return trace_path + ".jsonl";
}

}  // namespace

TelemetrySink::TelemetrySink(std::string trace_path)
    : trace_path_(std::move(trace_path)),
      snapshot_path_(derive_snapshot_path(trace_path_)) {}

bool TelemetrySink::write(const Snapshot& snap) const {
  std::ofstream trace(trace_path_);
  if (!trace) return false;
  write_chrome_trace(trace, snap);
  std::ofstream jsonl(snapshot_path_);
  if (!jsonl) return false;
  write_snapshot_jsonl(jsonl, snap);
  return trace.good() && jsonl.good();
}

}  // namespace tsmo::telemetry
