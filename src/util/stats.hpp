#pragma once

// Statistics substrate for the experiment harness.
//
// The paper reports mean ± standard deviation over 30 runs and assesses
// significance with pairwise t-tests (§IV: "To test the statistical
// significance a pairwise t-test was performed...").  This module provides
// Welford accumulators, descriptive summaries, and Student-t machinery
// (paired and Welch two-sample tests) built on a regularized incomplete
// beta function — no external math library required.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tsmo {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Descriptive summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

// ---------------------------------------------------------------------------
// Special functions (double precision, relative error ~1e-12 in the ranges
// exercised by the tests).
// ---------------------------------------------------------------------------

/// Natural log of the gamma function (Lanczos approximation).
double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b), continued-fraction form.
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
double student_t_cdf(double t, double dof);

/// Standard normal CDF.
double normal_cdf(double z);

// ---------------------------------------------------------------------------
// Hypothesis tests
// ---------------------------------------------------------------------------

struct TTestResult {
  double t = 0.0;        ///< test statistic
  double dof = 0.0;      ///< degrees of freedom (fractional for Welch)
  double p_value = 1.0;  ///< two-sided p-value
  bool valid = false;    ///< false when the test is degenerate (n too small)
};

/// Paired t-test on matched samples (the paper's "pairwise t-test" across
/// per-problem results).  Requires xs.size() == ys.size() >= 2.
TTestResult paired_t_test(std::span<const double> xs,
                          std::span<const double> ys);

/// Welch's unequal-variance two-sample t-test.
TTestResult welch_t_test(std::span<const double> xs,
                         std::span<const double> ys);

/// One-sample t-test against a hypothesized mean.
TTestResult one_sample_t_test(std::span<const double> xs, double mu0);

struct MannWhitneyResult {
  double u = 0.0;        ///< U statistic of the first sample
  double z = 0.0;        ///< normal approximation (tie-corrected)
  double p_value = 1.0;  ///< two-sided
  bool valid = false;
};

/// Mann-Whitney U test (two-sided, normal approximation with tie
/// correction) — the nonparametric alternative to Welch's t-test for the
/// skewed per-run distributions metaheuristics produce.
MannWhitneyResult mann_whitney_u(std::span<const double> xs,
                                 std::span<const double> ys);

struct BootstrapCi {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;  ///< sample mean
};

/// Percentile bootstrap confidence interval for the mean.
/// `confidence` in (0, 1), e.g. 0.95.  Deterministic in `seed`.
BootstrapCi bootstrap_mean_ci(std::span<const double> xs,
                              double confidence = 0.95,
                              int resamples = 2000,
                              std::uint64_t seed = 1);

// ---------------------------------------------------------------------------
// Small helpers used when reporting results
// ---------------------------------------------------------------------------

/// Formats "mean±sd" with the given precision, e.g. "226897.72±4999.31".
std::string format_mean_sd(double mean, double sd, int precision = 2);

/// Sample mean of a span (0 for empty).
double mean_of(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double stddev_of(std::span<const double> xs);

/// Median (interpolated); 0 for empty input.  Copies and sorts internally.
double median_of(std::span<const double> xs);

}  // namespace tsmo
