#pragma once

// RunTrace — deterministic-replay fingerprinting (DESIGN.md §7).
//
// Every searcher can record a cheap rolling hash of its decision sequence:
// (searcher id, iteration, accepted move, objective triple, archive size)
// per step, plus engine-level scheduling events (chunk dispatch, deferral,
// solution exchange).  Two runs that make identical decisions produce
// identical fingerprints; a single scheduling divergence changes every
// subsequent hash.  This turns "are the parallel variants reproducible?"
// into an equality check instead of an eyeballed front comparison.
//
// Tracing is a runtime toggle (TsmoParams::trace).  When off, every record
// call is a single predictable branch on a bool — near-zero overhead — so
// the hooks can stay compiled into the hot loop unconditionally.
//
// The archive fingerprint is canonical (entries sorted by objective
// triple), so it is invariant under insertion-order permutations of
// equivalent fronts; the rolling step fingerprint deliberately is not —
// it is the replay check.

#include <bit>
#include <cstdint>
#include <vector>

#include "vrptw/objectives.hpp"  // header-only POD + inline dominance

namespace tsmo {

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-sensitive combination step for rolling hashes.
constexpr std::uint64_t hash_combine(std::uint64_t h,
                                     std::uint64_t v) noexcept {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Bit pattern of a double with -0.0 normalized to +0.0 so numerically
/// equal objective values always hash identically.
inline std::uint64_t hash_bits(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d == 0.0 ? 0.0 : d);
}

/// Hash of one objective triple (exact bit patterns; the library's delta
/// evaluation is bitwise-reproducible, so no tolerance is needed).
inline std::uint64_t hash_objectives(const Objectives& o) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi fractional bits
  h = hash_combine(h, hash_bits(o.distance));
  h = hash_combine(h, static_cast<std::uint64_t>(o.vehicles));
  h = hash_combine(h, hash_bits(o.tardiness));
  return h;
}

/// Canonical fingerprint of a Pareto front: sorts a copy lexicographically
/// by (distance, vehicles, tardiness) and chains the entry hashes, so any
/// two permutations of the same objective set fingerprint identically.
std::uint64_t archive_fingerprint(std::vector<Objectives> front);

class RunTrace {
 public:
  /// Event tags folded into the rolling hash ahead of their payload.
  static constexpr std::uint64_t kTagInit = 0xA1;      ///< initial solution
  static constexpr std::uint64_t kTagStep = 0xA2;      ///< Algorithm 1 step
  static constexpr std::uint64_t kTagDispatch = 0xA3;  ///< chunk schedule
  static constexpr std::uint64_t kTagDefer = 0xA4;     ///< straggler model
  static constexpr std::uint64_t kTagSend = 0xA5;      ///< solution emitted
  static constexpr std::uint64_t kTagReceive = 0xA6;   ///< stored in M_nondom

  RunTrace() = default;
  explicit RunTrace(bool enabled) noexcept : enabled_(enabled) {}

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Rolling hash over all recorded events; 0 when tracing is disabled
  /// (or nothing was recorded), so results can expose "no trace" cheaply.
  std::uint64_t fingerprint() const noexcept {
    return events_ == 0 ? 0 : hash_;
  }

  std::uint64_t events() const noexcept { return events_; }

  /// One step of Algorithm 1: the accepted move (0 on restart), the new
  /// current objectives, and the archive size after UpdateMemories.
  void record_step(int searcher_id, std::int64_t iteration,
                   std::uint64_t move_hash, bool restarted,
                   const Objectives& current,
                   std::size_t archive_size) noexcept {
    if (!enabled_) return;
    std::uint64_t h = hash_combine(hash_, kTagStep);
    h = hash_combine(h, static_cast<std::uint64_t>(searcher_id));
    h = hash_combine(h, static_cast<std::uint64_t>(iteration));
    h = hash_combine(h, restarted ? 1 : move_hash);
    h = hash_combine(h, hash_objectives(current));
    hash_ = hash_combine(h, static_cast<std::uint64_t>(archive_size));
    ++events_;
  }

  /// Engine-level scheduling event (dispatch plan, deferral decision,
  /// solution exchange) with two free payload words.
  void record_event(std::uint64_t tag, std::uint64_t a,
                    std::uint64_t b) noexcept {
    if (!enabled_) return;
    std::uint64_t h = hash_combine(hash_, tag);
    h = hash_combine(h, a);
    hash_ = hash_combine(h, b);
    ++events_;
  }

 private:
  static constexpr std::uint64_t kSeed = 0x13198a2e03707344ULL;

  bool enabled_ = false;
  std::uint64_t hash_ = kSeed;
  std::uint64_t events_ = 0;
};

}  // namespace tsmo
