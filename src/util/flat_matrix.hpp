#pragma once

// Row-major dense matrix on a single contiguous allocation.  Used for the
// site-to-site travel-cost matrix T (§II of the paper), which is read in the
// innermost evaluation loop; contiguity keeps it cache-friendly.

#include <cassert>
#include <cstddef>
#include <vector>

namespace tsmo {

template <typename T>
class FlatMatrix {
 public:
  FlatMatrix() = default;

  FlatMatrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<T>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace tsmo
