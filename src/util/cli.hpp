#pragma once

// Minimal command-line option parser for the example/tool binaries.
// Supports --name value, --name=value, boolean --flags, positional
// arguments, defaults, and generated --help text.  No external deps.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace tsmo {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a value option (always string-typed; use the typed getters).
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value = "");

  /// Registers a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (and writes a diagnostic to `err`) on
  /// unknown options or missing values; `--help` also returns false after
  /// printing the usage text.
  bool parse(int argc, const char* const* argv, std::ostream& err);

  const std::string& get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool flag(const std::string& name) const;
  bool was_set(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  std::string help() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool set = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace tsmo
