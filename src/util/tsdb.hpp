#pragma once

// In-process ring-buffer time-series store (DESIGN.md §15).
//
// The observability planes so far (/metrics, /status, /healthz,
// /jobs/<id>/introspect) are point-in-time snapshots; this store adds the
// time dimension without an external Prometheus: one sampler thread (the
// obs server's, default 1 Hz) stages a value per named series each tick
// and commits the tick into two retention tiers —
//
//   raw  : one slot per tick, default 900 ticks  (1 s × 15 min)
//   agg  : min/mean/max over `agg_every` ticks, default 1440 slots
//          (10 s × 4 h)
//
// Writer side is single-threaded by contract (the sampler); readers (HTTP
// handlers serving /api/timeseries, the SLO engine) are lock-light: series
// creation is the only mutex-guarded structural change, ring values are
// relaxed atomics, and a store-wide seqlock version makes a retried copy
// of a ring a consistent snapshot — readers never block the sampler and
// the sampler never blocks readers.
//
// Series are typed: a kGauge series answers windowed min/mean/max; a
// kCounter series holds cumulative totals and answers per-step rates and
// windowed increases (counter resets clamp to zero).  Histogram quantiles
// enter as gauge series of the sampled p50/p99 (the sampler walks the
// telemetry histogram buckets each tick).
//
// This unit is dependency-free (util layer): it knows nothing about the
// registry, the job plane or HTTP — the obs sampler feeds it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tsmo::tsdb {

enum class Kind : std::uint8_t { kGauge = 0, kCounter = 1 };

/// "gauge" | "counter".
const char* to_string(Kind kind) noexcept;

/// Shell-style glob over series names: `*` matches any run (including
/// empty), `?` one character; everything else is literal.
bool glob_match(std::string_view pattern, std::string_view text) noexcept;

struct TsdbOptions {
  /// Nominal sampling cadence [s]; retention spans derive from it.
  double sample_period_s = 1.0;
  /// Raw tier slots (default 900 × 1 s = 15 min).
  int raw_capacity = 900;
  /// Raw ticks folded into one aggregated slot (default 10 → 10 s).
  int agg_every = 10;
  /// Aggregated tier slots (default 1440 × 10 s = 4 h).
  int agg_capacity = 1440;
  /// Hard series-table bound; past it new names are counted as dropped,
  /// never silently ignored (see dropped_series()).
  int max_series = 512;

  double raw_retention_s() const noexcept {
    return sample_period_s * raw_capacity;
  }
  double agg_retention_s() const noexcept {
    return sample_period_s * agg_every * agg_capacity;
  }
};

/// One downsampled point: bucket-end timestamp plus the min/mean/max of
/// the samples the bucket folded.  For counter series all three carry the
/// per-second rate over the bucket.
struct TsPoint {
  std::int64_t t_ms = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// One queried series: name, kind and its windowed points (ascending t).
struct TsSeries {
  std::string name;
  Kind kind = Kind::kGauge;
  std::vector<TsPoint> points;
};

class Tsdb {
 public:
  explicit Tsdb(TsdbOptions opts = {});

  Tsdb(const Tsdb&) = delete;
  Tsdb& operator=(const Tsdb&) = delete;

  // --- writer side (one sampler thread by contract) ---

  /// Opens tick `t_ms`; set() calls stage values until commit_tick().
  void begin_tick(std::int64_t t_ms);

  /// Stages `value` for series `name` in the open tick, creating the
  /// series on first use (kind is fixed at creation).  Series beyond
  /// max_series are dropped and counted.
  void set(std::string_view name, Kind kind, double value);

  /// Publishes the open tick into the raw ring (absent series get a gap)
  /// and, every agg_every ticks, folds the window into the agg ring.
  void commit_tick();

  // --- reader side (any thread, lock-light) ---

  /// Windowed, downsampled read of every series matching `glob`:
  /// window [now_ms - window_s × 1000, now_ms] split into step_s buckets
  /// (bucket timestamps are aligned to now_ms).  Uses the raw tier while
  /// the window fits its retention, the aggregated tier beyond.  Empty
  /// buckets are skipped; unknown globs yield an empty vector.
  std::vector<TsSeries> query(std::string_view glob, double window_s,
                              double step_s, std::int64_t now_ms) const;

  /// Counter increase over the trailing window (clamped to the data
  /// actually retained; resets clamp to 0).  Gauges and unknown names
  /// answer 0.
  double increase(std::string_view name, double window_s,
                  std::int64_t now_ms) const;

  /// Most recent committed value; NaN when the series is unknown or has
  /// no sample yet.
  double latest(std::string_view name) const;

  /// Names of every series, sorted (for /api/timeseries discovery).
  std::vector<std::string> names() const;

  std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped_series() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t series_count() const;
  const TsdbOptions& options() const noexcept { return opts_; }

 private:
  struct Series {
    std::string name;
    Kind kind = Kind::kGauge;
    /// Raw ring, indexed by tick % raw_capacity; NaN = no sample.
    std::unique_ptr<std::atomic<double>[]> raw;
    /// Aggregated ring, indexed by (tick / agg_every) % agg_capacity.
    std::unique_ptr<std::atomic<double>[]> agg_min;
    std::unique_ptr<std::atomic<double>[]> agg_mean;
    std::unique_ptr<std::atomic<double>[]> agg_max;
    // Staging for the open tick (sampler thread only).
    double staged = 0.0;
    bool has_staged = false;
  };

  Series* find_or_create(std::string_view name, Kind kind);
  const Series* find(std::string_view name) const;

  /// Seqlock-consistent copy of one series' ring tail: the most recent
  /// `want` slots (ascending time) with their timestamps.  `agg` selects
  /// the tier.  Returns the number of committed ticks at copy time.
  std::uint64_t copy_tail(const Series& s, bool agg, int want,
                          std::vector<std::int64_t>& t_ms,
                          std::vector<double>& v_min,
                          std::vector<double>& v_mean,
                          std::vector<double>& v_max) const;

  TsdbOptions opts_;

  /// Guards the series table (creation + name lookup), never ring data.
  mutable std::mutex series_mu_;
  std::vector<std::unique_ptr<Series>> series_;

  /// Store-wide seqlock: odd while commit_tick() publishes.
  std::atomic<std::uint64_t> version_{0};
  /// Committed ticks; tick i lives at raw slot i % raw_capacity.
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> dropped_{0};

  /// Timestamps of raw ticks / agg buckets (bucket-end), ring-indexed.
  std::unique_ptr<std::atomic<std::int64_t>[]> raw_t_ms_;
  std::unique_ptr<std::atomic<std::int64_t>[]> agg_t_ms_;

  std::int64_t open_t_ms_ = 0;  // sampler thread only
  bool tick_open_ = false;      // sampler thread only
};

}  // namespace tsmo::tsdb
