#pragma once

// MoveEngine: proposal, feasibility screening, delta evaluation and
// application of the five operators.
//
// Delta evaluation never materializes a modified route: a move touches at
// most two routes, and for each the engine seeds an IncrementalRouteEval
// from the base solution's RouteCache prefix, pushes only the spliced-in
// visits, and closes with the cached tail (early-terminating once the
// departure time rejoins the cached schedule).  That makes evaluate()
// amortized O(1)-O(k) in the disturbed suffix length instead of O(route
// length) plus two route copies, while staying bitwise identical to
// build_modified + evaluate_route (evaluate_full, kept as the reference
// implementation for tests and benchmarks).  Only the *selected* neighbor
// of an iteration is materialized by applying the move.

#include <optional>
#include <span>
#include <vector>

#include "operators/move.hpp"
#include "util/rng.hpp"
#include "vrptw/candidate_list.hpp"
#include "vrptw/instance.hpp"
#include "vrptw/solution.hpp"

namespace tsmo {

class MoveEngine {
 public:
  explicit MoveEngine(const Instance& inst) : inst_(&inst) {}

  const Instance& instance() const noexcept { return *inst_; }

  /// Switches proposal sampling to the pruned mode (DESIGN.md §11): move
  /// endpoints are drawn from `cands` k-NN lists instead of uniformly.
  /// nullptr restores legacy uniform sampling.  The list is borrowed — the
  /// caller keeps it alive for the engine's lifetime (engines share one
  /// immutable list per run).  Pricing and application are unaffected:
  /// only which moves get proposed changes, so determinism per (seed,
  /// candidate_k) holds.
  void set_candidate_list(const CandidateList* cands) noexcept {
    cands_ = cands;
  }
  const CandidateList* candidate_list() const noexcept { return cands_; }

  /// The paper's local feasibility criterion (§II.B): new junction edges
  /// must satisfy a_i + c_i + t_{i,k} <= b_k, and the receiving route's
  /// demand must stay within capacity.  Purely static — O(1) for every
  /// operator (2-opt* prefix loads come from the cumulative-load cache).
  bool locally_feasible(const Solution& base, const Move& m) const;

  /// Capacity part of the screen only (always enforced in every mode).
  bool capacity_feasible(const Solution& base, const Move& m) const;

  /// Exact screen: capacity plus "the move does not increase the summed
  /// tardiness of the routes it touches".  Incremental re-schedule of the
  /// disturbed suffixes only.
  bool exact_feasible(const Solution& base, const Move& m) const;

  /// Dispatches on the screening mode.
  bool screened_feasible(const Solution& base, const Move& m,
                         FeasibilityScreen screen) const;

  /// Structural validity of the move against this solution (indices in
  /// range, operator preconditions).  Feasibility is separate.
  bool applicable(const Solution& base, const Move& m) const;

  /// Objectives of `base` with `m` applied; `base` is not modified and
  /// must be evaluated (its RouteCaches seed the incremental evaluation).
  /// Bitwise identical to evaluate_full.
  Objectives evaluate(const Solution& base, const Move& m) const;

  /// Prices every move of `moves` against the same base in one flat pass:
  /// the incremental evaluator (and with it the SoA window/service
  /// streams) is hoisted out of the per-move loop, so pricing a whole
  /// generated neighborhood touches the prefix caches back to back instead
  /// of re-entering evaluate() per move.  out[i] is bitwise identical to
  /// evaluate(base, moves[i]) — same arithmetic, same order, merely
  /// batched (the differential fuzz asserts this).
  void evaluate_batch(const Solution& base, std::span<const Move> moves,
                      std::vector<Objectives>& out) const;

  /// Reference implementation: rebuilds the modified routes in scratch
  /// buffers and re-evaluates them from scratch.  Kept for differential
  /// tests and benchmarks of the delta path.
  Objectives evaluate_full(const Solution& base, const Move& m) const;

  /// Applies `m` to `s` in place (splicing the route vectors directly)
  /// and re-evaluates the affected routes.
  void apply(Solution& s, const Move& m) const;

  /// Features the move creates (checked against the tabu list).
  MoveAttrs created_attrs(const Solution& base, const Move& m) const;

  /// Features the move destroys (pushed into the tabu list on acceptance).
  MoveAttrs destroyed_attrs(const Solution& base, const Move& m) const;

  /// Draws a random structurally-valid move of type `t` passing the
  /// screen, or nullopt after `max_attempts` failed draws.
  std::optional<Move> propose(
      MoveType t, const Solution& base, Rng& rng, int max_attempts = 12,
      FeasibilityScreen screen = FeasibilityScreen::Local) const;

 private:
  /// Delta-evaluated (distance, tardiness, emptiness) of the one or two
  /// routes `m` modifies, computed against the base RouteCaches without
  /// materializing the routes.
  struct RouteDeltas {
    double dist1 = 0.0, tard1 = 0.0;
    double dist2 = 0.0, tard2 = 0.0;
    bool empty1 = false, empty2 = false;
  };
  /// `eval` is caller-provided so evaluate_batch can reuse one accumulator
  /// (and its resolved SoA pointers) across a whole batch.
  RouteDeltas delta_routes(const Solution& base, const Move& m,
                           IncrementalRouteEval& eval) const;

  /// Chain-merges one move's route deltas into full Objectives, replaying
  /// Solution::evaluate's summation order bitwise (shared by evaluate and
  /// evaluate_batch).
  Objectives combine_deltas(const Solution& base, const Move& m,
                            const RouteDeltas& d) const;

  /// Fills `out1`/`out2` with the new contents of routes m.r1 / m.r2
  /// (`out2` untouched for intra-route moves).
  void build_modified(const Solution& base, const Move& m,
                      std::vector<int>& out1, std::vector<int>& out2) const;

  /// True when traversing a -> b cannot locally violate b's window:
  /// a_a + c_a + t_{a,b} <= b_b (indices may be 0 == depot).
  bool edge_ok(int a, int b) const noexcept {
    const Site& sa = inst_->site(a);
    const Site& sb = inst_->site(b);
    return sa.ready + sa.service + inst_->distance(a, b) <= sb.due;
  }

  std::optional<Move> propose_relocate(const Solution& base, Rng& rng) const;
  std::optional<Move> propose_exchange(const Solution& base, Rng& rng) const;
  std::optional<Move> propose_two_opt(const Solution& base, Rng& rng) const;
  std::optional<Move> propose_two_opt_star(const Solution& base,
                                           Rng& rng) const;
  std::optional<Move> propose_or_opt(const Solution& base, Rng& rng) const;

  /// Pruned variants: anchor on a uniform customer, then map the partner
  /// endpoint through its candidate list (DESIGN.md §11).
  std::optional<Move> propose_relocate_pruned(const Solution& base,
                                              Rng& rng) const;
  std::optional<Move> propose_exchange_pruned(const Solution& base,
                                              Rng& rng) const;
  std::optional<Move> propose_two_opt_pruned(const Solution& base,
                                             Rng& rng) const;
  std::optional<Move> propose_two_opt_star_pruned(const Solution& base,
                                                  Rng& rng) const;
  std::optional<Move> propose_or_opt_pruned(const Solution& base,
                                            Rng& rng) const;

  /// Uniform draw from c's candidate list, or -1 when the list is empty.
  const Instance* inst_;
  const CandidateList* cands_ = nullptr;
  mutable std::vector<int> scratch1_;
  mutable std::vector<int> scratch2_;
};

}  // namespace tsmo
