#include "operators/neighborhood.hpp"

#include <stdexcept>

#include "util/telemetry.hpp"

namespace tsmo {

NeighborhoodGenerator::NeighborhoodGenerator(
    const MoveEngine& engine,
    const std::array<double, kNumMoveTypes>& weights,
    FeasibilityScreen screen)
    : engine_(&engine), weights_(weights), screen_(screen) {
  for (double w : weights_) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "NeighborhoodGenerator: negative operator weight");
    }
    total_weight_ += w;
  }
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument(
        "NeighborhoodGenerator: all operator weights are zero");
  }
}

MoveType NeighborhoodGenerator::sample_type(Rng& rng) const {
  double x = rng.uniform(0.0, total_weight_);
  for (int t = 0; t < kNumMoveTypes; ++t) {
    x -= weights_[static_cast<std::size_t>(t)];
    if (x < 0.0) return static_cast<MoveType>(t);
  }
  return static_cast<MoveType>(kNumMoveTypes - 1);
}

std::vector<Neighbor> NeighborhoodGenerator::generate(const Solution& base,
                                                      int count,
                                                      Rng& rng) const {
  std::vector<Neighbor> out;
  out.reserve(static_cast<std::size_t>(count));
  // Each propose() internally retries a few position draws; this outer
  // budget additionally re-draws the operator type, matching the paper.
  int draws_left = count * 25;
  while (static_cast<int>(out.size()) < count && draws_left-- > 0) {
    const MoveType type = sample_type(rng);
    const auto move = engine_->propose(type, base, rng, 12, screen_);
    if (!move) continue;
    Neighbor n;
    n.move = *move;
    {
      // "Move pricing": delta evaluation plus tabu-attribute extraction —
      // the per-neighbor cost the paper's neighborhood size multiplies.
      TSMO_TIME_SCOPE("move.price_ns");
      n.obj = engine_->evaluate(base, *move);
      n.creates = engine_->created_attrs(base, *move);
      n.destroys = engine_->destroyed_attrs(base, *move);
    }
    out.push_back(n);
  }
  return out;
}

Solution NeighborhoodGenerator::materialize(const Solution& base,
                                            const Neighbor& n) const {
  Solution s = base;
  engine_->apply(s, n.move);
  return s;
}

}  // namespace tsmo
