#include "operators/neighborhood.hpp"

#include <stdexcept>

#include "util/telemetry.hpp"

namespace tsmo {

NeighborhoodGenerator::NeighborhoodGenerator(
    const MoveEngine& engine,
    const std::array<double, kNumMoveTypes>& weights,
    FeasibilityScreen screen, bool batch_pricing)
    : engine_(&engine),
      weights_(weights),
      screen_(screen),
      batch_(batch_pricing) {
  for (double w : weights_) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "NeighborhoodGenerator: negative operator weight");
    }
    total_weight_ += w;
  }
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument(
        "NeighborhoodGenerator: all operator weights are zero");
  }
}

MoveType NeighborhoodGenerator::sample_type(Rng& rng) const {
  double x = rng.uniform(0.0, total_weight_);
  for (int t = 0; t < kNumMoveTypes; ++t) {
    x -= weights_[static_cast<std::size_t>(t)];
    if (x < 0.0) return static_cast<MoveType>(t);
  }
  return static_cast<MoveType>(kNumMoveTypes - 1);
}

std::vector<Neighbor> NeighborhoodGenerator::generate(const Solution& base,
                                                      int count,
                                                      Rng& rng) const {
  std::vector<Neighbor> out;
  out.reserve(static_cast<std::size_t>(count));
  // Each propose() internally retries a few position draws; this outer
  // budget additionally re-draws the operator type, matching the paper.
  int draws_left = count * 25;
  while (static_cast<int>(out.size()) < count && draws_left-- > 0) {
    const MoveType type = sample_type(rng);
    const auto move = engine_->propose(type, base, rng, 12, screen_);
    if (!move) continue;
    Neighbor n;
    n.move = *move;
    if (!batch_) {
      // "Move pricing": delta evaluation plus tabu-attribute extraction —
      // the per-neighbor cost the paper's neighborhood size multiplies.
      TSMO_TIME_SCOPE("move.price_ns");
      n.obj = engine_->evaluate(base, *move);
      n.creates = engine_->created_attrs(base, *move);
      n.destroys = engine_->destroyed_attrs(base, *move);
    }
    out.push_back(n);
  }
  if (batch_ && !out.empty()) {
    // Batched pricing: all proposals are already drawn (pricing consumes
    // no RNG, so the move sequence matches the single-pricing mode
    // exactly); one flat evaluate_batch pass prices them back to back.
    batch_moves_.clear();
    batch_moves_.reserve(out.size());
    for (const Neighbor& n : out) batch_moves_.push_back(n.move);
    {
      // One span per batch: count = batches, value = whole-batch pricing
      // latency (the single mode records per move instead).
      TSMO_TIME_SCOPE("move.price_ns");
      engine_->evaluate_batch(base, batch_moves_, batch_obj_);
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].obj = batch_obj_[i];
      out[i].creates = engine_->created_attrs(base, out[i].move);
      out[i].destroys = engine_->destroyed_attrs(base, out[i].move);
    }
  }
  if (batch_) {
    // Fill ratio of the batch in percent: 100 unless the give-up
    // threshold cut generation short.
    TSMO_RECORD_NS("neighborhood.batch_fill_pct",
                   count > 0 ? out.size() * 100 / static_cast<std::size_t>(
                                                     count)
                             : 0);
  }
  return out;
}

Solution NeighborhoodGenerator::materialize(const Solution& base,
                                            const Neighbor& n) const {
  Solution s = base;
  engine_->apply(s, n.move);
  return s;
}

}  // namespace tsmo
