#pragma once

// Move representation for the five neighborhood operators of §II.B:
//
//   Relocate   move customer (r1, i) into route r2 at position j  (r1 != r2)
//   Exchange   swap customers (r1, i) and (r2, j)                 (r1 != r2)
//   TwoOpt     reverse positions [i, j] within route r1
//   TwoOptStar r1 := r1[0,i) + r2[j,end);  r2 := r2[0,j) + r1[i,end)
//   OrOpt      move the two consecutive customers at [i, i+1] of r1 to
//              position j of the same route (j indexes the route with the
//              segment already removed)
//
// Tabu attributes: every move *creates* a small set of solution features
// (customer-to-route assignments, directed edges) and *destroys* another.
// A candidate is tabu when one of the features it creates was recently
// destroyed (stored in the tabu list); accepting a move pushes its
// destroyed features.  This realizes "forbid moves towards a configuration
// already visited" with O(1) storage per move.

#include <array>
#include <cstdint>
#include <string>

namespace tsmo {

enum class MoveType : std::uint8_t {
  Relocate,
  Exchange,
  TwoOpt,
  TwoOptStar,
  OrOpt,
};

inline constexpr int kNumMoveTypes = 5;

const char* to_string(MoveType t) noexcept;

/// How strictly proposed moves are screened before entering a
/// neighborhood.  Capacity is always enforced (§II.A: "because of the
/// design of the operators, this violation could not occur").
enum class FeasibilityScreen : std::uint8_t {
  CapacityOnly,  ///< soft windows entirely unscreened
  Local,         ///< the paper's §II.B local criterion (default)
  Exact,         ///< capacity + no increase of the affected routes'
                 ///< tardiness (schedule-exact)
};

const char* to_string(FeasibilityScreen s) noexcept;

struct Move {
  MoveType type = MoveType::Relocate;
  int r1 = -1;  ///< first route
  int r2 = -1;  ///< second route (== r1 for intra-route operators)
  int i = -1;   ///< position in r1 (semantics per type, see above)
  int j = -1;   ///< position in r2 / insertion position

  friend bool operator==(const Move&, const Move&) = default;
};

std::string to_string(const Move& m);

/// Fixed-capacity attribute set: moves touch at most 4 features.
class MoveAttrs {
 public:
  void push(std::uint64_t a) noexcept {
    if (size_ < attrs_.size()) attrs_[size_++] = a;
  }
  std::size_t size() const noexcept { return size_; }
  std::uint64_t operator[](std::size_t k) const noexcept { return attrs_[k]; }
  const std::uint64_t* begin() const noexcept { return attrs_.data(); }
  const std::uint64_t* end() const noexcept { return attrs_.data() + size_; }

 private:
  std::array<std::uint64_t, 4> attrs_{};
  std::size_t size_ = 0;
};

/// Feature hash: customer `c` assigned to route `r`.
constexpr std::uint64_t assign_attr(int c, int r) noexcept {
  return (std::uint64_t{1} << 62) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)) << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(r) & 0xfffffU);
}

/// Feature hash: directed edge a -> b in some tour (0 == depot).
constexpr std::uint64_t edge_attr(int a, int b) noexcept {
  return (std::uint64_t{2} << 62) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b) & 0xfffffU);
}

}  // namespace tsmo
