#pragma once

// Random neighborhood sampling (§III.B): "The Neighborhood Generation draws
// a number of moves, specified in the neighborhood size parameter, from the
// five operators.  For each move one of the operators is chosen at random
// with equal probabilities.  If the operator was unable to find a suitable
// move with regard to the local feasibility criterion, a new random number
// is drawn and possibly a different operator is selected."

#include <array>
#include <vector>

#include "operators/move_engine.hpp"

namespace tsmo {

/// One evaluated neighbor: the move, the resulting objectives, and the tabu
/// features it creates/destroys.  The full solution is only materialized
/// for the neighbor that gets selected (or remembered).
struct Neighbor {
  Move move;
  Objectives obj;
  MoveAttrs creates;
  MoveAttrs destroys;
};

class NeighborhoodGenerator {
 public:
  /// Equal operator probabilities — the paper's configuration.
  explicit NeighborhoodGenerator(const MoveEngine& engine)
      : NeighborhoodGenerator(engine, {1, 1, 1, 1, 1}) {}

  /// Weighted operator selection (weights need not be normalized; a zero
  /// weight disables the operator — used by the operator ablation bench).
  /// All-zero weights are rejected.  `screen` selects the feasibility
  /// screening mode applied to proposals.
  NeighborhoodGenerator(
      const MoveEngine& engine,
      const std::array<double, kNumMoveTypes>& weights,
      FeasibilityScreen screen = FeasibilityScreen::Local);

  /// Draws and evaluates up to `count` neighbors of `base`.  May return
  /// fewer when the solution admits too few locally feasible moves (the
  /// give-up threshold is `count * 25` failed operator draws).  Every
  /// returned neighbor costs exactly one evaluation — delta evaluation
  /// against `base`'s route caches, so `base` must be evaluated (as any
  /// constructed or applied solution is).
  std::vector<Neighbor> generate(const Solution& base, int count,
                                 Rng& rng) const;

  /// Applies a neighbor's move to a copy of `base`.
  Solution materialize(const Solution& base, const Neighbor& n) const;

  const MoveEngine& engine() const noexcept { return *engine_; }

  const std::array<double, kNumMoveTypes>& weights() const noexcept {
    return weights_;
  }

  FeasibilityScreen screen() const noexcept { return screen_; }

 private:
  MoveType sample_type(Rng& rng) const;

  const MoveEngine* engine_;
  std::array<double, kNumMoveTypes> weights_;
  double total_weight_ = 0.0;
  FeasibilityScreen screen_ = FeasibilityScreen::Local;
};

}  // namespace tsmo
