#pragma once

// Random neighborhood sampling (§III.B): "The Neighborhood Generation draws
// a number of moves, specified in the neighborhood size parameter, from the
// five operators.  For each move one of the operators is chosen at random
// with equal probabilities.  If the operator was unable to find a suitable
// move with regard to the local feasibility criterion, a new random number
// is drawn and possibly a different operator is selected."

#include <array>
#include <vector>

#include "operators/move_engine.hpp"

namespace tsmo {

/// One evaluated neighbor: the move, the resulting objectives, and the tabu
/// features it creates/destroys.  The full solution is only materialized
/// for the neighbor that gets selected (or remembered).
struct Neighbor {
  Move move;
  Objectives obj;
  MoveAttrs creates;
  MoveAttrs destroys;
};

class NeighborhoodGenerator {
 public:
  /// Equal operator probabilities — the paper's configuration.
  explicit NeighborhoodGenerator(const MoveEngine& engine)
      : NeighborhoodGenerator(engine, {1, 1, 1, 1, 1}) {}

  /// Weighted operator selection (weights need not be normalized; a zero
  /// weight disables the operator — used by the operator ablation bench).
  /// All-zero weights are rejected.  `screen` selects the feasibility
  /// screening mode applied to proposals.  `batch_pricing` selects whether
  /// generate() prices neighbors one by one as they are drawn (false, the
  /// pre-batching behavior) or proposes the whole set first and prices it
  /// in one MoveEngine::evaluate_batch pass (true, the default).  The two
  /// modes return bitwise-identical neighbor sequences: proposing consumes
  /// RNG draws, pricing never does, so reordering pricing after the draws
  /// leaves the RNG stream — and with it every proposed move — unchanged.
  NeighborhoodGenerator(
      const MoveEngine& engine,
      const std::array<double, kNumMoveTypes>& weights,
      FeasibilityScreen screen = FeasibilityScreen::Local,
      bool batch_pricing = true);

  /// Draws and evaluates up to `count` neighbors of `base`.  May return
  /// fewer when the solution admits too few locally feasible moves (the
  /// give-up threshold is `count * 25` failed operator draws).  Every
  /// returned neighbor costs exactly one evaluation — delta evaluation
  /// against `base`'s route caches, so `base` must be evaluated (as any
  /// constructed or applied solution is).
  std::vector<Neighbor> generate(const Solution& base, int count,
                                 Rng& rng) const;

  bool batch_pricing() const noexcept { return batch_; }

  /// Applies a neighbor's move to a copy of `base`.
  Solution materialize(const Solution& base, const Neighbor& n) const;

  const MoveEngine& engine() const noexcept { return *engine_; }

  const std::array<double, kNumMoveTypes>& weights() const noexcept {
    return weights_;
  }

  FeasibilityScreen screen() const noexcept { return screen_; }

 private:
  MoveType sample_type(Rng& rng) const;

  const MoveEngine* engine_;
  std::array<double, kNumMoveTypes> weights_;
  double total_weight_ = 0.0;
  FeasibilityScreen screen_ = FeasibilityScreen::Local;
  bool batch_ = true;
  /// Batch-pricing scratch, reused across generate() calls.
  mutable std::vector<Move> batch_moves_;
  mutable std::vector<Objectives> batch_obj_;
};

}  // namespace tsmo
