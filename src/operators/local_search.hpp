#pragma once

// Deterministic local-search polish: variable neighborhood descent (VND)
// over the five operators.  For each operator, the full (enumerable) move
// set is scanned for the best scalarized improvement; on success the
// search restarts from the first operator, and it terminates at a local
// optimum of all five neighborhoods.
//
// Uses: polishing final fronts before reporting, the memetic option of the
// evolutionary comparators, and as a deterministic baseline in tests.

#include <functional>

#include "operators/move_engine.hpp"
#include "vrptw/objectives.hpp"

namespace tsmo {

struct VndOptions {
  ScalarWeights weights{1.0, 50.0, 1000.0};
  FeasibilityScreen screen = FeasibilityScreen::Local;
  /// Hard cap on accepted moves (safety on pathological instances).
  int max_moves = 10000;
};

struct VndResult {
  int moves_applied = 0;
  double initial_value = 0.0;
  double final_value = 0.0;
};

/// Improves `s` in place to a VND local optimum of the scalarized
/// objective.  Every accepted move passes the configured feasibility
/// screen, so capacity is preserved and (with the Exact screen) so is
/// zero tardiness.
VndResult vnd_improve(const MoveEngine& engine, Solution& s,
                      const VndOptions& options = {});

/// Enumerates every structurally valid move of type `t` on `s` and
/// returns the screened move with the best (lowest) scalarized objective,
/// if it improves on `current_value`.  Candidates are delta-evaluated
/// against `s`'s route caches, so `s` must be evaluated.  Exposed for
/// tests.
std::optional<Move> best_move_of_type(const MoveEngine& engine,
                                      const Solution& s, MoveType t,
                                      const VndOptions& options,
                                      double current_value);

/// Invokes `visit` for every structurally valid move of type `t` on `s`
/// (no feasibility screening — callers screen as needed).  For Relocate,
/// at most one empty target route is enumerated (further empty slots are
/// symmetric).  This is the enumeration VND and Pareto Local Search share.
void for_each_move(const Solution& s, MoveType t,
                   const std::function<void(const Move&)>& visit);

}  // namespace tsmo
