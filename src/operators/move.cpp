#include "operators/move.hpp"

#include <cstdio>

namespace tsmo {

const char* to_string(MoveType t) noexcept {
  switch (t) {
    case MoveType::Relocate:
      return "Relocate";
    case MoveType::Exchange:
      return "Exchange";
    case MoveType::TwoOpt:
      return "2-opt";
    case MoveType::TwoOptStar:
      return "2-opt*";
    case MoveType::OrOpt:
      return "or-opt";
  }
  return "?";
}

const char* to_string(FeasibilityScreen s) noexcept {
  switch (s) {
    case FeasibilityScreen::CapacityOnly:
      return "capacity-only";
    case FeasibilityScreen::Local:
      return "local (paper)";
    case FeasibilityScreen::Exact:
      return "exact";
  }
  return "?";
}

std::string to_string(const Move& m) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s(r1=%d, r2=%d, i=%d, j=%d)",
                to_string(m.type), m.r1, m.r2, m.i, m.j);
  return buf;
}

}  // namespace tsmo
