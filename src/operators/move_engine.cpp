#include "operators/move_engine.hpp"

#include <algorithm>
#include <cassert>

#include "util/profiler.hpp"
#include "util/telemetry.hpp"

namespace tsmo {

namespace {

int at_or_depot(const std::vector<int>& route, int pos) {
  return pos >= 0 && pos < static_cast<int>(route.size())
             ? route[static_cast<std::size_t>(pos)]
             : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Structural validity
// ---------------------------------------------------------------------------

bool MoveEngine::applicable(const Solution& base, const Move& m) const {
  const int R = base.num_routes();
  if (m.r1 < 0 || m.r1 >= R || m.r2 < 0 || m.r2 >= R) return false;
  const auto& r1 = base.route(m.r1);
  const auto& r2 = base.route(m.r2);
  const int n1 = static_cast<int>(r1.size());
  const int n2 = static_cast<int>(r2.size());
  switch (m.type) {
    case MoveType::Relocate:
      return m.r1 != m.r2 && m.i >= 0 && m.i < n1 && m.j >= 0 && m.j <= n2;
    case MoveType::Exchange:
      return m.r1 != m.r2 && m.i >= 0 && m.i < n1 && m.j >= 0 && m.j < n2;
    case MoveType::TwoOpt:
      return m.r1 == m.r2 && m.i >= 0 && m.i < m.j && m.j < n1;
    case MoveType::TwoOptStar:
      // Cut points may equal the route length (empty tail); forbid the two
      // no-op cuts (both at end) and the pure label swap (both at start).
      return m.r1 != m.r2 && n1 > 0 && n2 > 0 && m.i >= 0 && m.i <= n1 &&
             m.j >= 0 && m.j <= n2 && !(m.i == n1 && m.j == n2) &&
             !(m.i == 0 && m.j == 0);
    case MoveType::OrOpt:
      // Segment [i, i+1]; j indexes the route after segment removal.
      return m.r1 == m.r2 && n1 >= 3 && m.i >= 0 && m.i + 1 < n1 &&
             m.j >= 0 && m.j <= n1 - 2 && m.j != m.i;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Local feasibility (paper §II.B)
// ---------------------------------------------------------------------------

bool MoveEngine::locally_feasible(const Solution& base, const Move& m) const {
  assert(applicable(base, m));
  const auto& r1 = base.route(m.r1);
  const auto& r2 = base.route(m.r2);
  const double cap = inst_->capacity();

  switch (m.type) {
    case MoveType::Relocate: {
      const int c = r1[static_cast<std::size_t>(m.i)];
      if (base.route_stats(m.r2).load + inst_->site(c).demand > cap) {
        return false;
      }
      const int pred = at_or_depot(r2, m.j - 1);
      const int succ = at_or_depot(r2, m.j);
      return edge_ok(pred, c) && edge_ok(c, succ);
    }
    case MoveType::Exchange: {
      const int c1 = r1[static_cast<std::size_t>(m.i)];
      const int c2 = r2[static_cast<std::size_t>(m.j)];
      const double d1 = inst_->site(c1).demand;
      const double d2 = inst_->site(c2).demand;
      if (base.route_stats(m.r1).load - d1 + d2 > cap) return false;
      if (base.route_stats(m.r2).load - d2 + d1 > cap) return false;
      const int p1 = at_or_depot(r1, m.i - 1);
      const int s1 = at_or_depot(r1, m.i + 1);
      const int p2 = at_or_depot(r2, m.j - 1);
      const int s2 = at_or_depot(r2, m.j + 1);
      return edge_ok(p1, c2) && edge_ok(c2, s1) && edge_ok(p2, c1) &&
             edge_ok(c1, s2);
    }
    case MoveType::TwoOpt: {
      // New junctions: (i-1) -> j and i -> (j+1); the reversed interior is
      // deliberately unchecked ("local" criterion).
      const int pred = at_or_depot(r1, m.i - 1);
      const int succ = at_or_depot(r1, m.j + 1);
      return edge_ok(pred, r1[static_cast<std::size_t>(m.j)]) &&
             edge_ok(r1[static_cast<std::size_t>(m.i)], succ);
    }
    case MoveType::TwoOptStar: {
      // O(1) prefix loads from the cumulative-load cache (bitwise equal to
      // the demand sums they replace).
      const double prefix1 =
          m.i > 0 ? base.route_cache(m.r1).cum_load(m.i - 1) : 0.0;
      const double prefix2 =
          m.j > 0 ? base.route_cache(m.r2).cum_load(m.j - 1) : 0.0;
      const double load1 = base.route_stats(m.r1).load;
      const double load2 = base.route_stats(m.r2).load;
      if (prefix1 + (load2 - prefix2) > cap) return false;
      if (prefix2 + (load1 - prefix1) > cap) return false;
      const int tail1 = at_or_depot(r1, m.i - 1);
      const int head2 = at_or_depot(r2, m.j);
      const int tail2 = at_or_depot(r2, m.j - 1);
      const int head1 = at_or_depot(r1, m.i);
      return edge_ok(tail1, head2) && edge_ok(tail2, head1);
    }
    case MoveType::OrOpt: {
      const int s1 = r1[static_cast<std::size_t>(m.i)];
      const int s2 = r1[static_cast<std::size_t>(m.i + 1)];
      // Route with the segment removed, for locating insertion neighbours.
      auto removed_at = [&](int pos) {
        // Position `pos` in the route after removing [i, i+1].
        const int shifted = pos >= m.i ? pos + 2 : pos;
        return at_or_depot(r1, shifted);
      };
      const int pred = m.j > 0 ? removed_at(m.j - 1) : 0;
      const int succ = removed_at(m.j);
      const int gap_pred = at_or_depot(r1, m.i - 1);
      const int gap_succ = at_or_depot(r1, m.i + 2);
      return edge_ok(pred, s1) && edge_ok(s2, succ) &&
             edge_ok(gap_pred, gap_succ);
    }
  }
  return false;
}

bool MoveEngine::capacity_feasible(const Solution& base,
                                   const Move& m) const {
  assert(applicable(base, m));
  const auto& r1 = base.route(m.r1);
  const auto& r2 = base.route(m.r2);
  const double cap = inst_->capacity();
  switch (m.type) {
    case MoveType::Relocate: {
      const int c = r1[static_cast<std::size_t>(m.i)];
      return base.route_stats(m.r2).load + inst_->site(c).demand <= cap;
    }
    case MoveType::Exchange: {
      const double d1 =
          inst_->site(r1[static_cast<std::size_t>(m.i)]).demand;
      const double d2 =
          inst_->site(r2[static_cast<std::size_t>(m.j)]).demand;
      return base.route_stats(m.r1).load - d1 + d2 <= cap &&
             base.route_stats(m.r2).load - d2 + d1 <= cap;
    }
    case MoveType::TwoOpt:
    case MoveType::OrOpt:
      return true;  // intra-route: loads unchanged
    case MoveType::TwoOptStar: {
      const double prefix1 =
          m.i > 0 ? base.route_cache(m.r1).cum_load(m.i - 1) : 0.0;
      const double prefix2 =
          m.j > 0 ? base.route_cache(m.r2).cum_load(m.j - 1) : 0.0;
      const double load1 = base.route_stats(m.r1).load;
      const double load2 = base.route_stats(m.r2).load;
      return prefix1 + (load2 - prefix2) <= cap &&
             prefix2 + (load1 - prefix1) <= cap;
    }
  }
  return false;
}

bool MoveEngine::exact_feasible(const Solution& base, const Move& m) const {
  if (!capacity_feasible(base, m)) return false;
  IncrementalRouteEval eval(*inst_);
  const RouteDeltas d = delta_routes(base, m, eval);
  double old_tardiness = base.route_stats(m.r1).tardiness;
  double new_tardiness = d.tard1;
  if (m.r1 != m.r2) {
    old_tardiness += base.route_stats(m.r2).tardiness;
    new_tardiness += d.tard2;
  }
  return new_tardiness <= old_tardiness + 1e-9;
}

bool MoveEngine::screened_feasible(const Solution& base, const Move& m,
                                   FeasibilityScreen screen) const {
  bool ok = false;
  switch (screen) {
    case FeasibilityScreen::CapacityOnly:
      ok = capacity_feasible(base, m);
      break;
    case FeasibilityScreen::Local:
      ok = locally_feasible(base, m);
      break;
    case FeasibilityScreen::Exact:
      ok = exact_feasible(base, m);
      break;
  }
  TSMO_COUNT("move.screen_checks");
  if (!ok) TSMO_COUNT("move.screen_reject");
  return ok;
}

// ---------------------------------------------------------------------------
// Route reconstruction, evaluation, application
// ---------------------------------------------------------------------------

void MoveEngine::build_modified(const Solution& base, const Move& m,
                                std::vector<int>& out1,
                                std::vector<int>& out2) const {
  const auto& r1 = base.route(m.r1);
  const auto& r2 = base.route(m.r2);
  out1.clear();
  out2.clear();
  switch (m.type) {
    case MoveType::Relocate: {
      const int c = r1[static_cast<std::size_t>(m.i)];
      out1 = r1;
      out1.erase(out1.begin() + m.i);
      out2 = r2;
      out2.insert(out2.begin() + m.j, c);
      break;
    }
    case MoveType::Exchange: {
      out1 = r1;
      out2 = r2;
      std::swap(out1[static_cast<std::size_t>(m.i)],
                out2[static_cast<std::size_t>(m.j)]);
      break;
    }
    case MoveType::TwoOpt: {
      out1 = r1;
      std::reverse(out1.begin() + m.i, out1.begin() + m.j + 1);
      break;
    }
    case MoveType::TwoOptStar: {
      out1.assign(r1.begin(), r1.begin() + m.i);
      out1.insert(out1.end(), r2.begin() + m.j, r2.end());
      out2.assign(r2.begin(), r2.begin() + m.j);
      out2.insert(out2.end(), r1.begin() + m.i, r1.end());
      break;
    }
    case MoveType::OrOpt: {
      const int s1 = r1[static_cast<std::size_t>(m.i)];
      const int s2 = r1[static_cast<std::size_t>(m.i + 1)];
      out1 = r1;
      out1.erase(out1.begin() + m.i, out1.begin() + m.i + 2);
      out1.insert(out1.begin() + m.j, {s1, s2});
      break;
    }
  }
}

// Delta evaluation core: each modified route is three pieces — an
// unchanged prefix adopted from the RouteCache in O(1), the spliced-in
// visits pushed one by one, and an unchanged tail closed by
// finish_with_tail, which stops as soon as the new departure time rejoins
// the cached schedule.  All arithmetic replays evaluate_route's exact
// operation order, so the results are bitwise what a from-scratch
// evaluation of the modified route would produce.
MoveEngine::RouteDeltas MoveEngine::delta_routes(
    const Solution& base, const Move& m, IncrementalRouteEval& eval) const {
  assert(base.is_evaluated());
  const auto& r1 = base.route(m.r1);
  const auto& r2 = base.route(m.r2);
  const RouteCache::View c1 = base.route_cache(m.r1).view();
  const RouteCache::View c2 = base.route_cache(m.r2).view();

  RouteDeltas out;
  const auto take1 = [&] {
    out.dist1 = eval.distance();
    out.tard1 = eval.tardiness();
    out.empty1 = eval.route_empty();
  };
  const auto take2 = [&] {
    out.dist2 = eval.distance();
    out.tard2 = eval.tardiness();
    out.empty2 = eval.route_empty();
  };

  switch (m.type) {
    case MoveType::Relocate: {
      eval.seed_prefix(r1, c1, m.i);
      eval.finish_with_tail(r1, c1, m.i + 1);
      take1();
      eval.seed_prefix(r2, c2, m.j);
      eval.push(r1[static_cast<std::size_t>(m.i)]);
      eval.finish_with_tail(r2, c2, m.j);
      take2();
      break;
    }
    case MoveType::Exchange: {
      eval.seed_prefix(r1, c1, m.i);
      eval.push(r2[static_cast<std::size_t>(m.j)]);
      eval.finish_with_tail(r1, c1, m.i + 1);
      take1();
      eval.seed_prefix(r2, c2, m.j);
      eval.push(r1[static_cast<std::size_t>(m.i)]);
      eval.finish_with_tail(r2, c2, m.j + 1);
      take2();
      break;
    }
    case MoveType::TwoOpt: {
      eval.seed_prefix(r1, c1, m.i);
      eval.push_reversed(r1, m.i, m.j + 1);
      eval.finish_with_tail(r1, c1, m.j + 1);
      take1();
      break;
    }
    case MoveType::TwoOptStar: {
      eval.seed_prefix(r1, c1, m.i);
      eval.finish_with_tail(r2, c2, m.j);
      take1();
      eval.seed_prefix(r2, c2, m.j);
      eval.finish_with_tail(r1, c1, m.i);
      take2();
      break;
    }
    case MoveType::OrOpt: {
      // Segment [i, i+1] re-inserted at position j of the reduced route.
      if (m.j < m.i) {
        eval.seed_prefix(r1, c1, m.j);
        eval.push(r1[static_cast<std::size_t>(m.i)]);
        eval.push(r1[static_cast<std::size_t>(m.i + 1)]);
        eval.push_range(r1, m.j, m.i);
        eval.finish_with_tail(r1, c1, m.i + 2);
      } else {
        eval.seed_prefix(r1, c1, m.i);
        eval.push_range(r1, m.i + 2, m.j + 2);
        eval.push(r1[static_cast<std::size_t>(m.i)]);
        eval.push(r1[static_cast<std::size_t>(m.i + 1)]);
        eval.finish_with_tail(r1, c1, m.j + 2);
      }
      take1();
      break;
    }
  }
  return out;
}

Objectives MoveEngine::evaluate(const Solution& base, const Move& m) const {
  assert(applicable(base, m));
  // Delta pricing off the base's segment caches — a "cache hit" relative to
  // the full rebuild in evaluate_full().
  TSMO_COUNT("move.priced");
  TSMO_PROFILE_FRAME("move.evaluate");
  IncrementalRouteEval eval(*inst_);
  return combine_deltas(base, m, delta_routes(base, m, eval));
}

void MoveEngine::evaluate_batch(const Solution& base,
                                std::span<const Move> moves,
                                std::vector<Objectives>& out) const {
  out.resize(moves.size());
  TSMO_COUNT_N("move.priced", moves.size());
  TSMO_COUNT("move.batches");
  TSMO_PROFILE_FRAME("move.evaluate_batch");
  // One accumulator for the whole batch: the SoA field pointers are
  // resolved once, and consecutive moves revisit the same handful of
  // route caches while they are hot.
  IncrementalRouteEval eval(*inst_);
  for (std::size_t b = 0; b < moves.size(); ++b) {
    assert(applicable(base, moves[b]));
    out[b] = combine_deltas(base, moves[b],
                            delta_routes(base, moves[b], eval));
  }
}

Objectives MoveEngine::combine_deltas(const Solution& base, const Move& m,
                                      const RouteDeltas& d) const {
  const bool inter = m.r1 != m.r2;

  // Summing route stats in index order makes the result bitwise identical
  // to Solution::evaluate() after apply() — so candidate objectives,
  // archive duplicate detection, and materialized solutions always agree
  // exactly.  The chain up to the first modified route is replayed from
  // the base's prefix sums (same additions, so bitwise the same state),
  // and empty routes are skipped throughout: their +0.0 terms never
  // change a non-negative accumulator.
  const int A = static_cast<int>(base.active_routes().size());
  // The chain has at most two modified terms.  active_rank gives each its
  // position in one lookup: for a non-empty route its active index, and
  // for an empty r2 (relocate into a fresh vehicle, absent from the
  // chain) the position its new term is *inserted* at.
  struct Term {
    int pos;
    double dd, dt;
    bool insert;
  };
  const bool r2_was_empty = inter && base.route(m.r2).empty();
  Term ev[2] = {{base.active_rank(m.r1), d.dist1, d.tard1, false},
                {inter ? base.active_rank(m.r2) : A, d.dist2, d.tard2,
                 r2_was_empty}};
  int ne = inter ? 2 : 1;
  // An inserted term with the same rank as r1's precedes it exactly when
  // r2 < r1 (ranks of distinct non-empty routes never tie).
  if (ne == 2 &&
      (ev[1].pos < ev[0].pos || (ev[1].pos == ev[0].pos && m.r2 < m.r1))) {
    std::swap(ev[0], ev[1]);
  }

  double dist = base.prefix_distance(ev[0].pos);
  double tard = base.prefix_tardiness(ev[0].pos);
  int k = ev[0].pos;
  for (int e = 0; e < ne; ++e) {
    for (; k < ev[e].pos; ++k) {
      dist += base.active_distance(k);
      tard += base.active_tardiness(k);
    }
    dist += ev[e].dd;
    tard += ev[e].dt;
    if (!ev[e].insert) ++k;  // the substituted term replaces active[k]
  }
  for (; k < A; ++k) {
    dist += base.active_distance(k);
    tard += base.active_tardiness(k);
  }

  Objectives obj;
  obj.distance = dist;
  obj.tardiness = tard;
  // Vehicle counting is integer arithmetic (order-independent), so the
  // base count can be patched instead of re-scanning route emptiness.
  // r1 is never empty in an applicable move.
  obj.vehicles = base.objectives().vehicles - 1 + (d.empty1 ? 0 : 1);
  if (inter) {
    obj.vehicles += (d.empty2 ? 0 : 1) - (r2_was_empty ? 0 : 1);
  }
  return obj;
}

Objectives MoveEngine::evaluate_full(const Solution& base,
                                     const Move& m) const {
  assert(applicable(base, m));
  TSMO_COUNT("move.priced_full");
  build_modified(base, m, scratch1_, scratch2_);

  const RouteStats new1 = evaluate_route(*inst_, scratch1_);
  const bool inter = m.r1 != m.r2;
  const RouteStats new2 =
      inter ? evaluate_route(*inst_, scratch2_) : RouteStats{};

  Objectives obj;
  for (int r = 0; r < base.num_routes(); ++r) {
    const RouteStats* stats;
    bool empty;
    if (r == m.r1) {
      stats = &new1;
      empty = scratch1_.empty();
    } else if (inter && r == m.r2) {
      stats = &new2;
      empty = scratch2_.empty();
    } else {
      stats = &base.route_stats(r);
      empty = base.route(r).empty();
    }
    obj.distance += stats->distance;
    obj.tardiness += stats->tardiness;
    if (!empty) ++obj.vehicles;
  }
  return obj;
}

void MoveEngine::apply(Solution& s, const Move& m) const {
  assert(applicable(s, m));
  TSMO_COUNT("move.apply");
  // In-place splices: no scratch round-trip except the single tail copy a
  // 2-opt* cross needs.
  switch (m.type) {
    case MoveType::Relocate: {
      auto& r1 = s.mutable_route(m.r1);
      auto& r2 = s.mutable_route(m.r2);
      const int c = r1[static_cast<std::size_t>(m.i)];
      r1.erase(r1.begin() + m.i);
      r2.insert(r2.begin() + m.j, c);
      break;
    }
    case MoveType::Exchange: {
      std::swap(s.mutable_route(m.r1)[static_cast<std::size_t>(m.i)],
                s.mutable_route(m.r2)[static_cast<std::size_t>(m.j)]);
      break;
    }
    case MoveType::TwoOpt: {
      auto& r = s.mutable_route(m.r1);
      std::reverse(r.begin() + m.i, r.begin() + m.j + 1);
      break;
    }
    case MoveType::TwoOptStar: {
      auto& r1 = s.mutable_route(m.r1);
      auto& r2 = s.mutable_route(m.r2);
      scratch1_.assign(r1.begin() + m.i, r1.end());
      r1.resize(static_cast<std::size_t>(m.i));
      r1.insert(r1.end(), r2.begin() + m.j, r2.end());
      r2.resize(static_cast<std::size_t>(m.j));
      r2.insert(r2.end(), scratch1_.begin(), scratch1_.end());
      break;
    }
    case MoveType::OrOpt: {
      auto& r = s.mutable_route(m.r1);
      if (m.j < m.i) {
        std::rotate(r.begin() + m.j, r.begin() + m.i, r.begin() + m.i + 2);
      } else {
        std::rotate(r.begin() + m.i, r.begin() + m.i + 2,
                    r.begin() + m.j + 2);
      }
      break;
    }
  }
  s.evaluate();
}

// ---------------------------------------------------------------------------
// Tabu attributes
// ---------------------------------------------------------------------------

MoveAttrs MoveEngine::created_attrs(const Solution& base,
                                    const Move& m) const {
  MoveAttrs attrs;
  const auto& r1 = base.route(m.r1);
  const auto& r2 = base.route(m.r2);
  switch (m.type) {
    case MoveType::Relocate:
      attrs.push(assign_attr(r1[static_cast<std::size_t>(m.i)], m.r2));
      break;
    case MoveType::Exchange:
      attrs.push(assign_attr(r1[static_cast<std::size_t>(m.i)], m.r2));
      attrs.push(assign_attr(r2[static_cast<std::size_t>(m.j)], m.r1));
      break;
    case MoveType::TwoOpt:
      attrs.push(edge_attr(at_or_depot(r1, m.i - 1),
                           r1[static_cast<std::size_t>(m.j)]));
      attrs.push(edge_attr(r1[static_cast<std::size_t>(m.i)],
                           at_or_depot(r1, m.j + 1)));
      break;
    case MoveType::TwoOptStar:
      attrs.push(edge_attr(at_or_depot(r1, m.i - 1), at_or_depot(r2, m.j)));
      attrs.push(edge_attr(at_or_depot(r2, m.j - 1), at_or_depot(r1, m.i)));
      break;
    case MoveType::OrOpt: {
      const int s1 = r1[static_cast<std::size_t>(m.i)];
      const int s2 = r1[static_cast<std::size_t>(m.i + 1)];
      auto removed_at = [&](int pos) {
        const int shifted = pos >= m.i ? pos + 2 : pos;
        return at_or_depot(r1, shifted);
      };
      attrs.push(edge_attr(m.j > 0 ? removed_at(m.j - 1) : 0, s1));
      attrs.push(edge_attr(s2, removed_at(m.j)));
      break;
    }
  }
  return attrs;
}

MoveAttrs MoveEngine::destroyed_attrs(const Solution& base,
                                      const Move& m) const {
  MoveAttrs attrs;
  const auto& r1 = base.route(m.r1);
  const auto& r2 = base.route(m.r2);
  switch (m.type) {
    case MoveType::Relocate:
      attrs.push(assign_attr(r1[static_cast<std::size_t>(m.i)], m.r1));
      break;
    case MoveType::Exchange:
      attrs.push(assign_attr(r1[static_cast<std::size_t>(m.i)], m.r1));
      attrs.push(assign_attr(r2[static_cast<std::size_t>(m.j)], m.r2));
      break;
    case MoveType::TwoOpt:
      attrs.push(edge_attr(at_or_depot(r1, m.i - 1),
                           r1[static_cast<std::size_t>(m.i)]));
      attrs.push(edge_attr(r1[static_cast<std::size_t>(m.j)],
                           at_or_depot(r1, m.j + 1)));
      break;
    case MoveType::TwoOptStar:
      attrs.push(
          edge_attr(at_or_depot(r1, m.i - 1), at_or_depot(r1, m.i)));
      attrs.push(
          edge_attr(at_or_depot(r2, m.j - 1), at_or_depot(r2, m.j)));
      break;
    case MoveType::OrOpt: {
      const int s1 = r1[static_cast<std::size_t>(m.i)];
      const int s2 = r1[static_cast<std::size_t>(m.i + 1)];
      attrs.push(edge_attr(at_or_depot(r1, m.i - 1), s1));
      attrs.push(edge_attr(s2, at_or_depot(r1, m.i + 2)));
      break;
    }
  }
  return attrs;
}

// ---------------------------------------------------------------------------
// Random proposals
// ---------------------------------------------------------------------------

std::optional<Move> MoveEngine::propose(MoveType t, const Solution& base,
                                        Rng& rng, int max_attempts,
                                        FeasibilityScreen screen) const {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::optional<Move> m;
    switch (t) {
      case MoveType::Relocate:
        m = propose_relocate(base, rng);
        break;
      case MoveType::Exchange:
        m = propose_exchange(base, rng);
        break;
      case MoveType::TwoOpt:
        m = propose_two_opt(base, rng);
        break;
      case MoveType::TwoOptStar:
        m = propose_two_opt_star(base, rng);
        break;
      case MoveType::OrOpt:
        m = propose_or_opt(base, rng);
        break;
    }
    if (m && screened_feasible(base, *m, screen)) {
      if (cands_) TSMO_COUNT("neighborhood.prune_hits");
      return m;
    }
    if (cands_) TSMO_COUNT("neighborhood.prune_rejects");
  }
  TSMO_COUNT("move.propose_giveup");
  return std::nullopt;
}

std::optional<Move> MoveEngine::propose_relocate(const Solution& base,
                                                 Rng& rng) const {
  if (cands_) return propose_relocate_pruned(base, rng);
  const int n = inst_->num_customers();
  if (n < 1 || base.num_routes() < 2) return std::nullopt;
  const int c = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r1 = base.route_of(c);
  if (r1 < 0) return std::nullopt;
  int r2 = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(base.num_routes() - 1)));
  if (r2 >= r1) ++r2;  // uniform over routes != r1
  const int j = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(base.route(r2).size()) + 1));
  return Move{MoveType::Relocate, r1, r2, base.position_of(c), j};
}

std::optional<Move> MoveEngine::propose_exchange(const Solution& base,
                                                 Rng& rng) const {
  if (cands_) return propose_exchange_pruned(base, rng);
  const int n = inst_->num_customers();
  if (n < 2) return std::nullopt;
  const int c1 =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int c2 =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r1 = base.route_of(c1);
  const int r2 = base.route_of(c2);
  if (r1 < 0 || r2 < 0 || r1 == r2) return std::nullopt;
  return Move{MoveType::Exchange, r1, r2, base.position_of(c1),
              base.position_of(c2)};
}

std::optional<Move> MoveEngine::propose_two_opt(const Solution& base,
                                                Rng& rng) const {
  if (cands_) return propose_two_opt_pruned(base, rng);
  const int n = inst_->num_customers();
  if (n < 2) return std::nullopt;
  // Anchor on a random customer so longer routes are picked proportionally.
  const int c = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r = base.route_of(c);
  if (r < 0) return std::nullopt;
  const int len = static_cast<int>(base.route(r).size());
  if (len < 2) return std::nullopt;
  int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(len)));
  int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(len)));
  if (i == j) return std::nullopt;
  if (i > j) std::swap(i, j);
  return Move{MoveType::TwoOpt, r, r, i, j};
}

std::optional<Move> MoveEngine::propose_two_opt_star(const Solution& base,
                                                     Rng& rng) const {
  if (cands_) return propose_two_opt_star_pruned(base, rng);
  const int n = inst_->num_customers();
  if (n < 2) return std::nullopt;
  const int c1 =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int c2 =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r1 = base.route_of(c1);
  const int r2 = base.route_of(c2);
  if (r1 < 0 || r2 < 0 || r1 == r2) return std::nullopt;
  const int n1 = static_cast<int>(base.route(r1).size());
  const int n2 = static_cast<int>(base.route(r2).size());
  const int i =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(n1) + 1));
  const int j =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(n2) + 1));
  if ((i == n1 && j == n2) || (i == 0 && j == 0)) return std::nullopt;
  return Move{MoveType::TwoOptStar, r1, r2, i, j};
}

std::optional<Move> MoveEngine::propose_or_opt(const Solution& base,
                                               Rng& rng) const {
  if (cands_) return propose_or_opt_pruned(base, rng);
  const int n = inst_->num_customers();
  if (n < 3) return std::nullopt;
  const int c = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r = base.route_of(c);
  if (r < 0) return std::nullopt;
  const int len = static_cast<int>(base.route(r).size());
  if (len < 3) return std::nullopt;
  const int i =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(len - 1)));
  const int j =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(len - 1)));
  if (j == i) return std::nullopt;
  return Move{MoveType::OrOpt, r, r, i, j};
}

// ---------------------------------------------------------------------------
// Pruned proposals (DESIGN.md §11)
//
// Each sampler anchors on a uniformly random customer c, then walks c's
// candidate list from a random start until it finds a partner that yields a
// move passing the SAME junction/load conditions locally_feasible checks.
// All conditions are O(1) (distance-matrix lookups and cached loads), so a
// successful draw is guaranteed to survive the Local screen — the pruned
// path converts screen rejections into a bounded O(k) pre-filtered walk.
// Index arithmetic below produces only applicable moves by construction.
// ---------------------------------------------------------------------------

namespace {

/// First neighbor satisfying `pred`, scanning the list cyclically from a
/// random start so ties across draws stay unbiased; -1 when none qualifies.
template <typename Pred>
int walk_neighbors(std::span<const std::int32_t> nb, Rng& rng, Pred&& pred) {
  if (nb.empty()) return -1;
  const std::size_t start =
      static_cast<std::size_t>(rng.below(nb.size()));
  for (std::size_t t = 0; t < nb.size(); ++t) {
    const int u = nb[(start + t) % nb.size()];
    if (pred(u)) return u;
  }
  return -1;
}

}  // namespace

std::optional<Move> MoveEngine::propose_relocate_pruned(const Solution& base,
                                                        Rng& rng) const {
  const int n = inst_->num_customers();
  if (n < 2 || base.num_routes() < 2) return std::nullopt;
  const int c = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r1 = base.route_of(c);
  if (r1 < 0) return std::nullopt;
  const double cap = inst_->capacity();
  const double dc = inst_->site(c).demand;
  // Insert c directly before or after its candidate partner u; the side is
  // fixed by which junction direction is TW-reachable (an rng bit breaks
  // the tie when both are — the candidate list guarantees at least one is).
  int side = 0;
  const int u = walk_neighbors(cands_->neighbors(c), rng, [&](int v) {
    const int r2 = base.route_of(v);
    if (r2 < 0 || r2 == r1) return false;
    if (base.route_stats(r2).load + dc > cap) return false;
    const auto& route2 = base.route(r2);
    const int pv = base.position_of(v);
    const bool after =
        edge_ok(v, c) && edge_ok(c, at_or_depot(route2, pv + 1));
    const bool before =
        edge_ok(c, v) && edge_ok(at_or_depot(route2, pv - 1), c);
    if (!after && !before) return false;
    side = after && before ? static_cast<int>(rng.below(2)) : (after ? 1 : 0);
    return true;
  });
  if (u < 0) return std::nullopt;
  return Move{MoveType::Relocate, r1, base.route_of(u),
              base.position_of(c), base.position_of(u) + side};
}

std::optional<Move> MoveEngine::propose_exchange_pruned(const Solution& base,
                                                        Rng& rng) const {
  const int n = inst_->num_customers();
  if (n < 2) return std::nullopt;
  const int c1 = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r1 = base.route_of(c1);
  if (r1 < 0) return std::nullopt;
  const auto& route1 = base.route(r1);
  const int i = base.position_of(c1);
  const int p1 = at_or_depot(route1, i - 1);
  const int s1 = at_or_depot(route1, i + 1);
  const double cap = inst_->capacity();
  const double d1 = inst_->site(c1).demand;
  const double load1 = base.route_stats(r1).load;
  const int c2 = walk_neighbors(cands_->neighbors(c1), rng, [&](int v) {
    const int r2 = base.route_of(v);
    if (r2 < 0 || r2 == r1) return false;
    const double d2 = inst_->site(v).demand;
    if (load1 - d1 + d2 > cap) return false;
    if (base.route_stats(r2).load - d2 + d1 > cap) return false;
    const auto& route2 = base.route(r2);
    const int pv = base.position_of(v);
    const int p2 = at_or_depot(route2, pv - 1);
    const int s2 = at_or_depot(route2, pv + 1);
    return edge_ok(p1, v) && edge_ok(v, s1) && edge_ok(p2, c1) &&
           edge_ok(c1, s2);
  });
  if (c2 < 0) return std::nullopt;
  return Move{MoveType::Exchange, r1, base.route_of(c2), i,
              base.position_of(c2)};
}

std::optional<Move> MoveEngine::propose_two_opt_pruned(const Solution& base,
                                                       Rng& rng) const {
  const int n = inst_->num_customers();
  if (n < 2) return std::nullopt;
  const int c1 = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r = base.route_of(c1);
  if (r < 0) return std::nullopt;
  const auto& route = base.route(r);
  const int pc = base.position_of(c1);
  // Reversing [lo+1, hi] creates the junctions (route[lo], route[hi]) and
  // (route[lo+1], route[hi+1]) — the anchor/partner pair plus the rejoin;
  // adjacent positions would be a no-op reversal.
  const int c2 = walk_neighbors(cands_->neighbors(c1), rng, [&](int v) {
    if (base.route_of(v) != r) return false;
    const int pv = base.position_of(v);
    const int lo = std::min(pc, pv);
    const int hi = std::max(pc, pv);
    if (hi - lo < 2) return false;
    return edge_ok(route[static_cast<std::size_t>(lo)],
                   route[static_cast<std::size_t>(hi)]) &&
           edge_ok(route[static_cast<std::size_t>(lo + 1)],
                   at_or_depot(route, hi + 1));
  });
  if (c2 < 0) return std::nullopt;
  const int lo = std::min(pc, base.position_of(c2));
  const int hi = std::max(pc, base.position_of(c2));
  return Move{MoveType::TwoOpt, r, r, lo + 1, hi};
}

std::optional<Move> MoveEngine::propose_two_opt_star_pruned(
    const Solution& base, Rng& rng) const {
  const int n = inst_->num_customers();
  if (n < 2) return std::nullopt;
  const int c1 = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r1 = base.route_of(c1);
  if (r1 < 0) return std::nullopt;
  const auto& route1 = base.route(r1);
  const int pc = base.position_of(c1);
  const double cap = inst_->capacity();
  const double load1 = base.route_stats(r1).load;
  // Cut after c1 and before u: the crossed tails create the junction
  // (c1, u) plus the mirror junction (pred(u), succ(c1)).  The prefix-load
  // checks mirror locally_feasible bitwise (same cum_load cache reads).
  const double prefix1 = base.route_cache(r1).cum_load(pc);
  const int head1 = at_or_depot(route1, pc + 1);
  const int u = walk_neighbors(cands_->neighbors(c1), rng, [&](int v) {
    const int r2 = base.route_of(v);
    if (r2 < 0 || r2 == r1) return false;
    const int pv = base.position_of(v);
    const double prefix2 =
        pv > 0 ? base.route_cache(r2).cum_load(pv - 1) : 0.0;
    const double load2 = base.route_stats(r2).load;
    if (prefix1 + (load2 - prefix2) > cap) return false;
    if (prefix2 + (load1 - prefix1) > cap) return false;
    return edge_ok(c1, v) &&
           edge_ok(at_or_depot(base.route(r2), pv - 1), head1);
  });
  if (u < 0) return std::nullopt;
  // i >= 1 and j < n2 rule out both forbidden cut pairs.
  return Move{MoveType::TwoOptStar, r1, base.route_of(u), pc + 1,
              base.position_of(u)};
}

std::optional<Move> MoveEngine::propose_or_opt_pruned(const Solution& base,
                                                      Rng& rng) const {
  const int n = inst_->num_customers();
  if (n < 3) return std::nullopt;
  const int c = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  const int r = base.route_of(c);
  if (r < 0) return std::nullopt;
  const auto& route = base.route(r);
  const int len = static_cast<int>(route.size());
  if (len < 3) return std::nullopt;
  const int i = base.position_of(c);
  if (i + 1 >= len) return std::nullopt;  // segment is [i, i+1]
  // Closing the gap the segment leaves is partner-independent: reject the
  // anchor before walking when that junction alone fails.
  if (!edge_ok(at_or_depot(route, i - 1), at_or_depot(route, i + 2))) {
    return std::nullopt;
  }
  const int seg_tail = route[static_cast<std::size_t>(i + 1)];
  // Re-insert the segment directly after u, creating junction (u, c).
  // j indexes the route with the segment removed.
  const auto to_removed_j = [&](int pv) {
    return (pv > i + 1 ? pv - 2 : pv) + 1;
  };
  const int u = walk_neighbors(cands_->neighbors(c), rng, [&](int v) {
    if (base.route_of(v) != r) return false;
    const int pv = base.position_of(v);
    if (pv == i || pv == i + 1) return false;
    const int j = to_removed_j(pv);
    if (j == i || j > len - 2) return false;
    // Successor of u in the segment-removed route (j >= i here, so the
    // original index shifts past the excised pair).
    const int succ = at_or_depot(route, j >= i ? j + 2 : j);
    return edge_ok(v, c) && edge_ok(seg_tail, succ);
  });
  if (u < 0) return std::nullopt;
  return Move{MoveType::OrOpt, r, r, i, to_removed_j(base.position_of(u))};
}

}  // namespace tsmo
