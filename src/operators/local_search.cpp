#include "operators/local_search.hpp"

#include <cassert>
#include <limits>

namespace tsmo {

void for_each_move(const Solution& s, MoveType t,
                   const std::function<void(const Move&)>& visit) {
  const int R = s.num_routes();
  switch (t) {
    case MoveType::Relocate:
      for (int r1 = 0; r1 < R; ++r1) {
        const int n1 = static_cast<int>(s.route(r1).size());
        for (int i = 0; i < n1; ++i) {
          for (int r2 = 0; r2 < R; ++r2) {
            if (r2 == r1) continue;
            const int n2 = static_cast<int>(s.route(r2).size());
            // Opening more than one fresh vehicle is equivalent; only
            // consider the first empty slot to bound the scan.
            if (n2 == 0 && r2 > 0 && s.route(r2 - 1).empty()) continue;
            for (int j = 0; j <= n2; ++j) {
              visit(Move{MoveType::Relocate, r1, r2, i, j});
            }
          }
        }
      }
      break;
    case MoveType::Exchange:
      for (int r1 = 0; r1 < R; ++r1) {
        for (int r2 = r1 + 1; r2 < R; ++r2) {
          const int n1 = static_cast<int>(s.route(r1).size());
          const int n2 = static_cast<int>(s.route(r2).size());
          for (int i = 0; i < n1; ++i) {
            for (int j = 0; j < n2; ++j) {
              visit(Move{MoveType::Exchange, r1, r2, i, j});
            }
          }
        }
      }
      break;
    case MoveType::TwoOpt:
      for (int r = 0; r < R; ++r) {
        const int n = static_cast<int>(s.route(r).size());
        for (int i = 0; i < n; ++i) {
          for (int j = i + 1; j < n; ++j) {
            visit(Move{MoveType::TwoOpt, r, r, i, j});
          }
        }
      }
      break;
    case MoveType::TwoOptStar:
      for (int r1 = 0; r1 < R; ++r1) {
        if (s.route(r1).empty()) continue;
        for (int r2 = r1 + 1; r2 < R; ++r2) {
          if (s.route(r2).empty()) continue;
          const int n1 = static_cast<int>(s.route(r1).size());
          const int n2 = static_cast<int>(s.route(r2).size());
          for (int i = 0; i <= n1; ++i) {
            for (int j = 0; j <= n2; ++j) {
              // Both-at-start (label swap) and both-at-end are no-ops.
              if ((i == 0 && j == 0) || (i == n1 && j == n2)) continue;
              visit(Move{MoveType::TwoOptStar, r1, r2, i, j});
            }
          }
        }
      }
      break;
    case MoveType::OrOpt:
      for (int r = 0; r < R; ++r) {
        const int n = static_cast<int>(s.route(r).size());
        for (int i = 0; i + 1 < n; ++i) {
          for (int j = 0; j <= n - 2; ++j) {
            if (j == i) continue;
            visit(Move{MoveType::OrOpt, r, r, i, j});
          }
        }
      }
      break;
  }
}

std::optional<Move> best_move_of_type(const MoveEngine& engine,
                                      const Solution& s, MoveType t,
                                      const VndOptions& options,
                                      double current_value) {
  assert(s.is_evaluated());  // delta evaluation reads the route caches
  std::optional<Move> best;
  double best_value = current_value;
  for_each_move(s, t, [&](const Move& m) {
    if (!engine.applicable(s, m)) return;
    if (!engine.screened_feasible(s, m, options.screen)) return;
    const double v = scalarize(engine.evaluate(s, m), options.weights);
    if (v < best_value) {
      best_value = v;
      best = m;
    }
  });
  return best;
}

VndResult vnd_improve(const MoveEngine& engine, Solution& s,
                      const VndOptions& options) {
  VndResult result;
  s.evaluate();
  result.initial_value = scalarize(s.objectives(), options.weights);
  double current = result.initial_value;

  static constexpr MoveType kOrder[] = {
      MoveType::Relocate, MoveType::TwoOpt, MoveType::OrOpt,
      MoveType::Exchange, MoveType::TwoOptStar};

  int k = 0;
  while (k < kNumMoveTypes && result.moves_applied < options.max_moves) {
    const auto move =
        best_move_of_type(engine, s, kOrder[k], options, current);
    if (!move) {
      ++k;  // neighborhood exhausted: try the next one
      continue;
    }
    engine.apply(s, *move);
    current = scalarize(s.objectives(), options.weights);
    ++result.moves_applied;
    k = 0;  // improvement: restart from the first neighborhood
  }
  result.final_value = current;
  return result;
}

}  // namespace tsmo
