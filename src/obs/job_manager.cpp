#include "obs/job_manager.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "util/json.hpp"
#include "util/profiler.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo::obs {

namespace {

constexpr const char* kJsonContentType = "application/json; charset=utf-8";

/// uint64 as "0x%016x": JSON numbers are doubles downstream, which would
/// silently round fingerprints above 2^53, so they travel as hex strings.
std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::string error_body(const std::string& message) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("error").value(message);
  w.end_object();
  os << '\n';
  return os.str();
}

/// Seed declared in the job body ("params": {"seed": N}); defaults to the
/// TsmoParams default so trace ids stay deterministic for seedless bodies.
std::uint64_t seed_of_body(const JsonValue& doc) {
  const JsonValue* params = doc.find("params");
  if (params == nullptr || !params->is_object()) return 1;
  const JsonValue* seed = params->find("seed");
  if (seed == nullptr || !seed->is_number()) return 1;
  return static_cast<std::uint64_t>(seed->as_int64(1));
}

/// ns as fractional µs ("1234.567"), the Chrome trace timestamp unit.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void write_front(JsonWriter& w, const std::vector<Objectives>& front) {
  w.begin_array();
  for (const Objectives& o : front) {
    w.begin_object();
    w.key("distance").value(o.distance);
    w.key("vehicles").value(o.vehicles);
    w.key("tardiness").value(o.tardiness);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobManager::JobManager(JobManagerConfig config, JobRunner runner)
    : config_(config),
      runner_(std::move(runner)),
      queue_(config.queue_capacity) {}

JobManager::~JobManager() { shutdown(); }

void JobManager::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || stopping_) return;
  started_ = true;
  const int n = config_.executors < 1 ? 1 : config_.executors;
  executors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

void JobManager::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Close first so executors blocked in pop_wait() wake, then sweep the
  // registry: ids the queue handed back can never be popped, so they are
  // terminal now; everything else non-terminal gets its cancel flag
  // raised so in-flight engines drain cooperatively.
  const std::vector<std::uint64_t> drained = queue_.close();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::uint64_t id : drained) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      Job& job = *it->second;
      if (job.state != JobState::kQueued) continue;
      job.cancel.store(true, std::memory_order_release);
      job.state = JobState::kCancelled;
      job.finish_ns = now_ns();
      ++cancelled_;
    }
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (!is_terminal(job->state)) {
        job->cancel.store(true, std::memory_order_release);
      }
    }
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  TSMO_GAUGE_SET("jobs.queue_depth", 0.0);
}

// ---------------------------------------------------------------------------
// Executor side
// ---------------------------------------------------------------------------

void JobManager::executor_loop() {
  while (std::optional<std::uint64_t> id = queue_.pop_wait()) {
    Job* job = nullptr;
    std::uint64_t wait_ns = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = jobs_.find(*id);
      if (it == jobs_.end()) continue;
      // Cancelled while queued: already terminal, nothing to run.
      if (it->second->state != JobState::kQueued) continue;
      job = it->second.get();
      job->state = JobState::kRunning;
      job->start_ns = now_ns();
      job->run_span_id = telemetry::next_span_id(job->trace_id);
      wait_ns = job->start_ns - job->submit_ns;
      ++running_;
    }
    TSMO_RECORD_NS("jobs.queue_wait_ns", static_cast<std::int64_t>(wait_ns));
    TSMO_GAUGE_SET("jobs.queue_depth",
                   static_cast<double>(queue_.depth()));
    if (FlightRecorder::enabled()) {
      FlightRecorder::instance().record(
          FlightKind::kJobStart, job->name.c_str(), 0, 0,
          static_cast<std::int64_t>(wait_ns / 1000000), job->trace_id);
    }
    log::debug("jobs")
        .msg("start")
        .str("id", job->name)
        .hex("trace_id", job->trace_id)
        .f64("wait_seconds", static_cast<double>(wait_ns) / 1.0e9);
    run_job(*job);
  }
}

void JobManager::run_job(Job& job) {
  JobContext ctx;
  ctx.cancel = &job.cancel;
  ctx.publish = [&job](const ConvergenceRecorder* rec) {
    std::lock_guard<std::mutex> lock(job.live_mutex);
    job.live = rec;
  };
  ctx.publish_introspect = [&job](const LiveIntrospect* hub) {
    std::lock_guard<std::mutex> lock(job.live_mutex);
    job.live_introspect = hub;
  };
  ctx.trace = telemetry::TraceContext{job.trace_id, job.run_span_id};
  // Collect every span recorded under this trace id while the runner is on
  // the stack; engine threads are joined before the runner returns, so the
  // detach below cannot strand a late append.
  telemetry::Registry::instance().attach_trace(job.trace_id,
                                               job.trace_buf.get());
  // Ambient scope for the executor thread itself, so manager/runner-side
  // spans and log lines correlate to the job.
  telemetry::TraceScope trace_scope(ctx.trace);
  JobOutcome out;
  try {
    out = runner_(job.body, ctx);
  } catch (const std::exception& e) {
    out = JobOutcome{};
    out.error = std::string("job runner threw: ") + e.what();
  } catch (...) {
    out = JobOutcome{};
    out.error = "job runner threw a non-standard exception";
  }
  telemetry::Registry::instance().detach_trace(job.trace_id);
  {
    // Defensive retract: the recorder and hub die with the runner frame.
    std::lock_guard<std::mutex> lock(job.live_mutex);
    job.live = nullptr;
    job.live_introspect = nullptr;
  }
  finish_job(job, std::move(out));
}

void JobManager::finish_job(Job& job, JobOutcome outcome) {
  JobState terminal;
  std::uint64_t run_ns = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.outcome = std::move(outcome);
    job.finish_ns = now_ns();
    run_ns = job.finish_ns - job.start_ns;
    if (job.cancel.load(std::memory_order_acquire)) {
      terminal = JobState::kCancelled;
      ++cancelled_;
    } else if (job.outcome.ok) {
      terminal = JobState::kDone;
      ++done_;
      // SLO feed: submit-to-first-front latency (queue wait + runner time
      // until the archive accepted its first point) against the target.
      // A successful job that never produced a front counts as slow.
      ++first_front_total_;
      const std::uint64_t to_first_ns =
          (job.start_ns - job.submit_ns) + job.outcome.first_front_ns;
      const double to_first_ms = static_cast<double>(to_first_ns) / 1.0e6;
      if (job.outcome.first_front_ns == 0 ||
          to_first_ms > config_.first_front_target_ms) {
        ++first_front_slow_;
      }
    } else {
      terminal = JobState::kFailed;
      ++failed_;
    }
    stalls_flagged_ += job.outcome.stalls_flagged;
    job.state = terminal;
    --running_;
    // Manager-side lifecycle spans, appended directly (not through the
    // registry) so /jobs/<id>/trace has the submit→queue→run skeleton even
    // when telemetry is compiled out or disabled.  tid -1 = the job plane.
    if (job.trace_buf != nullptr) {
      job.trace_buf->append(telemetry::TraceSpan{
          "job.queue_wait", -1, job.submit_ns, job.start_ns - job.submit_ns,
          telemetry::next_span_id(job.trace_id), job.root_span_id, 0});
      job.trace_buf->append(telemetry::TraceSpan{"job.run", -1, job.start_ns,
                                                 run_ns, job.run_span_id,
                                                 job.root_span_id, 0});
      job.trace_buf->append(telemetry::TraceSpan{
          "job", -1, job.submit_ns, job.finish_ns - job.submit_ns,
          job.root_span_id, 0, 0});
    }
  }
  switch (terminal) {
    case JobState::kDone:
      TSMO_COUNT("jobs.done");
      break;
    case JobState::kFailed:
      TSMO_COUNT("jobs.failed");
      break;
    default:
      TSMO_COUNT("jobs.cancelled");
      break;
  }
  TSMO_RECORD_NS("jobs.run_ns", static_cast<std::int64_t>(run_ns));
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(
        FlightKind::kJobFinish, job.name.c_str(),
        static_cast<std::int32_t>(terminal), 0,
        static_cast<std::int64_t>(run_ns / 1000000), job.trace_id);
  }
  // Scope (re-)established here so the auto-injected correlation id also
  // covers the cancel-from-queue path, where no executor scope is active.
  telemetry::TraceScope scope(
      telemetry::TraceContext{job.trace_id, job.root_span_id});
  log::Event event = terminal == JobState::kFailed ? log::warn("jobs")
                                                   : log::info("jobs");
  event.msg("finish")
      .str("id", job.name)
      .str("state", to_string(terminal))
      .f64("run_seconds", static_cast<double>(run_ns) / 1.0e9);
  if (!job.outcome.error.empty()) event.str("error", job.outcome.error);
}

// ---------------------------------------------------------------------------
// API side
// ---------------------------------------------------------------------------

JobManager::ApiResponse JobManager::submit(const std::string& body) {
  // Validate before taking the lock: parsing is the expensive part and
  // needs nothing from the registry.
  std::string parse_error;
  const std::unique_ptr<JsonValue> doc = json_parse(body, &parse_error);
  if (!doc) {
    return {400, error_body("invalid JSON: " + parse_error), 0};
  }
  if (!doc->is_object()) {
    return {400, error_body("job body must be a JSON object"), 0};
  }
  const JsonValue* instance = doc->find("instance");
  const JsonValue* solomon = doc->find("solomon");
  if ((instance == nullptr || !instance->is_string()) &&
      (solomon == nullptr || !solomon->is_string())) {
    return {400,
            error_body("job needs an \"instance\" (generator spec) or "
                       "\"solomon\" (instance text) string field"),
            0};
  }

  const std::uint64_t body_seed = seed_of_body(*doc);
  std::string name;
  std::size_t depth = 0;
  std::uint64_t trace_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++submitted_;
    if (stopping_ || !started_) {
      return {503, error_body("job plane is not accepting work"), 0};
    }
    const std::uint64_t id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->name = "job-" + std::to_string(id);
    job->body = body;
    job->submit_ns = now_ns();
    // Deterministic trace id: seed mixed with the job id, so concurrent
    // identical-seed submissions still get distinct traces while the id
    // sequence stays a pure function of submission order (no wall clock,
    // no RNG).
    job->trace_id = telemetry::derive_trace_id(
        body_seed ^ (id * 0x9e3779b97f4a7c15ULL));
    job->root_span_id = telemetry::next_span_id(job->trace_id);
    job->trace_buf =
        std::make_shared<telemetry::TraceBuffer>(config_.trace_span_budget);
    trace_id = job->trace_id;
    if (!queue_.try_push(id)) {
      ++rejected_;
      // The id is burned, not reused: names stay unique for the whole
      // process lifetime even across rejections.
      TSMO_COUNT("jobs.rejected");
      log::warn("jobs").msg("rejected").str("id", job->name).i64(
          "queue_capacity", static_cast<std::int64_t>(queue_.capacity()));
      std::ostringstream os;
      JsonWriter w(os);
      w.begin_object();
      w.key("error").value("job queue full");
      w.key("queue_capacity")
          .value(static_cast<std::int64_t>(queue_.capacity()));
      w.key("retry_after_seconds").value(config_.retry_after_seconds);
      w.end_object();
      os << '\n';
      return {429, os.str(), config_.retry_after_seconds};
    }
    ++accepted_;
    name = job->name;
    depth = queue_.depth();
    jobs_.emplace(id, std::move(job));
  }
  TSMO_COUNT("jobs.accepted");
  TSMO_GAUGE_SET("jobs.queue_depth", static_cast<double>(depth));
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kJobSubmit, name.c_str(),
                                      static_cast<std::int32_t>(depth), 0, 0,
                                      trace_id);
  }
  log::info("jobs")
      .msg("accepted")
      .str("id", name)
      .hex("trace_id", trace_id)
      .i64("queue_depth", static_cast<std::int64_t>(depth));
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("id").value(name);
  w.key("state").value("queued");
  w.key("queue_depth").value(static_cast<std::int64_t>(depth));
  w.key("trace_id").value(hex64(trace_id));
  w.key("status_url").value("/jobs/" + name);
  w.key("result_url").value("/jobs/" + name + "/result");
  w.key("trace_url").value("/jobs/" + name + "/trace");
  w.key("introspect_url").value("/jobs/" + name + "/introspect");
  w.key("profile_url").value("/jobs/" + name + "/profile");
  w.end_object();
  os << '\n';
  return {202, os.str(), 0, trace_id, name};
}

JobManager::Job* JobManager::find(const std::string& name) const {
  constexpr const char* kPrefix = "job-";
  if (name.rfind(kPrefix, 0) != 0) return nullptr;
  const char* digits = name.c_str() + 4;
  if (*digits == '\0') return nullptr;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(digits, &end, 10);
  if (end == nullptr || *end != '\0') return nullptr;
  const auto it = jobs_.find(static_cast<std::uint64_t>(id));
  return it == jobs_.end() ? nullptr : it->second.get();
}

void JobManager::write_job_status(const Job& job, std::string& out) const {
  // Caller holds mutex_; the live-front block below re-reads under the
  // job's own live mutex after mutex_ is no longer needed for fields.
  std::ostringstream os;
  JsonWriter w(os);
  const std::uint64_t now = now_ns();
  w.begin_object();
  w.key("id").value(job.name);
  w.key("state").value(to_string(job.state));
  w.key("trace_id").value(hex64(job.trace_id));
  w.key("trace_url").value("/jobs/" + job.name + "/trace");
  w.key("cancel_requested")
      .value(job.cancel.load(std::memory_order_relaxed));
  if (job.start_ns != 0) {
    w.key("wait_seconds")
        .value(static_cast<double>(job.start_ns - job.submit_ns) / 1.0e9);
    const std::uint64_t until = job.finish_ns != 0 ? job.finish_ns : now;
    w.key("run_seconds")
        .value(until <= job.start_ns
                   ? 0.0
                   : static_cast<double>(until - job.start_ns) / 1.0e9);
  }
  if (is_terminal(job.state)) {
    const JobOutcome& o = job.outcome;
    if (!o.error.empty()) w.key("error").value(o.error);
    if (!o.algorithm.empty()) w.key("algorithm").value(o.algorithm);
    if (!o.instance.empty()) w.key("instance").value(o.instance);
    if (o.ok || job.state == JobState::kCancelled) {
      w.key("evaluations").value(o.evaluations);
      w.key("wall_seconds").value(o.wall_seconds);
      w.key("stopped_early").value(o.stopped_early);
      w.key("front_size").value(static_cast<std::int64_t>(o.front_size));
      w.key("trace_fingerprint").value(hex64(o.trace_fingerprint));
      w.key("archive_fingerprint").value(hex64(o.archive_fingerprint));
      w.key("has_result").value(!o.result_json.empty());
    }
  } else if (job.state == JobState::kRunning) {
    std::lock_guard<std::mutex> live_lock(job.live_mutex);
    if (job.live != nullptr) {
      const ConvergenceRecorder::LiveStatus live = job.live->live_status();
      w.key("live").begin_object();
      w.key("engine").value(live.engine.empty() ? "pending" : live.engine);
      w.key("hv_global").value(live.hv_global);
      w.key("front_size")
          .value(static_cast<std::int64_t>(live.front.size()));
      w.key("front");
      write_front(w, live.front);
      w.key("samples").value(static_cast<std::int64_t>(live.samples));
      w.key("insertions").value(static_cast<std::int64_t>(live.insertions));
      w.end_object();
    }
  }
  w.end_object();
  os << '\n';
  out = os.str();
}

JobManager::ApiResponse JobManager::status_of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find(name);
  if (job == nullptr) return {404, error_body("unknown job: " + name), 0};
  ApiResponse res;
  res.status = 200;
  res.trace_id = job->trace_id;
  res.trace_label = job->name;
  write_job_status(*job, res.body);
  return res;
}

JobManager::ApiResponse JobManager::result_of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find(name);
  if (job == nullptr) return {404, error_body("unknown job: " + name), 0};
  ApiResponse res;
  res.trace_id = job->trace_id;
  res.trace_label = job->name;
  if (!is_terminal(job->state)) {
    // Not ready yet: the status document tells the client where it is.
    res.status = 409;
    write_job_status(*job, res.body);
    return res;
  }
  if (job->state == JobState::kFailed) {
    res.status = 500;
    res.body = error_body(job->outcome.error.empty() ? "job failed"
                                                     : job->outcome.error);
    return res;
  }
  if (job->outcome.result_json.empty()) {
    // Cancelled before it ever ran: there is no result to serve.
    res.status = 409;
    write_job_status(*job, res.body);
    return res;
  }
  res.status = 200;
  res.body = job->outcome.result_json;
  return res;
}

void JobManager::write_job_trace(const Job& job, std::string& out) const {
  const std::vector<telemetry::TraceSpan> spans =
      job.trace_buf != nullptr ? job.trace_buf->snapshot()
                               : std::vector<telemetry::TraceSpan>{};
  out = "{\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":"
         "{\"name\":\"tsmo ";
  out += job.name;  // "job-<digits>", no escaping needed
  out += "\"}}";
  for (const telemetry::TraceSpan& s : spans) {
    out += ",\n{\"name\":\"";
    out += JsonWriter::escape(s.name);
    out += "\",\"cat\":\"tsmo\"";
    if (s.kind == 1) {
      out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      append_us(out, s.start_ns);
    } else {
      out += ",\"ph\":\"X\",\"ts\":";
      append_us(out, s.start_ns);
      out += ",\"dur\":";
      append_us(out, s.dur_ns);
    }
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"args\":{\"trace\":\"";
    out += hex64(job.trace_id);
    out += "\",\"span\":\"";
    out += hex64(s.span_id);
    out += "\",\"parent\":\"";
    out += hex64(s.parent_id);
    out += "\"}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"job\":\"";
  out += job.name;
  out += "\",\"state\":\"";
  out += to_string(job.state);
  out += "\",\"trace_id\":\"";
  out += hex64(job.trace_id);
  out += "\",\"spans\":";
  out += std::to_string(spans.size());
  out += ",\"dropped_spans\":";
  out += std::to_string(job.trace_buf != nullptr ? job.trace_buf->dropped()
                                                 : 0);
  out += ",\"span_budget\":";
  out += std::to_string(job.trace_buf != nullptr ? job.trace_buf->budget()
                                                 : 0);
  out += "}}\n";
}

JobManager::ApiResponse JobManager::trace_of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find(name);
  if (job == nullptr) return {404, error_body("unknown job: " + name), 0};
  ApiResponse res;
  res.status = 200;
  res.trace_id = job->trace_id;
  res.trace_label = job->name;
  write_job_trace(*job, res.body);
  return res;
}

JobManager::ApiResponse JobManager::introspect_of(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find(name);
  if (job == nullptr) return {404, error_body("unknown job: " + name), 0};
  ApiResponse res;
  res.trace_id = job->trace_id;
  res.trace_label = job->name;
  {
    std::lock_guard<std::mutex> live_lock(job->live_mutex);
    if (job->live_introspect != nullptr) {
      res.status = 200;
      res.body = job->live_introspect->to_json();
      res.body += '\n';
      return res;
    }
  }
  if (is_terminal(job->state) && !job->outcome.introspect_json.empty()) {
    res.status = 200;
    res.body = job->outcome.introspect_json;
    if (res.body.empty() || res.body.back() != '\n') res.body += '\n';
    return res;
  }
  res.status = 409;
  res.body = error_body(
      "no introspection data for " + name +
      " (submit with params {\"introspect\": true}, or poll while running)");
  return res;
}

JobManager::ApiResponse JobManager::profile_of(
    const std::string& name, const std::string& format) const {
  std::uint64_t trace_id = 0;
  std::string job_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Job* job = find(name);
    if (job == nullptr) return {404, error_body("unknown job: " + name), 0};
    trace_id = job->trace_id;
    job_name = job->name;
  }
  ApiResponse res;
  res.trace_id = trace_id;
  res.trace_label = job_name;
  if (!prof::enabled()) {
    res.status = 409;
    res.body = error_body(
        "profiler disabled (submit with params {\"profile_hz\": N} or serve "
        "with --profile-hz)");
    return res;
  }
  // Only this job's samples: the sampler stamps every sample with the
  // ambient trace id, which the runner threads inherit from the job.
  const std::vector<prof::Sample> samples = prof::collect(trace_id);
  res.status = 200;
  if (format == "speedscope") {
    std::ostringstream os;
    prof::write_speedscope(os, samples, "tsmo " + job_name);
    res.body = os.str();
  } else {
    res.body = prof::fold(samples);
    res.content_type = "text/plain; charset=utf-8";
  }
  return res;
}

JobManager::ApiResponse JobManager::cancel(const std::string& name) {
  bool was_running = false;
  std::string body;
  std::uint64_t trace_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Job* job = find(name);
    if (job == nullptr) return {404, error_body("unknown job: " + name), 0};
    trace_id = job->trace_id;
    if (is_terminal(job->state)) {
      ApiResponse res;
      res.status = 409;
      res.trace_id = trace_id;
      res.trace_label = job->name;
      write_job_status(*job, res.body);
      return res;
    }
    was_running = job->state == JobState::kRunning;
    job->cancel.store(true, std::memory_order_release);
    if (!was_running) {
      // Still queued: terminal immediately; the executor that eventually
      // pops the id sees a non-queued state and skips it.
      job->state = JobState::kCancelled;
      job->finish_ns = now_ns();
      ++cancelled_;
    }
    write_job_status(*job, body);
  }
  TSMO_COUNT("jobs.cancel_requests");
  if (!was_running) TSMO_COUNT("jobs.cancelled");
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kJobCancel, name.c_str(),
                                      was_running ? 1 : 0, 0, 0, trace_id);
  }
  log::info("jobs")
      .msg("cancel")
      .str("id", name)
      .hex("trace_id", trace_id)
      .i64("was_running", was_running ? 1 : 0);
  return {202, body, 0, trace_id, name};
}

JobManager::ApiResponse JobManager::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("jobs").begin_array();
  for (const auto& [id, job] : jobs_) {
    (void)id;
    w.begin_object();
    w.key("id").value(job->name);
    w.key("state").value(to_string(job->state));
    if (is_terminal(job->state) && !job->outcome.error.empty()) {
      w.key("error").value(job->outcome.error);
    }
    w.end_object();
  }
  w.end_array();
  w.key("stats").begin_object();
  w.key("submitted").value(static_cast<std::int64_t>(submitted_));
  w.key("accepted").value(static_cast<std::int64_t>(accepted_));
  w.key("rejected").value(static_cast<std::int64_t>(rejected_));
  w.key("done").value(static_cast<std::int64_t>(done_));
  w.key("failed").value(static_cast<std::int64_t>(failed_));
  w.key("cancelled").value(static_cast<std::int64_t>(cancelled_));
  w.key("running").value(static_cast<std::int64_t>(running_));
  w.key("queue_depth").value(static_cast<std::int64_t>(queue_.depth()));
  w.key("queue_capacity")
      .value(static_cast<std::int64_t>(queue_.capacity()));
  w.key("executors").value(config_.executors < 1 ? 1 : config_.executors);
  w.end_object();
  w.end_object();
  os << '\n';
  return {200, os.str(), 0};
}

JobManager::Stats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.submitted = submitted_;
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.done = done_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.first_front_total = first_front_total_;
  s.first_front_slow = first_front_slow_;
  s.stalls_flagged = stalls_flagged_;
  s.queue_depth = queue_.depth();
  s.running = running_;
  s.queue_capacity = queue_.capacity();
  s.executors = config_.executors < 1 ? 1 : config_.executors;
  return s;
}

std::vector<JobManager::LiveFront> JobManager::live_fronts() const {
  std::vector<LiveFront> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, job] : jobs_) {
    if (job->state != JobState::kRunning) continue;
    std::lock_guard<std::mutex> live_lock(job->live_mutex);
    if (job->live == nullptr) continue;
    LiveFront lf;
    lf.id = id;
    lf.name = job->name;
    lf.hv = job->live->global_hv();
    lf.front_size = job->live->live_status().front.size();
    out.push_back(std::move(lf));
  }
  return out;
}

JobManager::JobView JobManager::view(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JobView v;
  const Job* job = find(name);
  if (job == nullptr) return v;
  v.id = job->id;
  v.name = job->name;
  v.state = job->state;
  v.error = job->outcome.error;
  v.algorithm = job->outcome.algorithm;
  v.trace_fingerprint = job->outcome.trace_fingerprint;
  v.archive_fingerprint = job->outcome.archive_fingerprint;
  v.front_size = job->outcome.front_size;
  v.stopped_early = job->outcome.stopped_early;
  return v;
}

void JobManager::install_routes(HttpServer& server) {
  const auto apply = [](const ApiResponse& a, HttpResponse& res) {
    res.status = a.status;
    res.content_type =
        a.content_type.empty() ? kJsonContentType : a.content_type;
    res.body = a.body;
    res.trace_id = a.trace_id;
    res.trace_label = a.trace_label;
    if (a.retry_after > 0) {
      res.headers.emplace_back("Retry-After",
                               std::to_string(a.retry_after));
    }
  };
  server.route("POST", "/jobs",
               [this, apply](const HttpRequest& req, HttpResponse& res) {
                 apply(submit(req.body), res);
               });
  server.route("GET", "/jobs",
               [this, apply](const HttpRequest&, HttpResponse& res) {
                 apply(list(), res);
               });
  server.route_prefix(
      "GET", "/jobs/",
      [this, apply](const HttpRequest& req, HttpResponse& res) {
        std::string rest = req.path.substr(6);  // after "/jobs/"
        const std::string kResult = "/result";
        const std::string kTrace = "/trace";
        const std::string kIntrospect = "/introspect";
        const std::string kProfile = "/profile";
        const auto ends_with = [&rest](const std::string& suffix) {
          return rest.size() > suffix.size() &&
                 rest.compare(rest.size() - suffix.size(), suffix.size(),
                              suffix) == 0;
        };
        const auto strip = [&rest](const std::string& suffix) {
          return rest.substr(0, rest.size() - suffix.size());
        };
        if (ends_with(kResult)) {
          apply(result_of(strip(kResult)), res);
        } else if (ends_with(kTrace)) {
          apply(trace_of(strip(kTrace)), res);
        } else if (ends_with(kIntrospect)) {
          apply(introspect_of(strip(kIntrospect)), res);
        } else if (ends_with(kProfile)) {
          // ?format=speedscope switches from the default folded text.
          std::string format;
          const std::string key = "format=";
          const std::size_t at = req.query.find(key);
          if (at != std::string::npos) {
            const std::size_t start = at + key.size();
            const std::size_t amp = req.query.find('&', start);
            format = req.query.substr(start, amp == std::string::npos
                                                 ? std::string::npos
                                                 : amp - start);
          }
          apply(profile_of(strip(kProfile), format), res);
        } else {
          apply(status_of(rest), res);
        }
      });
  server.route_prefix(
      "DELETE", "/jobs/",
      [this, apply](const HttpRequest& req, HttpResponse& res) {
        apply(cancel(req.path.substr(6)), res);
      });
}

}  // namespace tsmo::obs
