#pragma once

// The job plane (DESIGN.md §12): a multi-tenant batch front end over the
// embedded HttpServer.
//
//   POST   /jobs              submit a VRPTW job (instance + params JSON);
//                             202 with a job id, 400 on malformed bodies,
//                             429 + Retry-After when the queue is full
//   GET    /jobs              list every known job + plane statistics
//   GET    /jobs/<id>         job state, and while it runs the live
//                             anytime Pareto front (convergence recorder)
//   GET    /jobs/<id>/result  final RunResult JSON (409 until terminal)
//   DELETE /jobs/<id>         cancel: queued jobs die immediately, running
//                             jobs drain via their per-job stop flag and
//                             keep a stopped_early partial result
//
// Layering: this unit owns lifecycle, admission and bookkeeping but knows
// nothing about engines — execution is injected as a JobRunner (the
// standard one lives in src/harness/job_runner.hpp, which may link the
// whole solver stack; tsmo_obs must not).  Each job gets its own
// std::atomic<bool> cancel flag, which the runner plumbs into
// TsmoParams::stop so cancellation scopes to exactly one job, and engines
// stay deterministic per job: identical (instance, params, seed)
// submissions produce identical trace/archive fingerprints regardless of
// queue interleaving or concurrent load.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "moo/anytime.hpp"
#include "moo/introspect.hpp"
#include "obs/http_server.hpp"
#include "obs/job_queue.hpp"
#include "util/telemetry.hpp"

namespace tsmo::obs {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// "queued" | "running" | "done" | "failed" | "cancelled".
const char* to_string(JobState state) noexcept;
inline bool is_terminal(JobState s) noexcept {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

/// Execution context handed to the runner for one job.
struct JobContext {
  /// This job's cooperative stop flag; forward it into TsmoParams::stop so
  /// DELETE /jobs/<id> drains exactly this run.
  const std::atomic<bool>* cancel = nullptr;
  /// Publishes (or retracts, with nullptr) the run's convergence recorder
  /// so GET /jobs/<id> can serve the live anytime front.  The runner must
  /// retract before the recorder dies; the manager also retracts
  /// defensively when the runner returns.
  std::function<void(const ConvergenceRecorder*)> publish;
  /// Publishes (or retracts) the run's live introspection hub so GET
  /// /jobs/<id>/introspect can serve operator/tabu/archive rates mid-run
  /// (DESIGN.md §14).  Same lifetime contract as `publish`.
  std::function<void(const LiveIntrospect*)> publish_introspect;
  /// This job's causal trace context (DESIGN.md §13): trace_id names the
  /// request, span_id is the manager's "job.run" span.  The runner forwards
  /// both into TsmoParams so engine/worker spans parent under the job.
  telemetry::TraceContext trace;
};

/// What the runner hands back for one job.
struct JobOutcome {
  bool ok = false;
  std::string error;        ///< filled when !ok
  std::string result_json;  ///< full RunResult document (write_run_json)
  /// Final introspection summary (LiveIntrospect::to_json); empty when
  /// the job ran without params.introspect.
  std::string introspect_json;
  // Summary fields surfaced in GET /jobs/<id> without reparsing the JSON.
  std::string algorithm;
  std::string instance;
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t archive_fingerprint = 0;
  std::size_t front_size = 0;
  std::int64_t evaluations = 0;
  double wall_seconds = 0.0;
  bool stopped_early = false;
  /// Runner time until the anytime archive accepted its first point
  /// (convergence recorder insertion clock); 0 when no front emerged.
  /// The manager adds queue wait and classifies submit-to-first-front
  /// against JobManagerConfig::first_front_target_ms (SLO feed).
  std::uint64_t first_front_ns = 0;
  /// Stall-watchdog verdicts flagged during this job's run.
  std::uint64_t stalls_flagged = 0;
};

/// Executes one submitted body.  Runs on a manager executor thread; must
/// honor ctx.cancel promptly and never throw for routine bad input
/// (return ok=false instead) — exceptions are caught and mapped to a
/// failed job regardless.
using JobRunner =
    std::function<JobOutcome(const std::string& body, const JobContext& ctx)>;

struct JobManagerConfig {
  /// Bounded FIFO depth; admission control refuses submissions beyond it
  /// with 429 + Retry-After.
  std::size_t queue_capacity = 16;
  /// Fixed executor pool: at most this many engine runs are in flight.
  int executors = 2;
  /// Advisory Retry-After [s] attached to 429 responses.
  int retry_after_seconds = 1;
  /// Per-job span budget: GET /jobs/<id>/trace keeps at most this many
  /// spans; overflow is counted in the export's dropped_spans, never
  /// silently lost.
  std::size_t trace_span_budget = 4096;
  /// Submit-to-first-front latency target [ms] (ROADMAP: p99 < 2 s).
  /// Successful jobs slower than this count into Stats::first_front_slow,
  /// the bad-event feed of the first_front_latency SLO.
  double first_front_target_ms = 2000.0;
};

class JobManager {
 public:
  /// Uniform API answer: HTTP status + JSON body (+ optional Retry-After).
  struct ApiResponse {
    ApiResponse() = default;
    ApiResponse(int status_in, std::string body_in, int retry_after_in = 0,
                std::uint64_t trace_id_in = 0, std::string trace_label_in = {})
        : status(status_in),
          body(std::move(body_in)),
          retry_after(retry_after_in),
          trace_id(trace_id_in),
          trace_label(std::move(trace_label_in)) {}

    int status = 200;
    std::string body;
    int retry_after = 0;  ///< seconds; emitted as a Retry-After header
    /// Overrides the default application/json content type when non-empty
    /// (the folded-stack profile export is plain text).
    std::string content_type;
    /// Exemplar correlation for RED metrics: the causal trace id of the
    /// job this response concerns (0 when none) and its name.
    std::uint64_t trace_id = 0;
    std::string trace_label;
  };

  /// Monotone plane counters; at quiescence
  /// accepted == done + failed + cancelled.
  struct Stats {
    std::uint64_t submitted = 0;  ///< POST /jobs calls that parsed at all
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;   ///< 429s (admission control)
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    /// Successful jobs classified against first_front_target_ms.
    std::uint64_t first_front_total = 0;
    std::uint64_t first_front_slow = 0;
    /// Stall-watchdog verdicts accumulated from finished jobs.
    std::uint64_t stalls_flagged = 0;
    std::size_t queue_depth = 0;
    std::size_t running = 0;
    std::size_t queue_capacity = 0;
    int executors = 0;
  };

  /// Live anytime snapshot of one running job (tsdb sampler feed).
  struct LiveFront {
    std::uint64_t id = 0;
    std::string name;
    double hv = 0.0;
    std::size_t front_size = 0;
  };

  /// One job's externally visible state (tests and /jobs listing).
  struct JobView {
    std::uint64_t id = 0;
    std::string name;  ///< "job-<id>"
    JobState state = JobState::kQueued;
    std::string error;
    std::string algorithm;
    std::uint64_t trace_fingerprint = 0;
    std::uint64_t archive_fingerprint = 0;
    std::size_t front_size = 0;
    bool stopped_early = false;
  };

  JobManager(JobManagerConfig config, JobRunner runner);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Launches the executor pool.  Idempotent.
  void start();

  /// Stops admission, cancels queued and running jobs (cooperatively),
  /// and joins the executors.  Every accepted job reaches a terminal
  /// state.  Idempotent; also run by the destructor.
  void shutdown();

  // --- HTTP-facing operations (thread-safe) ---
  ApiResponse submit(const std::string& body);
  ApiResponse status_of(const std::string& name) const;
  ApiResponse result_of(const std::string& name) const;
  /// Chrome-trace JSON of the job's causal spans (submit→queue→run→worker);
  /// valid at any lifecycle stage (empty traceEvents until spans exist).
  ApiResponse trace_of(const std::string& name) const;
  /// Live introspection document while the job runs (when its runner
  /// published a hub), the terminal summary once done; 409 when the job
  /// never enabled introspection.
  ApiResponse introspect_of(const std::string& name) const;
  /// CPU profile of this job only: samples whose ambient trace id matches
  /// the job's, folded ("folded", default) or speedscope JSON
  /// ("speedscope").  409 while the sampling profiler is disarmed.
  ApiResponse profile_of(const std::string& name,
                         const std::string& format) const;
  ApiResponse cancel(const std::string& name);
  ApiResponse list() const;

  /// Registers the /jobs routes on `server` (call before server.start()).
  void install_routes(HttpServer& server);

  Stats stats() const;
  JobView view(const std::string& name) const;  ///< id 0 when unknown

  /// Hypervolume/front-size of every currently running job that has
  /// published a recorder; the obs sampler turns these into per-job
  /// `job.<name>.hv` series for the dashboard's convergence curves.
  std::vector<LiveFront> live_fronts() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string name;
    std::string body;
    JobState state = JobState::kQueued;  // guarded by mutex_
    std::atomic<bool> cancel{false};
    std::uint64_t submit_ns = 0;
    std::uint64_t start_ns = 0;   // guarded by mutex_
    std::uint64_t finish_ns = 0;  // guarded by mutex_
    JobOutcome outcome;           // guarded by mutex_ once terminal

    // Causal trace (DESIGN.md §13): ids minted deterministically at
    // submit; the buffer collects engine spans while the job runs (via
    // Registry::attach_trace) plus the manager's own lifecycle spans.
    std::uint64_t trace_id = 0;
    std::uint64_t root_span_id = 0;           ///< "job" span
    std::uint64_t run_span_id = 0;            ///< "job.run" span (mutex_)
    std::shared_ptr<telemetry::TraceBuffer> trace_buf;

    // Live recorder pointer for mid-run /jobs/<id> polling.  Its own
    // mutex so serializing a front never blocks submissions.
    mutable std::mutex live_mutex;
    const ConvergenceRecorder* live = nullptr;  // guarded by live_mutex
    const LiveIntrospect* live_introspect = nullptr;  // guarded by live_mutex
  };

  void executor_loop();
  void run_job(Job& job);
  Job* find(const std::string& name) const;  // mutex_ held by caller
  void finish_job(Job& job, JobOutcome outcome);
  void write_job_status(const Job& job, std::string& out) const;
  void write_job_trace(const Job& job, std::string& out) const;

  const JobManagerConfig config_;
  const JobRunner runner_;
  JobQueue queue_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  bool started_ = false;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t first_front_total_ = 0;
  std::uint64_t first_front_slow_ = 0;
  std::uint64_t stalls_flagged_ = 0;
  std::size_t running_ = 0;

  std::vector<std::thread> executors_;
};

}  // namespace tsmo::obs
