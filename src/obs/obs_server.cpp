#include "obs/obs_server.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/buildinfo.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/job_manager.hpp"
#include "util/json.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo::obs {

namespace {

constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJsonContentType = "application/json; charset=utf-8";

/// A heartbeat younger than this counts as "busy" in /status.
constexpr double kBusyThresholdMs = 1000.0;

void append_gauge(std::string& out, const char* name, const char* help,
                  double value) {
  std::ostringstream v;
  v.precision(17);
  v << value;
  out += std::string("# HELP ") + name + " " + help + "\n";
  out += std::string("# TYPE ") + name + " gauge\n";
  out += std::string(name) + " " + v.str() + "\n";
}

void append_counter(std::string& out, const char* name, const char* help,
                    std::uint64_t value) {
  out += std::string("# HELP ") + name + " " + help + "\n";
  out += std::string("# TYPE ") + name + " counter\n";
  out += std::string(name) + " " + std::to_string(value) + "\n";
}

/// RED metrics per HTTP route with exemplars (DESIGN.md §13):
/// tsmo_http_requests_total{route,method,code} counters plus one
/// tsmo_http_request_duration_seconds histogram per route/method whose
/// highest non-empty bucket carries an OpenMetrics-style exemplar
/// (`# {trace_id="0x…",job="job-N"} <seconds>`) pointing at the slowest
/// request seen — the jump-off from a latency alert into /jobs/<id>/trace.
void append_http_red(std::string& out, const std::vector<RouteStat>& stats) {
  if (stats.empty()) return;
  auto fmt_double = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  out +=
      "# HELP tsmo_http_requests_total HTTP requests served, by registered "
      "route pattern, method and status code.\n"
      "# TYPE tsmo_http_requests_total counter\n";
  for (const RouteStat& s : stats) {
    for (const auto& [code, n] : s.by_status) {
      out += "tsmo_http_requests_total{route=\"" +
             escape_label_value(s.route) + "\",method=\"" +
             escape_label_value(s.method) + "\",code=\"" +
             std::to_string(code) + "\"} " + std::to_string(n) + "\n";
    }
  }
  out +=
      "# HELP tsmo_http_request_duration_seconds HTTP request latency by "
      "route and method; slowest buckets carry trace exemplars.\n"
      "# TYPE tsmo_http_request_duration_seconds histogram\n";
  for (const RouteStat& s : stats) {
    const std::string labels = "route=\"" + escape_label_value(s.route) +
                               "\",method=\"" + escape_label_value(s.method) +
                               "\"";
    int last = static_cast<int>(s.buckets.size()) - 1;
    while (last > 0 && s.buckets[last] == 0) --last;
    std::uint64_t cum = 0;
    for (int b = 0; b <= last; ++b) {
      cum += s.buckets[b];
      const double le_seconds =
          b == 0 ? 0.0 : std::ldexp(1.0, b) * 1e-9;
      out += "tsmo_http_request_duration_seconds_bucket{" + labels +
             ",le=\"" + fmt_double(le_seconds) + "\"} " +
             std::to_string(cum);
      if (b == last && s.exemplar_trace != 0) {
        char ex[96];
        std::snprintf(ex, sizeof(ex), " # {trace_id=\"0x%016llx\"",
                      static_cast<unsigned long long>(s.exemplar_trace));
        out += ex;
        if (!s.exemplar_label.empty()) {
          out += ",job=\"" + escape_label_value(s.exemplar_label) + "\"";
        }
        out += "} " + fmt_double(static_cast<double>(s.max_ns) * 1e-9);
      }
      out += "\n";
    }
    out += "tsmo_http_request_duration_seconds_bucket{" + labels +
           ",le=\"+Inf\"} " + std::to_string(s.count) + "\n";
    out += "tsmo_http_request_duration_seconds_sum{" + labels + "} " +
           fmt_double(static_cast<double>(s.sum_ns) * 1e-9) + "\n";
    out += "tsmo_http_request_duration_seconds_count{" + labels + "} " +
           std::to_string(s.count) + "\n";
  }
}

void write_heartbeats(JsonWriter& w, const HeartbeatBoard& board,
                      std::uint64_t now) {
  w.begin_array();
  for (const HeartbeatBoard::Reading& r : board.read_all()) {
    const double age_ms =
        r.last_beat_ns == 0 || now <= r.last_beat_ns
            ? 0.0
            : static_cast<double>(now - r.last_beat_ns) / 1.0e6;
    w.begin_object();
    w.key("slot").value(r.slot);
    w.key("label").value(r.label);
    w.key("started").value(r.last_beat_ns != 0);
    w.key("age_ms").value(age_ms);
    w.key("progress").value(static_cast<std::int64_t>(r.progress));
    w.key("beats").value(static_cast<std::int64_t>(r.beats));
    w.key("busy").value(r.last_beat_ns != 0 && age_ms < kBusyThresholdMs);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

ObsServer::ObsServer(Options opts)
    : server_(opts.port, opts.handler_threads) {
  server_.route("/metrics", [this](const HttpRequest&, HttpResponse& res) {
    handle_metrics(res);
  });
  server_.route("/healthz", [this](const HttpRequest&, HttpResponse& res) {
    handle_healthz(res);
  });
  server_.route("/status", [this](const HttpRequest&, HttpResponse& res) {
    handle_status(res);
  });
  server_.route("/buildinfo", [](const HttpRequest&, HttpResponse& res) {
    std::ostringstream os;
    write_buildinfo_json(os);
    res.content_type = kJsonContentType;
    res.body = os.str();
  });
  server_.route("/", [this](const HttpRequest&, HttpResponse& res) {
    res.body =
        "tsmo operational plane\n"
        "  /metrics    Prometheus exposition of the telemetry registry\n"
        "  /healthz    liveness + stall watchdog verdicts\n"
        "  /status     live Pareto front and per-worker progress\n"
        "  /buildinfo  git sha, compiler, flags\n";
    if (jobs_ != nullptr) {
      res.body +=
          "  /jobs       POST submit, GET list; /jobs/<id> status, "
          "/jobs/<id>/result, /jobs/<id>/trace, DELETE cancel\n";
    }
  });
}

void ObsServer::attach_jobs(JobManager* jobs) {
  jobs_ = jobs;
  if (jobs_ != nullptr) jobs_->install_routes(server_);
}

bool ObsServer::start() {
  start_ns_ = now_ns();
  const bool ok = server_.start();
  if (ok && FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kServeStart, nullptr, 0,
                                      port());
  }
  return ok;
}

void ObsServer::stop() {
  if (!server_.running()) return;
  const int p = port();
  server_.stop();
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kServeStop, nullptr, 0, p);
  }
}

void ObsServer::handle_metrics(HttpResponse& res) {
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
#if TSMO_TELEMETRY_ENABLED
  // Metrics-only snapshot: the span rings are plain records and may be
  // mid-write on worker threads during a live scrape.
  write_prometheus(
      os, telemetry::Registry::instance().snapshot(/*include_spans=*/false));
#endif
  std::string body = os.str();
  append_counter(body, "tsmo_obs_scrapes_total",
                 "Scrapes of /metrics answered by this process.",
                 scrapes_.load(std::memory_order_relaxed));
  append_counter(body, "tsmo_obs_flight_events_total",
                 "Events recorded by the flight recorder ring.",
                 FlightRecorder::instance().recorded());
  append_http_red(body, server_.route_stats());
  if (jobs_ != nullptr) {
    const JobManager::Stats js = jobs_->stats();
    append_counter(body, "tsmo_jobs_submitted_total",
                   "POST /jobs submissions that reached admission.",
                   js.submitted);
    append_counter(body, "tsmo_jobs_accepted_total",
                   "Jobs admitted into the bounded queue.", js.accepted);
    append_counter(body, "tsmo_jobs_rejected_total",
                   "Jobs refused with 429 by admission control.",
                   js.rejected);
    append_counter(body, "tsmo_jobs_done_total",
                   "Jobs that finished successfully.", js.done);
    append_counter(body, "tsmo_jobs_failed_total", "Jobs that failed.",
                   js.failed);
    append_counter(body, "tsmo_jobs_cancelled_total",
                   "Jobs cancelled while queued or running.", js.cancelled);
    append_gauge(body, "tsmo_jobs_queue_depth",
                 "Jobs waiting in the admission queue.",
                 static_cast<double>(js.queue_depth));
    append_gauge(body, "tsmo_jobs_running",
                 "Jobs currently executing on the pool.",
                 static_cast<double>(js.running));
  }
  if (const ConvergenceRecorder* rec =
          recorder_.load(std::memory_order_acquire)) {
    const ConvergenceRecorder::LiveStatus live = rec->live_status();
    append_gauge(body, "tsmo_pareto_hypervolume",
                 "Anytime hypervolume of the global non-dominated set.",
                 live.hv_global);
    append_gauge(body, "tsmo_pareto_front_size",
                 "Points in the global non-dominated set.",
                 static_cast<double>(live.front.size()));
    append_gauge(body, "tsmo_workers_stalled",
                 "Heartbeat slots currently flagged by the stall watchdog.",
                 static_cast<double>(rec->stalled_count()));
    append_gauge(body, "tsmo_iterations_progress",
                 "Summed per-slot progress counters (searcher iterations).",
                 static_cast<double>(rec->board().total_progress()));
  }
  res.content_type = kMetricsContentType;
  res.body = std::move(body);
}

void ObsServer::handle_healthz(HttpResponse& res) {
  const ConvergenceRecorder* rec = recorder_.load(std::memory_order_acquire);
  const std::uint64_t now = now_ns();
  const int stalled = rec ? rec->stalled_count() : 0;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("status").value(stalled > 0 ? "stalled" : "ok");
  w.key("uptime_seconds")
      .value(static_cast<double>(now - start_ns_) / 1.0e9);
  w.key("stalled_now").value(stalled);
  w.key("stalls_flagged")
      .value(static_cast<std::int64_t>(rec ? rec->stalls_flagged() : 0));
  w.key("flight_events")
      .value(static_cast<std::int64_t>(FlightRecorder::instance().recorded()));
  if (jobs_ != nullptr) {
    const JobManager::Stats js = jobs_->stats();
    w.key("jobs").begin_object();
    w.key("queue_depth").value(static_cast<std::int64_t>(js.queue_depth));
    w.key("queue_capacity")
        .value(static_cast<std::int64_t>(js.queue_capacity));
    w.key("running").value(static_cast<std::int64_t>(js.running));
    w.key("executors").value(js.executors);
    w.key("accepted").value(static_cast<std::int64_t>(js.accepted));
    w.key("done").value(static_cast<std::int64_t>(js.done));
    w.key("failed").value(static_cast<std::int64_t>(js.failed));
    w.key("cancelled").value(static_cast<std::int64_t>(js.cancelled));
    w.key("rejected").value(static_cast<std::int64_t>(js.rejected));
    w.end_object();
  }
  w.key("heartbeats");
  if (rec) {
    write_heartbeats(w, rec->board(), now);
  } else {
    w.begin_array().end_array();
  }
  w.end_object();
  os << '\n';
  res.content_type = kJsonContentType;
  res.body = os.str();
}

void ObsServer::handle_status(HttpResponse& res) {
  const ConvergenceRecorder* rec = recorder_.load(std::memory_order_acquire);
  const std::uint64_t now = now_ns();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (!rec) {
    w.key("engine").value("idle");
    w.key("attached").value(false);
    w.end_object();
  } else {
    const ConvergenceRecorder::LiveStatus live = rec->live_status();
    w.key("engine").value(live.engine.empty() ? "pending" : live.engine);
    w.key("attached").value(true);
    w.key("hv_global").value(live.hv_global);
    w.key("front_size")
        .value(static_cast<std::int64_t>(live.front.size()));
    w.key("front").begin_array();
    for (const Objectives& o : live.front) {
      w.begin_object();
      w.key("distance").value(o.distance);
      w.key("vehicles").value(o.vehicles);
      w.key("tardiness").value(o.tardiness);
      w.end_object();
    }
    w.end_array();
    w.key("samples").value(static_cast<std::int64_t>(live.samples));
    w.key("insertions").value(static_cast<std::int64_t>(live.insertions));
    w.key("stalls").value(static_cast<std::int64_t>(live.stalls));
    w.key("iterations")
        .value(static_cast<std::int64_t>(rec->board().total_progress()));
    const double run_s =
        live.engine_start_ns == 0 || now <= live.engine_start_ns
            ? 0.0
            : static_cast<double>(now - live.engine_start_ns) / 1.0e9;
    w.key("run_seconds").value(run_s);
    w.key("workers");
    write_heartbeats(w, rec->board(), now);
    w.end_object();
  }
  os << '\n';
  res.content_type = kJsonContentType;
  res.body = os.str();
}

}  // namespace tsmo::obs
