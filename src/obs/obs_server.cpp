#include "obs/obs_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "moo/introspect.hpp"
#include "obs/buildinfo.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/job_manager.hpp"
#include "util/json.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo::obs {

namespace {

constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJsonContentType = "application/json; charset=utf-8";

/// A heartbeat younger than this counts as "busy" in /status.
constexpr double kBusyThresholdMs = 1000.0;

void append_gauge(std::string& out, const char* name, const char* help,
                  double value) {
  std::ostringstream v;
  v.precision(17);
  v << value;
  out += std::string("# HELP ") + name + " " + help + "\n";
  out += std::string("# TYPE ") + name + " gauge\n";
  out += std::string(name) + " " + v.str() + "\n";
}

void append_counter(std::string& out, const char* name, const char* help,
                    std::uint64_t value) {
  out += std::string("# HELP ") + name + " " + help + "\n";
  out += std::string("# TYPE ") + name + " counter\n";
  out += std::string(name) + " " + std::to_string(value) + "\n";
}

/// RED metrics per HTTP route with exemplars (DESIGN.md §13):
/// tsmo_http_requests_total{route,method,code} counters plus one
/// tsmo_http_request_duration_seconds histogram per route/method whose
/// highest non-empty bucket carries an OpenMetrics-style exemplar
/// (`# {trace_id="0x…",job="job-N"} <seconds>`) pointing at the slowest
/// request seen — the jump-off from a latency alert into /jobs/<id>/trace.
void append_http_red(std::string& out, const std::vector<RouteStat>& stats) {
  if (stats.empty()) return;
  auto fmt_double = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  out +=
      "# HELP tsmo_http_requests_total HTTP requests served, by registered "
      "route pattern, method and status code.\n"
      "# TYPE tsmo_http_requests_total counter\n";
  for (const RouteStat& s : stats) {
    for (const auto& [code, n] : s.by_status) {
      out += "tsmo_http_requests_total{route=\"" +
             escape_label_value(s.route) + "\",method=\"" +
             escape_label_value(s.method) + "\",code=\"" +
             std::to_string(code) + "\"} " + std::to_string(n) + "\n";
    }
  }
  out +=
      "# HELP tsmo_http_request_duration_seconds HTTP request latency by "
      "route and method; slowest buckets carry trace exemplars.\n"
      "# TYPE tsmo_http_request_duration_seconds histogram\n";
  for (const RouteStat& s : stats) {
    const std::string labels = "route=\"" + escape_label_value(s.route) +
                               "\",method=\"" + escape_label_value(s.method) +
                               "\"";
    int last = static_cast<int>(s.buckets.size()) - 1;
    while (last > 0 && s.buckets[last] == 0) --last;
    std::uint64_t cum = 0;
    for (int b = 0; b <= last; ++b) {
      cum += s.buckets[b];
      const double le_seconds =
          b == 0 ? 0.0 : std::ldexp(1.0, b) * 1e-9;
      out += "tsmo_http_request_duration_seconds_bucket{" + labels +
             ",le=\"" + fmt_double(le_seconds) + "\"} " +
             std::to_string(cum);
      if (b == last && s.exemplar_trace != 0) {
        char ex[96];
        std::snprintf(ex, sizeof(ex), " # {trace_id=\"0x%016llx\"",
                      static_cast<unsigned long long>(s.exemplar_trace));
        out += ex;
        if (!s.exemplar_label.empty()) {
          out += ",job=\"" + escape_label_value(s.exemplar_label) + "\"";
        }
        out += "} " + fmt_double(static_cast<double>(s.max_ns) * 1e-9);
      }
      out += "\n";
    }
    out += "tsmo_http_request_duration_seconds_bucket{" + labels +
           ",le=\"+Inf\"} " + std::to_string(s.count) + "\n";
    out += "tsmo_http_request_duration_seconds_sum{" + labels + "} " +
           fmt_double(static_cast<double>(s.sum_ns) * 1e-9) + "\n";
    out += "tsmo_http_request_duration_seconds_count{" + labels + "} " +
           std::to_string(s.count) + "\n";
  }
}

/// Value of `key` in an application/x-www-form-urlencoded query string;
/// empty when absent.  No percent-decoding — profile params are plain
/// integers/identifiers.
std::string query_param(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

void write_heartbeats(JsonWriter& w, const HeartbeatBoard& board,
                      std::uint64_t now) {
  w.begin_array();
  for (const HeartbeatBoard::Reading& r : board.read_all()) {
    const double age_ms =
        r.last_beat_ns == 0 || now <= r.last_beat_ns
            ? 0.0
            : static_cast<double>(now - r.last_beat_ns) / 1.0e6;
    w.begin_object();
    w.key("slot").value(r.slot);
    w.key("label").value(r.label);
    w.key("started").value(r.last_beat_ns != 0);
    w.key("age_ms").value(age_ms);
    w.key("progress").value(static_cast<std::int64_t>(r.progress));
    w.key("beats").value(static_cast<std::int64_t>(r.beats));
    w.key("busy").value(r.last_beat_ns != 0 && age_ms < kBusyThresholdMs);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

ObsServer::ObsServer(Options opts)
    : server_(opts.port, opts.handler_threads) {
  server_.route("/metrics", [this](const HttpRequest&, HttpResponse& res) {
    handle_metrics(res);
  });
  server_.route("/healthz", [this](const HttpRequest&, HttpResponse& res) {
    handle_healthz(res);
  });
  server_.route("/status", [this](const HttpRequest&, HttpResponse& res) {
    handle_status(res);
  });
  server_.route("/debug/profile",
                [this](const HttpRequest& req, HttpResponse& res) {
                  handle_debug_profile(req, res);
                });
  server_.route("/buildinfo", [](const HttpRequest&, HttpResponse& res) {
    std::ostringstream os;
    write_buildinfo_json(os);
    res.content_type = kJsonContentType;
    res.body = os.str();
  });
  server_.route("/", [this](const HttpRequest&, HttpResponse& res) {
    res.body =
        "tsmo operational plane\n"
        "  /metrics    Prometheus exposition of the telemetry registry\n"
        "  /healthz    liveness + stall watchdog verdicts\n"
        "  /status     live Pareto front and per-worker progress\n"
        "  /buildinfo  git sha, compiler, flags\n"
        "  /debug/profile?seconds=N&format=folded|speedscope  CPU profile "
        "window\n";
    if (jobs_ != nullptr) {
      res.body +=
          "  /jobs       POST submit, GET list; /jobs/<id> status, "
          "/jobs/<id>/result, /jobs/<id>/trace, /jobs/<id>/profile, "
          "/jobs/<id>/introspect, DELETE cancel\n";
    }
  });
}

void ObsServer::attach_jobs(JobManager* jobs) {
  jobs_ = jobs;
  if (jobs_ != nullptr) jobs_->install_routes(server_);
}

bool ObsServer::start() {
  start_ns_ = now_ns();
  const bool ok = server_.start();
  if (ok && FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kServeStart, nullptr, 0,
                                      port());
  }
  return ok;
}

void ObsServer::stop() {
  if (!server_.running()) return;
  const int p = port();
  server_.stop();
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kServeStop, nullptr, 0, p);
  }
}

void ObsServer::handle_debug_profile(const HttpRequest& req,
                                     HttpResponse& res) {
  if (!prof::enabled()) {
    res.status = 409;
    res.content_type = kJsonContentType;
    res.body =
        "{\"error\":\"profiler disabled\",\"hint\":\"start a run with "
        "--profile-hz N (or params.profile_hz) to arm the sampler\"}\n";
    return;
  }
  int seconds = 2;
  const std::string s = query_param(req.query, "seconds");
  if (!s.empty()) {
    seconds = std::atoi(s.c_str());
    seconds = std::clamp(seconds, 0, 30);
  }
  const std::string format = query_param(req.query, "format");
  // Window: remember the ring heads, sleep, then collect only what the
  // sampler appended in between.  seconds=0 dumps everything retained.
  if (seconds == 0) {
    const std::vector<prof::Sample> samples = prof::collect();
    if (format == "speedscope") {
      std::ostringstream os;
      prof::write_speedscope(os, samples, "tsmo process profile");
      res.content_type = kJsonContentType;
      res.body = os.str();
    } else {
      res.body = prof::fold(samples);
    }
    return;
  }
  const prof::Cursor cur = prof::cursor();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const std::vector<prof::Sample> samples = prof::collect_since(cur);
  if (format == "speedscope") {
    std::ostringstream os;
    prof::write_speedscope(os, samples, "tsmo process profile");
    res.content_type = kJsonContentType;
    res.body = os.str();
  } else {
    res.body = prof::fold(samples);
  }
}

void ObsServer::handle_metrics(HttpResponse& res) {
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
#if TSMO_TELEMETRY_ENABLED
  // Metrics-only snapshot: the span rings are plain records and may be
  // mid-write on worker threads during a live scrape.
  write_prometheus(
      os, telemetry::Registry::instance().snapshot(/*include_spans=*/false));
#endif
  std::string body = os.str();
  append_counter(body, "tsmo_obs_scrapes_total",
                 "Scrapes of /metrics answered by this process.",
                 scrapes_.load(std::memory_order_relaxed));
  append_counter(body, "tsmo_obs_flight_events_total",
                 "Events recorded by the flight recorder ring.",
                 FlightRecorder::instance().recorded());
  append_http_red(body, server_.route_stats());
  if (jobs_ != nullptr) {
    const JobManager::Stats js = jobs_->stats();
    append_counter(body, "tsmo_jobs_submitted_total",
                   "POST /jobs submissions that reached admission.",
                   js.submitted);
    append_counter(body, "tsmo_jobs_accepted_total",
                   "Jobs admitted into the bounded queue.", js.accepted);
    append_counter(body, "tsmo_jobs_rejected_total",
                   "Jobs refused with 429 by admission control.",
                   js.rejected);
    append_counter(body, "tsmo_jobs_done_total",
                   "Jobs that finished successfully.", js.done);
    append_counter(body, "tsmo_jobs_failed_total", "Jobs that failed.",
                   js.failed);
    append_counter(body, "tsmo_jobs_cancelled_total",
                   "Jobs cancelled while queued or running.", js.cancelled);
    append_gauge(body, "tsmo_jobs_queue_depth",
                 "Jobs waiting in the admission queue.",
                 static_cast<double>(js.queue_depth));
    append_gauge(body, "tsmo_jobs_running",
                 "Jobs currently executing on the pool.",
                 static_cast<double>(js.running));
  }
  // Standard process gauges (satellite: node-exporter-style basics so a
  // bare scrape config gets memory/CPU without a sidecar).
  const ProcessStats ps = read_process_stats();
  append_gauge(body, "tsmo_process_resident_memory_bytes",
               "Resident set size from /proc/self/statm (0 off-Linux).",
               ps.resident_memory_bytes);
  append_gauge(body, "tsmo_process_cpu_seconds_total",
               "Process utime+stime from /proc/self/stat (0 off-Linux).",
               ps.cpu_seconds_total);
  append_gauge(body, "tsmo_process_open_fds",
               "Open file descriptors from /proc/self/fd (0 off-Linux).",
               ps.open_fds);
  append_gauge(body, "tsmo_process_uptime_seconds",
               "Process age from /proc/self/stat starttime (0 off-Linux).",
               ps.uptime_seconds);
  {
    const prof::Stats pstats = prof::stats();
    append_gauge(body, "tsmo_profiler_enabled",
                 "1 while the sampling profiler is armed.",
                 pstats.enabled ? 1.0 : 0.0);
    append_counter(body, "tsmo_profiler_samples_total",
                   "Stack samples captured across all thread rings.",
                   pstats.samples_captured);
    append_counter(body, "tsmo_profiler_ring_drops_total",
                   "Samples rotated out of a full per-thread ring.",
                   pstats.ring_drops);
  }
  {
    int hubs = 0;
    const IntrospectStats agg = IntrospectRegistry::instance().aggregate(&hubs);
    append_gauge(body, "tsmo_search_hubs",
                 "Live introspection hubs (one per active run/job).",
                 static_cast<double>(hubs));
    if (hubs > 0) {
      append_counter(body, "tsmo_search_steps_total",
                     "Tabu-search steps across all live searchers.",
                     agg.steps);
      append_counter(body, "tsmo_search_proposals_total",
                     "Candidate moves generated across all live searchers.",
                     agg.total_proposed());
      append_counter(body, "tsmo_search_accepted_total",
                     "Candidate moves selected as the step.",
                     agg.total_accepted());
      append_counter(body, "tsmo_search_improving_total",
                     "Selected moves that entered the Pareto archive.",
                     agg.total_improving());
      append_counter(body, "tsmo_search_restarts_total",
                     "Diversification restarts across all live searchers.",
                     agg.restarts);
      append_counter(body, "tsmo_search_tabu_hits_total",
                     "Candidates rejected by the tabu list.", agg.tabu_hits);
      append_counter(body, "tsmo_search_tabu_checked_total",
                     "Candidates tested against the tabu list.",
                     agg.tabu_checked);
      append_counter(body, "tsmo_search_archive_inserts_total",
                     "Archive insertions across all live searchers.",
                     agg.archive_inserts);
      append_counter(body, "tsmo_search_archive_evictions_total",
                     "Crowding evictions across all live searchers.",
                     agg.archive_evictions);
      append_gauge(body, "tsmo_search_tabu_occupancy",
                   "Summed tabu-list occupancy across live searchers.",
                   static_cast<double>(agg.tabu_occupancy_now));
      append_gauge(body, "tsmo_search_archive_size",
                   "Summed archive size across live searchers.",
                   static_cast<double>(agg.archive_size_now));
    }
  }
  if (const ConvergenceRecorder* rec =
          recorder_.load(std::memory_order_acquire)) {
    const ConvergenceRecorder::LiveStatus live = rec->live_status();
    append_gauge(body, "tsmo_pareto_hypervolume",
                 "Anytime hypervolume of the global non-dominated set.",
                 live.hv_global);
    append_gauge(body, "tsmo_pareto_front_size",
                 "Points in the global non-dominated set.",
                 static_cast<double>(live.front.size()));
    append_gauge(body, "tsmo_workers_stalled",
                 "Heartbeat slots currently flagged by the stall watchdog.",
                 static_cast<double>(rec->stalled_count()));
    append_gauge(body, "tsmo_iterations_progress",
                 "Summed per-slot progress counters (searcher iterations).",
                 static_cast<double>(rec->board().total_progress()));
  }
  res.content_type = kMetricsContentType;
  res.body = std::move(body);
}

void ObsServer::handle_healthz(HttpResponse& res) {
  const ConvergenceRecorder* rec = recorder_.load(std::memory_order_acquire);
  const std::uint64_t now = now_ns();
  const int stalled = rec ? rec->stalled_count() : 0;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("status").value(stalled > 0 ? "stalled" : "ok");
  w.key("uptime_seconds")
      .value(static_cast<double>(now - start_ns_) / 1.0e9);
  w.key("stalled_now").value(stalled);
  w.key("stalls_flagged")
      .value(static_cast<std::int64_t>(rec ? rec->stalls_flagged() : 0));
  w.key("flight_events")
      .value(static_cast<std::int64_t>(FlightRecorder::instance().recorded()));
  {
    const prof::Stats pstats = prof::stats();
    w.key("profiler").begin_object();
    w.key("supported").value(prof::supported());
    w.key("enabled").value(pstats.enabled);
    w.key("rate_hz").value(pstats.rate_hz);
    w.key("samples_captured")
        .value(static_cast<std::int64_t>(pstats.samples_captured));
    w.key("ring_drops").value(static_cast<std::int64_t>(pstats.ring_drops));
    w.key("frames_truncated")
        .value(static_cast<std::int64_t>(pstats.frames_truncated));
    w.key("threads_registered").value(pstats.threads_registered);
    w.end_object();
  }
  if (jobs_ != nullptr) {
    const JobManager::Stats js = jobs_->stats();
    w.key("jobs").begin_object();
    w.key("queue_depth").value(static_cast<std::int64_t>(js.queue_depth));
    w.key("queue_capacity")
        .value(static_cast<std::int64_t>(js.queue_capacity));
    w.key("running").value(static_cast<std::int64_t>(js.running));
    w.key("executors").value(js.executors);
    w.key("accepted").value(static_cast<std::int64_t>(js.accepted));
    w.key("done").value(static_cast<std::int64_t>(js.done));
    w.key("failed").value(static_cast<std::int64_t>(js.failed));
    w.key("cancelled").value(static_cast<std::int64_t>(js.cancelled));
    w.key("rejected").value(static_cast<std::int64_t>(js.rejected));
    w.end_object();
  }
  w.key("heartbeats");
  if (rec) {
    write_heartbeats(w, rec->board(), now);
  } else {
    w.begin_array().end_array();
  }
  w.end_object();
  os << '\n';
  res.content_type = kJsonContentType;
  res.body = os.str();
}

void ObsServer::handle_status(HttpResponse& res) {
  const ConvergenceRecorder* rec = recorder_.load(std::memory_order_acquire);
  const std::uint64_t now = now_ns();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (!rec) {
    w.key("engine").value("idle");
    w.key("attached").value(false);
    w.end_object();
  } else {
    const ConvergenceRecorder::LiveStatus live = rec->live_status();
    w.key("engine").value(live.engine.empty() ? "pending" : live.engine);
    w.key("attached").value(true);
    w.key("hv_global").value(live.hv_global);
    w.key("front_size")
        .value(static_cast<std::int64_t>(live.front.size()));
    w.key("front").begin_array();
    for (const Objectives& o : live.front) {
      w.begin_object();
      w.key("distance").value(o.distance);
      w.key("vehicles").value(o.vehicles);
      w.key("tardiness").value(o.tardiness);
      w.end_object();
    }
    w.end_array();
    w.key("samples").value(static_cast<std::int64_t>(live.samples));
    w.key("insertions").value(static_cast<std::int64_t>(live.insertions));
    w.key("stalls").value(static_cast<std::int64_t>(live.stalls));
    w.key("iterations")
        .value(static_cast<std::int64_t>(rec->board().total_progress()));
    const double run_s =
        live.engine_start_ns == 0 || now <= live.engine_start_ns
            ? 0.0
            : static_cast<double>(now - live.engine_start_ns) / 1.0e9;
    w.key("run_seconds").value(run_s);
    w.key("workers");
    write_heartbeats(w, rec->board(), now);
    w.end_object();
  }
  os << '\n';
  res.content_type = kJsonContentType;
  res.body = os.str();
}

}  // namespace tsmo::obs
