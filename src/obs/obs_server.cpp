#include "obs/obs_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "moo/introspect.hpp"
#include "obs/buildinfo.hpp"
#include "obs/dashboard_html.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/job_manager.hpp"
#include "util/json.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo::obs {

namespace {

constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJsonContentType = "application/json; charset=utf-8";

/// A heartbeat younger than this counts as "busy" in /status.
constexpr double kBusyThresholdMs = 1000.0;

void append_gauge(std::string& out, const char* name, const char* help,
                  double value) {
  std::ostringstream v;
  v.precision(17);
  v << value;
  out += std::string("# HELP ") + name + " " + help + "\n";
  out += std::string("# TYPE ") + name + " gauge\n";
  out += std::string(name) + " " + v.str() + "\n";
}

void append_counter(std::string& out, const char* name, const char* help,
                    std::uint64_t value) {
  out += std::string("# HELP ") + name + " " + help + "\n";
  out += std::string("# TYPE ") + name + " counter\n";
  out += std::string(name) + " " + std::to_string(value) + "\n";
}

/// RED metrics per HTTP route with exemplars (DESIGN.md §13):
/// tsmo_http_requests_total{route,method,code} counters plus one
/// tsmo_http_request_duration_seconds histogram per route/method whose
/// highest non-empty bucket carries an OpenMetrics-style exemplar
/// (`# {trace_id="0x…",job="job-N"} <seconds>`) pointing at the slowest
/// request seen — the jump-off from a latency alert into /jobs/<id>/trace.
void append_http_red(std::string& out, const std::vector<RouteStat>& stats) {
  if (stats.empty()) return;
  auto fmt_double = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  out +=
      "# HELP tsmo_http_requests_total HTTP requests served, by registered "
      "route pattern, method and status code.\n"
      "# TYPE tsmo_http_requests_total counter\n";
  for (const RouteStat& s : stats) {
    for (const auto& [code, n] : s.by_status) {
      out += "tsmo_http_requests_total{route=\"" +
             escape_label_value(s.route) + "\",method=\"" +
             escape_label_value(s.method) + "\",code=\"" +
             std::to_string(code) + "\"} " + std::to_string(n) + "\n";
    }
  }
  out +=
      "# HELP tsmo_http_request_duration_seconds HTTP request latency by "
      "route and method; slowest buckets carry trace exemplars.\n"
      "# TYPE tsmo_http_request_duration_seconds histogram\n";
  for (const RouteStat& s : stats) {
    const std::string labels = "route=\"" + escape_label_value(s.route) +
                               "\",method=\"" + escape_label_value(s.method) +
                               "\"";
    int last = static_cast<int>(s.buckets.size()) - 1;
    while (last > 0 && s.buckets[last] == 0) --last;
    std::uint64_t cum = 0;
    for (int b = 0; b <= last; ++b) {
      cum += s.buckets[b];
      const double le_seconds =
          b == 0 ? 0.0 : std::ldexp(1.0, b) * 1e-9;
      out += "tsmo_http_request_duration_seconds_bucket{" + labels +
             ",le=\"" + fmt_double(le_seconds) + "\"} " +
             std::to_string(cum);
      if (b == last && s.exemplar_trace != 0) {
        char ex[96];
        std::snprintf(ex, sizeof(ex), " # {trace_id=\"0x%016llx\"",
                      static_cast<unsigned long long>(s.exemplar_trace));
        out += ex;
        if (!s.exemplar_label.empty()) {
          out += ",job=\"" + escape_label_value(s.exemplar_label) + "\"";
        }
        out += "} " + fmt_double(static_cast<double>(s.max_ns) * 1e-9);
      }
      out += "\n";
    }
    out += "tsmo_http_request_duration_seconds_bucket{" + labels +
           ",le=\"+Inf\"} " + std::to_string(s.count) + "\n";
    out += "tsmo_http_request_duration_seconds_sum{" + labels + "} " +
           fmt_double(static_cast<double>(s.sum_ns) * 1e-9) + "\n";
    out += "tsmo_http_request_duration_seconds_count{" + labels + "} " +
           std::to_string(s.count) + "\n";
  }
}

/// Value of `key` in an application/x-www-form-urlencoded query string;
/// empty when absent.  No percent-decoding — profile params are plain
/// integers/identifiers.
std::string query_param(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

/// Wall clock in unix milliseconds (the tsdb's time axis).
std::int64_t wall_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// p99 of a RouteStat's log2 latency buckets in milliseconds, via the
/// same interpolating bucket walk the telemetry histograms use.
double route_p99_ms(const RouteStat& s) {
  telemetry::HistogramSnap h;
  h.buckets = s.buckets;
  h.count = s.count;
  h.sum_ns = s.sum_ns;
  return h.quantile_ns(0.99) / 1.0e6;
}

void write_heartbeats(JsonWriter& w, const HeartbeatBoard& board,
                      std::uint64_t now) {
  w.begin_array();
  for (const HeartbeatBoard::Reading& r : board.read_all()) {
    const double age_ms =
        r.last_beat_ns == 0 || now <= r.last_beat_ns
            ? 0.0
            : static_cast<double>(now - r.last_beat_ns) / 1.0e6;
    w.begin_object();
    w.key("slot").value(r.slot);
    w.key("label").value(r.label);
    w.key("started").value(r.last_beat_ns != 0);
    w.key("age_ms").value(age_ms);
    w.key("progress").value(static_cast<std::int64_t>(r.progress));
    w.key("beats").value(static_cast<std::int64_t>(r.beats));
    w.key("busy").value(r.last_beat_ns != 0 && age_ms < kBusyThresholdMs);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

ObsServer::ObsServer(Options opts)
    : server_(opts.port, opts.handler_threads) {
  server_.route("/metrics", [this](const HttpRequest&, HttpResponse& res) {
    handle_metrics(res);
  });
  server_.route("/healthz", [this](const HttpRequest&, HttpResponse& res) {
    handle_healthz(res);
  });
  server_.route("/status", [this](const HttpRequest&, HttpResponse& res) {
    handle_status(res);
  });
  server_.route("/debug/profile",
                [this](const HttpRequest& req, HttpResponse& res) {
                  handle_debug_profile(req, res);
                });
  server_.route("/buildinfo", [](const HttpRequest&, HttpResponse& res) {
    std::ostringstream os;
    write_buildinfo_json(os);
    res.content_type = kJsonContentType;
    res.body = os.str();
  });
  server_.route("/api/timeseries",
                [this](const HttpRequest& req, HttpResponse& res) {
                  handle_timeseries(req, res);
                });
  server_.route("/dashboard", [this](const HttpRequest&, HttpResponse& res) {
    handle_dashboard(res);
  });
  server_.route("/", [this](const HttpRequest&, HttpResponse& res) {
    res.body =
        "tsmo operational plane\n"
        "  /metrics    Prometheus exposition of the telemetry registry\n"
        "  /healthz    liveness + stall watchdog + SLO verdicts\n"
        "  /status     live Pareto front and per-worker progress\n"
        "  /buildinfo  git sha, compiler, flags, start time\n"
        "  /dashboard  live embedded dashboard (self-refreshing HTML)\n"
        "  /api/timeseries?series=<glob>&window=<s>&step=<s>  history "
        "JSON\n"
        "  /debug/profile?seconds=N&format=folded|speedscope  CPU profile "
        "window\n";
    if (jobs_ != nullptr) {
      res.body +=
          "  /jobs       POST submit, GET list; /jobs/<id> status, "
          "/jobs/<id>/result, /jobs/<id>/trace, /jobs/<id>/profile, "
          "/jobs/<id>/introspect, DELETE cancel\n";
    }
  });
}

void ObsServer::attach_jobs(JobManager* jobs) {
  jobs_ = jobs;
  if (jobs_ != nullptr) jobs_->install_routes(server_);
}

void ObsServer::enable_history(HistoryOptions opts) {
  db_ = std::make_unique<tsdb::Tsdb>(opts.tsdb);
  sampler_wanted_ = opts.sampler;
  if (opts.slo) {
    slo_ = std::make_unique<SloEngine>(
        opts.rules.empty() ? default_slo_rules() : std::move(opts.rules));
  } else {
    slo_.reset();
  }
}

bool ObsServer::start() {
  start_ns_ = now_ns();
  start_unix_ms_ = wall_now_ms();
  const bool ok = server_.start();
  if (ok && FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kServeStart, nullptr, 0,
                                      port());
  }
  if (ok && db_ != nullptr && sampler_wanted_ && !sampler_.joinable()) {
    sampler_stop_ = false;
    sampler_ = std::thread([this] { sampler_loop(); });
  }
  return ok;
}

void ObsServer::stop() {
  if (sampler_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sampler_mu_);
      sampler_stop_ = true;
    }
    sampler_cv_.notify_all();
    sampler_.join();
  }
  if (!server_.running()) return;
  const int p = port();
  server_.stop();
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kServeStop, nullptr, 0, p);
  }
}

void ObsServer::sampler_loop() {
  const auto period = std::chrono::duration<double>(
      db_->options().sample_period_s);
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    lock.unlock();
    sample_now(wall_now_ms());
    lock.lock();
    sampler_cv_.wait_for(lock, period, [this] { return sampler_stop_; });
  }
}

void ObsServer::sample_now(std::int64_t now_ms) {
  if (db_ == nullptr) return;
  tsdb::Tsdb& db = *db_;
  using tsdb::Kind;
  db.begin_tick(now_ms);
#if TSMO_TELEMETRY_ENABLED
  if (telemetry::enabled()) {
    // Registry counters/gauges verbatim; histograms as sampled quantile
    // gauges (the dashboard's latency curves come from these and the
    // per-route RED stats below).
    const telemetry::Snapshot snap =
        telemetry::Registry::instance().snapshot(/*include_spans=*/false);
    for (const auto& c : snap.counters) {
      db.set("metric." + c.name, Kind::kCounter,
             static_cast<double>(c.value));
    }
    for (const auto& g : snap.gauges) {
      db.set("metric." + g.name, Kind::kGauge, static_cast<double>(g.value));
    }
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      db.set("metric." + h.name + ".p50_ms", Kind::kGauge,
             h.quantile_ns(0.5) / 1.0e6);
      db.set("metric." + h.name + ".p99_ms", Kind::kGauge,
             h.quantile_ns(0.99) / 1.0e6);
    }
  }
#endif
  std::uint64_t stalls = 0;
  if (jobs_ != nullptr) {
    const JobManager::Stats js = jobs_->stats();
    db.set("jobs.submitted", Kind::kCounter,
           static_cast<double>(js.submitted));
    db.set("jobs.accepted", Kind::kCounter, static_cast<double>(js.accepted));
    db.set("jobs.rejected", Kind::kCounter, static_cast<double>(js.rejected));
    db.set("jobs.done", Kind::kCounter, static_cast<double>(js.done));
    db.set("jobs.failed", Kind::kCounter, static_cast<double>(js.failed));
    db.set("jobs.cancelled", Kind::kCounter,
           static_cast<double>(js.cancelled));
    db.set("jobs.finished", Kind::kCounter,
           static_cast<double>(js.done + js.failed + js.cancelled));
    db.set("jobs.first_front_total", Kind::kCounter,
           static_cast<double>(js.first_front_total));
    db.set("jobs.first_front_slow", Kind::kCounter,
           static_cast<double>(js.first_front_slow));
    db.set("jobs.queue_depth", Kind::kGauge,
           static_cast<double>(js.queue_depth));
    db.set("jobs.running", Kind::kGauge, static_cast<double>(js.running));
    db.set("jobs.executors", Kind::kGauge, static_cast<double>(js.executors));
    db.set("jobs.utilization", Kind::kGauge,
           js.executors > 0 ? static_cast<double>(js.running) /
                                  static_cast<double>(js.executors)
                            : 0.0);
    stalls += js.stalls_flagged;
    for (const JobManager::LiveFront& lf : jobs_->live_fronts()) {
      db.set("job." + lf.name + ".hv", Kind::kGauge, lf.hv);
      db.set("job." + lf.name + ".front_size", Kind::kGauge,
             static_cast<double>(lf.front_size));
    }
  }
  if (const ConvergenceRecorder* rec =
          recorder_.load(std::memory_order_acquire)) {
    const ConvergenceRecorder::LiveStatus live = rec->live_status();
    db.set("search.hv", Kind::kGauge, live.hv_global);
    db.set("search.front_size", Kind::kGauge,
           static_cast<double>(live.front.size()));
    db.set("search.insertions", Kind::kCounter,
           static_cast<double>(live.insertions));
    db.set("search.progress", Kind::kCounter,
           static_cast<double>(rec->board().total_progress()));
    stalls += static_cast<std::uint64_t>(rec->stalls_flagged());
  }
  db.set("search.stalls_flagged", Kind::kCounter,
         static_cast<double>(stalls));
  for (const RouteStat& s : server_.route_stats()) {
    if (s.count == 0) continue;
    const std::string key = s.method == "GET" ? s.route
                                              : s.method + " " + s.route;
    db.set("http.p99_ms." + key, Kind::kGauge, route_p99_ms(s));
    db.set("http.requests." + key, Kind::kCounter,
           static_cast<double>(s.count));
  }
  {
    const ProcessStats ps = read_process_stats();
    db.set("proc.rss_bytes", Kind::kGauge, ps.resident_memory_bytes);
    db.set("proc.cpu_seconds", Kind::kCounter, ps.cpu_seconds_total);
    db.set("proc.open_fds", Kind::kGauge, ps.open_fds);
  }
  db.commit_tick();
  if (slo_ != nullptr) slo_->evaluate(db, now_ms);
}

void ObsServer::handle_timeseries(const HttpRequest& req, HttpResponse& res) {
  if (db_ == nullptr) {
    res.status = 404;
    res.content_type = kJsonContentType;
    res.body =
        "{\"error\":\"history disabled\",\"hint\":\"arm it with "
        "enable_history() / --tsdb\"}\n";
    return;
  }
  const tsdb::TsdbOptions& opts = db_->options();
  double window_s = 300.0;
  double step_s = 0.0;
  std::string glob = query_param(req.query, "series");
  if (glob.empty()) glob = "*";
  const std::string w = query_param(req.query, "window");
  if (!w.empty()) window_s = std::atof(w.c_str());
  window_s = std::clamp(window_s, opts.sample_period_s,
                        opts.agg_retention_s());
  const std::string st = query_param(req.query, "step");
  if (!st.empty()) step_s = std::atof(st.c_str());
  if (step_s <= 0.0) step_s = std::max(window_s / 120.0, opts.sample_period_s);
  step_s = std::clamp(step_s, opts.sample_period_s, window_s);

  const std::int64_t now_ms = wall_now_ms();
  const std::vector<tsdb::TsSeries> series =
      db_->query(glob, window_s, step_s, now_ms);

  std::ostringstream os;
  JsonWriter w_json(os);
  w_json.begin_object();
  w_json.key("now_ms").value(now_ms);
  w_json.key("window_s").value(window_s);
  w_json.key("step_s").value(step_s);
  w_json.key("ticks").value(static_cast<std::int64_t>(db_->ticks()));
  w_json.key("series").begin_array();
  for (const tsdb::TsSeries& s : series) {
    w_json.begin_object();
    w_json.key("name").value(s.name);
    w_json.key("kind").value(tsdb::to_string(s.kind));
    w_json.key("points").begin_array();
    for (const tsdb::TsPoint& p : s.points) {
      w_json.begin_array();
      w_json.value(p.t_ms);
      w_json.value(p.min);
      w_json.value(p.mean);
      w_json.value(p.max);
      w_json.end_array();
    }
    w_json.end_array();
    w_json.end_object();
  }
  w_json.end_array();
  w_json.end_object();
  os << '\n';
  res.content_type = kJsonContentType;
  res.body = os.str();
}

void ObsServer::handle_dashboard(HttpResponse& res) {
  res.content_type = "text/html; charset=utf-8";
  // The page is a build-time constant: cacheable, unlike the data it pulls.
  res.cache_control = "max-age=60";
  res.body = kDashboardHtml;
}

void ObsServer::handle_debug_profile(const HttpRequest& req,
                                     HttpResponse& res) {
  if (!prof::enabled()) {
    res.status = 409;
    res.content_type = kJsonContentType;
    res.body =
        "{\"error\":\"profiler disabled\",\"hint\":\"start a run with "
        "--profile-hz N (or params.profile_hz) to arm the sampler\"}\n";
    return;
  }
  int seconds = 2;
  const std::string s = query_param(req.query, "seconds");
  if (!s.empty()) {
    seconds = std::atoi(s.c_str());
    seconds = std::clamp(seconds, 0, 30);
  }
  const std::string format = query_param(req.query, "format");
  // Window: remember the ring heads, sleep, then collect only what the
  // sampler appended in between.  seconds=0 dumps everything retained.
  if (seconds == 0) {
    const std::vector<prof::Sample> samples = prof::collect();
    if (format == "speedscope") {
      std::ostringstream os;
      prof::write_speedscope(os, samples, "tsmo process profile");
      res.content_type = kJsonContentType;
      res.body = os.str();
    } else {
      res.body = prof::fold(samples);
    }
    return;
  }
  const prof::Cursor cur = prof::cursor();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const std::vector<prof::Sample> samples = prof::collect_since(cur);
  if (format == "speedscope") {
    std::ostringstream os;
    prof::write_speedscope(os, samples, "tsmo process profile");
    res.content_type = kJsonContentType;
    res.body = os.str();
  } else {
    res.body = prof::fold(samples);
  }
}

void ObsServer::handle_metrics(HttpResponse& res) {
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
#if TSMO_TELEMETRY_ENABLED
  // Metrics-only snapshot: the span rings are plain records and may be
  // mid-write on worker threads during a live scrape.
  write_prometheus(
      os, telemetry::Registry::instance().snapshot(/*include_spans=*/false));
#endif
  std::string body = os.str();
  append_counter(body, "tsmo_obs_scrapes_total",
                 "Scrapes of /metrics answered by this process.",
                 scrapes_.load(std::memory_order_relaxed));
  append_counter(body, "tsmo_obs_flight_events_total",
                 "Events recorded by the flight recorder ring.",
                 FlightRecorder::instance().recorded());
  append_http_red(body, server_.route_stats());
  if (jobs_ != nullptr) {
    const JobManager::Stats js = jobs_->stats();
    append_counter(body, "tsmo_jobs_submitted_total",
                   "POST /jobs submissions that reached admission.",
                   js.submitted);
    append_counter(body, "tsmo_jobs_accepted_total",
                   "Jobs admitted into the bounded queue.", js.accepted);
    append_counter(body, "tsmo_jobs_rejected_total",
                   "Jobs refused with 429 by admission control.",
                   js.rejected);
    append_counter(body, "tsmo_jobs_done_total",
                   "Jobs that finished successfully.", js.done);
    append_counter(body, "tsmo_jobs_failed_total", "Jobs that failed.",
                   js.failed);
    append_counter(body, "tsmo_jobs_cancelled_total",
                   "Jobs cancelled while queued or running.", js.cancelled);
    append_gauge(body, "tsmo_jobs_queue_depth",
                 "Jobs waiting in the admission queue.",
                 static_cast<double>(js.queue_depth));
    append_gauge(body, "tsmo_jobs_running",
                 "Jobs currently executing on the pool.",
                 static_cast<double>(js.running));
    append_counter(body, "tsmo_jobs_first_front_total",
                   "Successful jobs classified against the submit-to-"
                   "first-front latency target.",
                   js.first_front_total);
    append_counter(body, "tsmo_jobs_first_front_slow_total",
                   "Successful jobs whose submit-to-first-front latency "
                   "missed the target.",
                   js.first_front_slow);
  }
  if (db_ != nullptr) {
    append_gauge(body, "tsmo_tsdb_series",
                 "Series registered in the in-process time-series store.",
                 static_cast<double>(db_->series_count()));
    append_counter(body, "tsmo_tsdb_ticks_total",
                   "Sampler ticks committed into the time-series store.",
                   db_->ticks());
    append_counter(body, "tsmo_tsdb_dropped_series_total",
                   "Series rejected by the store's max-series bound.",
                   db_->dropped_series());
  }
  if (slo_ != nullptr) {
    const std::vector<SloVerdict> verdicts = slo_->verdicts();
    body +=
        "# HELP tsmo_slo_state Burn-rate verdict per SLO rule "
        "(0 ok, 1 warn, 2 breach).\n"
        "# TYPE tsmo_slo_state gauge\n";
    for (const SloVerdict& v : verdicts) {
      body += "tsmo_slo_state{rule=\"" + escape_label_value(v.name) + "\"} " +
              std::to_string(static_cast<int>(v.state)) + "\n";
    }
    auto burn_family = [&](const char* name, const char* help,
                           double SloVerdict::* field) {
      body += std::string("# HELP ") + name + " " + help + "\n";
      body += std::string("# TYPE ") + name + " gauge\n";
      for (const SloVerdict& v : verdicts) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v.*field);
        body += std::string(name) + "{rule=\"" + escape_label_value(v.name) +
                "\"} " + buf + "\n";
      }
    };
    burn_family("tsmo_slo_fast_burn",
                "Error-budget burn rate over the fast window.",
                &SloVerdict::fast_burn);
    burn_family("tsmo_slo_slow_burn",
                "Error-budget burn rate over the slow window.",
                &SloVerdict::slow_burn);
    body +=
        "# HELP tsmo_slo_transitions_total State transitions per SLO rule "
        "since start.\n"
        "# TYPE tsmo_slo_transitions_total counter\n";
    for (const SloVerdict& v : verdicts) {
      body += "tsmo_slo_transitions_total{rule=\"" +
              escape_label_value(v.name) + "\"} " +
              std::to_string(v.transitions) + "\n";
    }
    append_gauge(body, "tsmo_slo_breached",
                 "1 while any SLO rule is in the breach state.",
                 slo_->overall() == SloState::kBreach ? 1.0 : 0.0);
  }
  // Standard process gauges (satellite: node-exporter-style basics so a
  // bare scrape config gets memory/CPU without a sidecar).
  const ProcessStats ps = read_process_stats();
  append_gauge(body, "tsmo_process_resident_memory_bytes",
               "Resident set size from /proc/self/statm (0 off-Linux).",
               ps.resident_memory_bytes);
  append_gauge(body, "tsmo_process_cpu_seconds_total",
               "Process utime+stime from /proc/self/stat (0 off-Linux).",
               ps.cpu_seconds_total);
  append_gauge(body, "tsmo_process_open_fds",
               "Open file descriptors from /proc/self/fd (0 off-Linux).",
               ps.open_fds);
  append_gauge(body, "tsmo_process_uptime_seconds",
               "Process age from /proc/self/stat starttime (0 off-Linux).",
               ps.uptime_seconds);
  {
    const prof::Stats pstats = prof::stats();
    append_gauge(body, "tsmo_profiler_enabled",
                 "1 while the sampling profiler is armed.",
                 pstats.enabled ? 1.0 : 0.0);
    append_counter(body, "tsmo_profiler_samples_total",
                   "Stack samples captured across all thread rings.",
                   pstats.samples_captured);
    append_counter(body, "tsmo_profiler_ring_drops_total",
                   "Samples rotated out of a full per-thread ring.",
                   pstats.ring_drops);
  }
  {
    int hubs = 0;
    const IntrospectStats agg = IntrospectRegistry::instance().aggregate(&hubs);
    append_gauge(body, "tsmo_search_hubs",
                 "Live introspection hubs (one per active run/job).",
                 static_cast<double>(hubs));
    if (hubs > 0) {
      append_counter(body, "tsmo_search_steps_total",
                     "Tabu-search steps across all live searchers.",
                     agg.steps);
      append_counter(body, "tsmo_search_proposals_total",
                     "Candidate moves generated across all live searchers.",
                     agg.total_proposed());
      append_counter(body, "tsmo_search_accepted_total",
                     "Candidate moves selected as the step.",
                     agg.total_accepted());
      append_counter(body, "tsmo_search_improving_total",
                     "Selected moves that entered the Pareto archive.",
                     agg.total_improving());
      append_counter(body, "tsmo_search_restarts_total",
                     "Diversification restarts across all live searchers.",
                     agg.restarts);
      append_counter(body, "tsmo_search_tabu_hits_total",
                     "Candidates rejected by the tabu list.", agg.tabu_hits);
      append_counter(body, "tsmo_search_tabu_checked_total",
                     "Candidates tested against the tabu list.",
                     agg.tabu_checked);
      append_counter(body, "tsmo_search_archive_inserts_total",
                     "Archive insertions across all live searchers.",
                     agg.archive_inserts);
      append_counter(body, "tsmo_search_archive_evictions_total",
                     "Crowding evictions across all live searchers.",
                     agg.archive_evictions);
      append_gauge(body, "tsmo_search_tabu_occupancy",
                   "Summed tabu-list occupancy across live searchers.",
                   static_cast<double>(agg.tabu_occupancy_now));
      append_gauge(body, "tsmo_search_archive_size",
                   "Summed archive size across live searchers.",
                   static_cast<double>(agg.archive_size_now));
    }
  }
  if (const ConvergenceRecorder* rec =
          recorder_.load(std::memory_order_acquire)) {
    const ConvergenceRecorder::LiveStatus live = rec->live_status();
    append_gauge(body, "tsmo_pareto_hypervolume",
                 "Anytime hypervolume of the global non-dominated set.",
                 live.hv_global);
    append_gauge(body, "tsmo_pareto_front_size",
                 "Points in the global non-dominated set.",
                 static_cast<double>(live.front.size()));
    append_gauge(body, "tsmo_workers_stalled",
                 "Heartbeat slots currently flagged by the stall watchdog.",
                 static_cast<double>(rec->stalled_count()));
    append_gauge(body, "tsmo_iterations_progress",
                 "Summed per-slot progress counters (searcher iterations).",
                 static_cast<double>(rec->board().total_progress()));
  }
  res.content_type = kMetricsContentType;
  res.body = std::move(body);
}

void ObsServer::handle_healthz(HttpResponse& res) {
  const ConvergenceRecorder* rec = recorder_.load(std::memory_order_acquire);
  const std::uint64_t now = now_ns();
  const int stalled = rec ? rec->stalled_count() : 0;
  const SloState slo_state = slo_ ? slo_->overall() : SloState::kOk;
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  // Stalls outrank SLO state: a wedged worker is a liveness problem, a
  // burning error budget "only" a service-quality one.
  w.key("status").value(stalled > 0 ? "stalled"
                        : slo_state == SloState::kBreach ? "degraded"
                                                         : "ok");
  w.key("uptime_seconds")
      .value(static_cast<double>(now - start_ns_) / 1.0e9);
  w.key("uptime_s").value(process_uptime_s());
  w.key("start_time_unix_ms").value(process_start_unix_ms());
  w.key("build").begin_object();
  w.key("git_sha").value(build_info().git_sha);
  w.end_object();
  if (slo_ != nullptr) {
    w.key("slo").begin_object();
    w.key("state").value(to_string(slo_state));
    w.key("rules").begin_array();
    for (const SloVerdict& v : slo_->verdicts()) {
      w.begin_object();
      w.key("name").value(v.name);
      w.key("state").value(to_string(v.state));
      w.key("fast_burn").value(v.fast_burn);
      w.key("slow_burn").value(v.slow_burn);
      w.key("bad_fast").value(v.bad_fast);
      w.key("total_fast").value(v.total_fast);
      w.key("objective").value(v.objective);
      w.key("transitions").value(static_cast<std::int64_t>(v.transitions));
      w.key("since_ms").value(v.since_ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (db_ != nullptr) {
    w.key("tsdb").begin_object();
    w.key("ticks").value(static_cast<std::int64_t>(db_->ticks()));
    w.key("series").value(static_cast<std::int64_t>(db_->series_count()));
    w.key("sample_period_s").value(db_->options().sample_period_s);
    w.end_object();
  }
  w.key("stalled_now").value(stalled);
  w.key("stalls_flagged")
      .value(static_cast<std::int64_t>(rec ? rec->stalls_flagged() : 0));
  w.key("flight_events")
      .value(static_cast<std::int64_t>(FlightRecorder::instance().recorded()));
  {
    const prof::Stats pstats = prof::stats();
    w.key("profiler").begin_object();
    w.key("supported").value(prof::supported());
    w.key("enabled").value(pstats.enabled);
    w.key("rate_hz").value(pstats.rate_hz);
    w.key("samples_captured")
        .value(static_cast<std::int64_t>(pstats.samples_captured));
    w.key("ring_drops").value(static_cast<std::int64_t>(pstats.ring_drops));
    w.key("frames_truncated")
        .value(static_cast<std::int64_t>(pstats.frames_truncated));
    w.key("threads_registered").value(pstats.threads_registered);
    w.end_object();
  }
  if (jobs_ != nullptr) {
    const JobManager::Stats js = jobs_->stats();
    w.key("jobs").begin_object();
    w.key("queue_depth").value(static_cast<std::int64_t>(js.queue_depth));
    w.key("queue_capacity")
        .value(static_cast<std::int64_t>(js.queue_capacity));
    w.key("running").value(static_cast<std::int64_t>(js.running));
    w.key("executors").value(js.executors);
    w.key("accepted").value(static_cast<std::int64_t>(js.accepted));
    w.key("done").value(static_cast<std::int64_t>(js.done));
    w.key("failed").value(static_cast<std::int64_t>(js.failed));
    w.key("cancelled").value(static_cast<std::int64_t>(js.cancelled));
    w.key("rejected").value(static_cast<std::int64_t>(js.rejected));
    w.end_object();
  }
  w.key("heartbeats");
  if (rec) {
    write_heartbeats(w, rec->board(), now);
  } else {
    w.begin_array().end_array();
  }
  w.end_object();
  os << '\n';
  res.content_type = kJsonContentType;
  res.body = os.str();
}

void ObsServer::handle_status(HttpResponse& res) {
  const ConvergenceRecorder* rec = recorder_.load(std::memory_order_acquire);
  const std::uint64_t now = now_ns();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (!rec) {
    w.key("engine").value("idle");
    w.key("attached").value(false);
    w.end_object();
  } else {
    const ConvergenceRecorder::LiveStatus live = rec->live_status();
    w.key("engine").value(live.engine.empty() ? "pending" : live.engine);
    w.key("attached").value(true);
    w.key("hv_global").value(live.hv_global);
    w.key("front_size")
        .value(static_cast<std::int64_t>(live.front.size()));
    w.key("front").begin_array();
    for (const Objectives& o : live.front) {
      w.begin_object();
      w.key("distance").value(o.distance);
      w.key("vehicles").value(o.vehicles);
      w.key("tardiness").value(o.tardiness);
      w.end_object();
    }
    w.end_array();
    w.key("samples").value(static_cast<std::int64_t>(live.samples));
    w.key("insertions").value(static_cast<std::int64_t>(live.insertions));
    w.key("stalls").value(static_cast<std::int64_t>(live.stalls));
    w.key("iterations")
        .value(static_cast<std::int64_t>(rec->board().total_progress()));
    const double run_s =
        live.engine_start_ns == 0 || now <= live.engine_start_ns
            ? 0.0
            : static_cast<double>(now - live.engine_start_ns) / 1.0e9;
    w.key("run_seconds").value(run_s);
    w.key("workers");
    write_heartbeats(w, rec->board(), now);
    w.end_object();
  }
  os << '\n';
  res.content_type = kJsonContentType;
  res.body = os.str();
}

}  // namespace tsmo::obs
