#include "obs/buildinfo.hpp"

#include <chrono>

#include "util/json.hpp"

#ifndef TSMO_BUILD_GIT_SHA
#define TSMO_BUILD_GIT_SHA "unknown"
#endif
#ifndef TSMO_BUILD_COMPILER
#define TSMO_BUILD_COMPILER "unknown"
#endif
#ifndef TSMO_BUILD_FLAGS
#define TSMO_BUILD_FLAGS ""
#endif
#ifndef TSMO_BUILD_TYPE
#define TSMO_BUILD_TYPE "unknown"
#endif

namespace tsmo::obs {

namespace {
// Captured at image load so every surface reports the same restart time.
const std::chrono::steady_clock::time_point g_steady_start =
    std::chrono::steady_clock::now();
const std::int64_t g_start_unix_ms =
    std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::system_clock::now().time_since_epoch())
        .count();
}  // namespace

std::int64_t process_start_unix_ms() noexcept { return g_start_unix_ms; }

double process_uptime_s() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_steady_start)
      .count();
}

const BuildInfo& build_info() noexcept {
  static constexpr BuildInfo info{TSMO_BUILD_GIT_SHA, TSMO_BUILD_COMPILER,
                                  TSMO_BUILD_FLAGS, TSMO_BUILD_TYPE};
  return info;
}

void write_buildinfo_json(std::ostream& os) {
  const BuildInfo& info = build_info();
  JsonWriter w(os);
  w.begin_object();
  w.key("git_sha").value(info.git_sha);
  w.key("compiler").value(info.compiler);
  w.key("flags").value(info.flags);
  w.key("build_type").value(info.build_type);
  w.key("start_time_unix_ms").value(process_start_unix_ms());
  w.key("uptime_s").value(process_uptime_s());
  w.end_object();
  os << '\n';
}

}  // namespace tsmo::obs
