#include "obs/buildinfo.hpp"

#include "util/json.hpp"

#ifndef TSMO_BUILD_GIT_SHA
#define TSMO_BUILD_GIT_SHA "unknown"
#endif
#ifndef TSMO_BUILD_COMPILER
#define TSMO_BUILD_COMPILER "unknown"
#endif
#ifndef TSMO_BUILD_FLAGS
#define TSMO_BUILD_FLAGS ""
#endif
#ifndef TSMO_BUILD_TYPE
#define TSMO_BUILD_TYPE "unknown"
#endif

namespace tsmo::obs {

const BuildInfo& build_info() noexcept {
  static constexpr BuildInfo info{TSMO_BUILD_GIT_SHA, TSMO_BUILD_COMPILER,
                                  TSMO_BUILD_FLAGS, TSMO_BUILD_TYPE};
  return info;
}

void write_buildinfo_json(std::ostream& os) {
  const BuildInfo& info = build_info();
  JsonWriter w(os);
  w.begin_object();
  w.key("git_sha").value(info.git_sha);
  w.key("compiler").value(info.compiler);
  w.key("flags").value(info.flags);
  w.key("build_type").value(info.build_type);
  w.end_object();
  os << '\n';
}

}  // namespace tsmo::obs
