#include "obs/slo.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "util/log.hpp"

namespace tsmo::obs {

const char* to_string(SloState state) noexcept {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarn:
      return "warn";
    case SloState::kBreach:
      return "breach";
  }
  return "unknown";
}

std::vector<SloRule> default_slo_rules() {
  std::vector<SloRule> rules;
  {
    SloRule r;
    r.name = "first_front_latency";
    r.bad_series = "jobs.first_front_slow";
    r.total_series = "jobs.first_front_total";
    r.objective = 0.99;  // p99 submit-to-first-front under target
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "job_error_ratio";
    r.bad_series = "jobs.failed";
    r.total_series = "jobs.finished";
    r.objective = 0.99;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "queue_full_ratio";
    r.bad_series = "jobs.rejected";
    r.total_series = "jobs.submitted";
    r.objective = 0.95;  // shedding load is an explicit design choice
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "stall_watchdog";
    r.bad_series = "search.stalls_flagged";
    r.total_series = "jobs.finished";
    r.objective = 0.90;
    rules.push_back(std::move(r));
  }
  return rules;
}

SloEngine::SloEngine(std::vector<SloRule> rules) : rules_(std::move(rules)) {
  states_.resize(rules_.size());
}

void SloEngine::evaluate(const tsdb::Tsdb& db, std::int64_t now_ms) {
  // Clamp burn windows to the data actually retained so a young server
  // evaluates over its whole (short) history instead of an empty hour.
  const double span_s =
      static_cast<double>(db.ticks()) * db.options().sample_period_s;

  std::vector<SloVerdict> out;
  out.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    RuleState& st = states_[i];
    const double budget = std::max(1.0 - r.objective, 1e-9);

    const double fast_w = std::min(r.fast_window_s, std::max(span_s, 1.0));
    const double slow_w = std::min(r.slow_window_s, std::max(span_s, 1.0));
    const double bad_fast = db.increase(r.bad_series, fast_w, now_ms);
    const double total_fast = db.increase(r.total_series, fast_w, now_ms);
    const double bad_slow = db.increase(r.bad_series, slow_w, now_ms);
    const double total_slow = db.increase(r.total_series, slow_w, now_ms);

    const double fast_burn =
        total_fast > 0.0 ? (bad_fast / total_fast) / budget : 0.0;
    const double slow_burn =
        total_slow > 0.0 ? (bad_slow / total_slow) / budget : 0.0;

    SloState next = SloState::kOk;
    if (total_fast >= r.min_events && fast_burn >= r.fast_burn_threshold) {
      next = slow_burn >= r.slow_burn_threshold ? SloState::kBreach
                                                : SloState::kWarn;
    }

    if (next != st.state) {
      const auto burn_milli = static_cast<std::int64_t>(fast_burn * 1000.0);
      const bool worse = next > st.state;
      if (FlightRecorder::enabled()) {
        FlightRecorder::instance().record(
            worse ? FlightKind::kSloBreach : FlightKind::kSloRecover,
            r.name.c_str(), static_cast<std::int32_t>(next), 0, burn_milli);
      }
      auto ev = worse ? log::warn("slo") : log::info("slo");
      ev.msg(worse ? "slo state degraded" : "slo state recovered")
          .str("rule", r.name)
          .str("from", to_string(st.state))
          .str("to", to_string(next))
          .f64("fast_burn", fast_burn)
          .f64("slow_burn", slow_burn)
          .f64("bad_fast", bad_fast)
          .f64("total_fast", total_fast);
      st.state = next;
      ++st.transitions;
      st.since_ms = now_ms;
    }

    SloVerdict v;
    v.name = r.name;
    v.state = st.state;
    v.fast_burn = fast_burn;
    v.slow_burn = slow_burn;
    v.bad_fast = bad_fast;
    v.total_fast = total_fast;
    v.objective = r.objective;
    v.transitions = st.transitions;
    v.since_ms = st.since_ms;
    out.push_back(std::move(v));
  }

  std::lock_guard<std::mutex> lock(mu_);
  verdicts_ = std::move(out);
}

std::vector<SloVerdict> SloEngine::verdicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return verdicts_;
}

SloState SloEngine::overall() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloState worst = SloState::kOk;
  for (const auto& v : verdicts_) worst = std::max(worst, v.state);
  return worst;
}

}  // namespace tsmo::obs
