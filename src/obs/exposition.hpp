#pragma once

// Prometheus text exposition (format 0.0.4) of a telemetry::Snapshot
// (DESIGN.md §10).  Rendering rules:
//
//   * counters   `a.b.c`                -> `tsmo_a_b_c_total`
//   * gauges     `worker.<N>.<rest>`    -> `tsmo_worker_<rest>{worker="N"}`
//                `channel.<label>.depth`-> `tsmo_channel_depth{channel="…"}`
//                anything else          -> `tsmo_<sanitized>`
//   * histograms `x.y_ns`               -> `tsmo_x_y_seconds` with
//     cumulative `_bucket{le="…"}` lines (log2 boundaries converted to
//     seconds), a terminal `le="+Inf"` bucket, `_sum` and `_count`.
//
// Metrics sharing a family (e.g. per-worker gauges) are grouped under one
// `# HELP`/`# TYPE` pair, label values are escaped per the exposition
// spec (\\, \", \n), and metric/label names are sanitized to
// [a-zA-Z_:][a-zA-Z0-9_:]*.  Conformance is pinned by
// tests/test_http_obs.cpp.

#include <ostream>
#include <string>
#include <string_view>

#include "util/telemetry.hpp"

namespace tsmo::obs {

/// Clamps `name` to a legal Prometheus metric name: every illegal char
/// becomes '_', and a leading digit gets a '_' prefix.
std::string sanitize_metric_name(std::string_view name);

/// Escapes a label value for the exposition format: backslash, double
/// quote and newline.
std::string escape_label_value(std::string_view value);

/// Renders the full snapshot.  `prefix` (default "tsmo") namespaces every
/// family; spans/threads are not exposed (scrape-sized data only).
void write_prometheus(std::ostream& os, const telemetry::Snapshot& snap,
                      const std::string& prefix = "tsmo");

/// Standard process-level stats read from /proc/self (Linux).  On
/// platforms without procfs every field reads 0 and `available` is false
/// — the gauges still render (as 0) so scrape configs stay portable.
struct ProcessStats {
  bool available = false;
  double resident_memory_bytes = 0.0;
  double cpu_seconds_total = 0.0;  ///< utime + stime
  double open_fds = 0.0;
  double uptime_seconds = 0.0;  ///< since process start
};
ProcessStats read_process_stats();

}  // namespace tsmo::obs
