#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/timer.hpp"

namespace tsmo::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

/// Writes the whole buffer, retrying on EINTR/short writes.
void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

/// `head_only` (HEAD requests) sends status + headers — including the
/// Content-Length the matching GET would have carried — without the body.
void send_response(int fd, const HttpResponse& res, bool head_only = false) {
  std::string out = "HTTP/1.1 " + std::to_string(res.status) + " " +
                    status_text(res.status) + "\r\n";
  out += "Content-Type: " + res.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
  if (!res.cache_control.empty()) {
    out += "Cache-Control: " + res.cache_control + "\r\n";
  }
  for (const auto& [name, value] : res.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += res.body;
  write_all(fd, out.data(), out.size());
}

/// Outcome of the incremental request read; maps directly onto the error
/// status the connection is answered with.
enum class ReadStatus {
  kOk,
  kClosed,    // peer vanished mid-request: nothing to answer
  kTimeout,   // 408
  kTooLarge,  // 413
  kMalformed  // 400
};

/// Reads until the end of the request head ("\r\n\r\n") or limits hit.
ReadStatus read_request_head(int fd, const HttpServer::Limits& limits,
                             std::string& head, std::string& overflow) {
  char buf[2048];
  head.clear();
  overflow.clear();
  while (head.size() < limits.max_head_bytes) {
    const std::size_t mark = head.find("\r\n\r\n");
    if (mark != std::string::npos) {
      overflow = head.substr(mark + 4);  // start of the body, if any
      head.resize(mark + 4);
      return ReadStatus::kOk;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, limits.read_timeout_ms);
    if (pr == 0) return ReadStatus::kTimeout;
    if (pr < 0) return ReadStatus::kClosed;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    if (n == 0) return ReadStatus::kClosed;
    head.append(buf, static_cast<std::size_t>(n));
  }
  return ReadStatus::kTooLarge;
}

/// Case-insensitive header value lookup inside a raw request head.
bool find_header(const std::string& head, const std::string& name,
                 std::string& value) {
  std::size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    const std::size_t eol = head.find("\r\n", pos + 2);
    if (eol == std::string::npos) break;
    const std::string line = head.substr(pos + 2, eol - pos - 2);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos && colon == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t s = colon + 1;
        while (s < line.size() && line[s] == ' ') ++s;
        value = line.substr(s);
        return true;
      }
    }
    pos = eol;
  }
  return false;
}

/// Reads exactly `want` body bytes (beyond what `body` already holds).
ReadStatus read_request_body(int fd, const HttpServer::Limits& limits,
                             std::size_t want, std::string& body) {
  char buf[4096];
  while (body.size() < want) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, limits.read_timeout_ms);
    if (pr == 0) return ReadStatus::kTimeout;
    if (pr < 0) return ReadStatus::kClosed;
    const ssize_t n = ::read(
        fd, buf,
        std::min(sizeof(buf), want - body.size()));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    if (n == 0) return ReadStatus::kClosed;
    body.append(buf, static_cast<std::size_t>(n));
  }
  return ReadStatus::kOk;
}

bool parse_request_line(const std::string& head, HttpRequest& req) {
  const std::size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return false;
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  if (q == std::string::npos) {
    req.path = std::move(target);
    req.query.clear();
  } else {
    req.path = target.substr(0, q);
    req.query = target.substr(q + 1);
  }
  return !req.path.empty() && req.path.front() == '/';
}

}  // namespace

HttpServer::HttpServer(int port, int handler_threads)
    : port_(port),
      handler_threads_(handler_threads < 1 ? 1 : handler_threads) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, Handler handler) {
  route("GET", std::move(path), std::move(handler));
}

void HttpServer::route(std::string method, std::string path,
                       Handler handler) {
  routes_.push_back(
      {std::move(method), std::move(path), false, std::move(handler)});
}

void HttpServer::route_prefix(std::string method, std::string prefix,
                              Handler handler) {
  routes_.push_back(
      {std::move(method), std::move(prefix), true, std::move(handler)});
}

bool HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    reason_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    reason_ = "bind port " + std::to_string(port_) + ": " +
              std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    reason_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  handlers_.reserve(static_cast<std::size_t>(handler_threads_));
  for (int i = 0; i < handler_threads_; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  // Drain anything the handlers did not get to.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : queue_) ::close(fd);
  queue_.clear();
}

bool HttpServer::enqueue(int fd) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= kMaxQueued) return false;
    queue_.push_back(fd);
  }
  queue_cv_.notify_one();
  return true;
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;  // timeout tick (checks stopping_) or EINTR
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (!enqueue(fd)) {
      // Pool saturated: refuse from the acceptor, never block it.
      HttpResponse busy;
      busy.status = 503;
      busy.body = "handler pool saturated\n";
      send_response(fd, busy);
      ::close(fd);
    }
  }
}

void HttpServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::dispatch(const HttpRequest& req, HttpResponse& res,
                          std::string& route_label) const {
  // GET routes answer HEAD too (the body is stripped by the caller).
  const std::string& method = req.method == "HEAD" ? "GET" : req.method;
  const Route* best = nullptr;
  const Route* known = nullptr;
  for (const Route& r : routes_) {
    const bool path_match =
        r.prefix ? req.path.compare(0, r.path.size(), r.path) == 0
                 : req.path == r.path;
    if (!path_match) continue;
    known = &r;
    if (r.method != method) continue;
    // Exact beats prefix; longer prefix beats shorter.
    if (best == nullptr || (best->prefix && !r.prefix) ||
        (best->prefix && r.prefix && r.path.size() > best->path.size())) {
      best = &r;
    }
  }
  if (best != nullptr) {
    route_label = best->path;
    res.status = 200;
    res.body.clear();
    best->handler(req, res);
    return;
  }
  if (known != nullptr) {
    route_label = known->path;
    res.status = 405;
    res.body = "method not allowed for this endpoint\n";
    return;
  }
  route_label = "(none)";
  res.status = 404;
  res.body = "no such endpoint\n";
}

std::vector<RouteStat> HttpServer::route_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void HttpServer::observe(const std::string& route, const std::string& method,
                         int status, std::uint64_t dur_ns,
                         std::uint64_t trace_id, const std::string& label) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  RouteStat* stat = nullptr;
  for (RouteStat& s : stats_) {
    if (s.route == route && s.method == method) {
      stat = &s;
      break;
    }
  }
  if (stat == nullptr) {
    stats_.push_back(RouteStat{});
    stat = &stats_.back();
    stat->route = route;
    stat->method = method;
  }
  ++stat->count;
  ++stat->by_status[status];
  stat->sum_ns += dur_ns;
  int bucket = 0;
  if (dur_ns > 0) {
    bucket = std::min(static_cast<int>(std::bit_width(dur_ns)),
                      telemetry::kHistogramBuckets - 1);
  }
  ++stat->buckets[bucket];
  if (dur_ns >= stat->max_ns) {
    stat->max_ns = dur_ns;
    stat->exemplar_trace = trace_id;
    stat->exemplar_label = label;
  }
}

void HttpServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const std::uint64_t t0 = now_ns();
  std::string head;
  HttpRequest req;
  HttpResponse res;
  // Requests that fail before routing (408/413/400) carry this label so
  // RED accounting still sees them without exploding label cardinality.
  std::string route_label = "(error)";
  const ReadStatus hs = read_request_head(fd, limits_, head, req.body);
  if (hs == ReadStatus::kClosed) return;  // nobody left to answer
  if (hs == ReadStatus::kTimeout) {
    res.status = 408;
    res.body = "timed out reading request\n";
  } else if (hs == ReadStatus::kTooLarge) {
    res.status = 413;
    res.body = "request head too large\n";
  } else if (!parse_request_line(head, req)) {
    res.status = 400;
    res.body = "malformed request\n";
  } else {
    std::string value;
    std::size_t content_length = 0;
    bool bad_length = false;
    if (find_header(head, "Content-Length", value)) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || errno != 0) {
        res.status = 400;
        res.body = "malformed Content-Length\n";
        bad_length = true;
      } else {
        content_length = static_cast<std::size_t>(n);
      }
    }
    if (bad_length) {
      // handled above
    } else if (content_length > limits_.max_body_bytes) {
      res.status = 413;
      res.body = "request body exceeds " +
                 std::to_string(limits_.max_body_bytes) + " bytes\n";
    } else {
      if (content_length > 0 &&
          find_header(head, "Expect", value) &&
          value.find("100-continue") != std::string::npos) {
        // curl sends Expect for bodies over 1 KiB and waits for this nod.
        static const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
        write_all(fd, kContinue, sizeof(kContinue) - 1);
      }
      const ReadStatus bs =
          read_request_body(fd, limits_, content_length, req.body);
      if (bs == ReadStatus::kClosed) return;
      if (bs == ReadStatus::kTimeout) {
        res.status = 408;
        res.body = "timed out reading request body\n";
      } else {
        req.body.resize(content_length);  // drop any pipelined excess
        dispatch(req, res, route_label);
      }
    }
  }
  // HEAD answers with the GET handler's status + headers — including the
  // Content-Length the body would have had — but no body (RFC 9110 §9.3.2).
  send_response(fd, res, /*head_only=*/req.method == "HEAD");
  served_.fetch_add(1, std::memory_order_relaxed);
  observe(route_label, req.method.empty() ? "(unknown)" : req.method,
          res.status, now_ns() - t0, res.trace_id, res.trace_label);
}

std::string http_get(int port, const std::string& path, int timeout_ms) {
  return http_request(port, "GET", path, std::string(), std::string(),
                      timeout_ms);
}

std::string http_request(int port, const std::string& method,
                         const std::string& path, const std::string& body,
                         const std::string& content_type, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  std::string req = method + " " + path +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (method != "GET" && method != "HEAD") {
    if (!content_type.empty()) {
      req += "Content-Type: " + content_type + "\r\n";
    }
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "Connection: close\r\n\r\n";
  if (method != "GET" && method != "HEAD") req += body;
  write_all(fd, req.data(), req.size());

  std::string out;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr <= 0) break;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

int http_split_response(const std::string& raw, std::string& body) {
  body.clear();
  if (raw.compare(0, 5, "HTTP/") != 0) return 0;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return 0;
  int status = 0;
  for (std::size_t i = sp + 1; i < sp + 4 && i < raw.size(); ++i) {
    if (raw[i] < '0' || raw[i] > '9') return 0;
    status = status * 10 + (raw[i] - '0');
  }
  // An interim 100 Continue is followed by the real response; skip it.
  if (status == 100) {
    const std::size_t blank = raw.find("\r\n\r\n");
    if (blank == std::string::npos) return 0;
    return http_split_response(raw.substr(blank + 4), body);
  }
  const std::size_t blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) body = raw.substr(blank + 4);
  return status;
}

std::string http_header(const std::string& raw, const std::string& name) {
  const std::size_t end = raw.find("\r\n\r\n");
  std::size_t pos = raw.find("\r\n");
  while (pos != std::string::npos && pos < end) {
    const std::size_t eol = raw.find("\r\n", pos + 2);
    if (eol == std::string::npos) break;
    const std::string line = raw.substr(pos + 2, eol - pos - 2);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos && colon == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t s = colon + 1;
        while (s < line.size() && line[s] == ' ') ++s;
        return line.substr(s);
      }
    }
    pos = eol;
  }
  return {};
}

}  // namespace tsmo::obs
