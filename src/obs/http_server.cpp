#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tsmo::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

/// Writes the whole buffer, retrying on EINTR/short writes.
void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& res) {
  std::string out = "HTTP/1.1 " + std::to_string(res.status) + " " +
                    status_text(res.status) + "\r\n";
  out += "Content-Type: " + res.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += res.body;
  write_all(fd, out.data(), out.size());
}

/// Reads until the end of the request head ("\r\n\r\n") or limits hit.
/// Bodies are ignored: every supported endpoint is a bare GET.
bool read_request_head(int fd, std::string& head) {
  char buf[2048];
  head.clear();
  while (head.size() < 16 * 1024) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 2000);
    if (pr <= 0) return false;  // timeout or error: drop the connection
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed before finishing the head
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) return true;
  }
  return false;
}

bool parse_request_line(const std::string& head, HttpRequest& req) {
  const std::size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return false;
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  if (q == std::string::npos) {
    req.path = std::move(target);
    req.query.clear();
  } else {
    req.path = target.substr(0, q);
    req.query = target.substr(q + 1);
  }
  return !req.path.empty() && req.path.front() == '/';
}

}  // namespace

HttpServer::HttpServer(int port, int handler_threads)
    : port_(port),
      handler_threads_(handler_threads < 1 ? 1 : handler_threads) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, Handler handler) {
  routes_.emplace_back(std::move(path), std::move(handler));
}

bool HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    reason_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    reason_ = "bind port " + std::to_string(port_) + ": " +
              std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    reason_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  handlers_.reserve(static_cast<std::size_t>(handler_threads_));
  for (int i = 0; i < handler_threads_; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  // Drain anything the handlers did not get to.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : queue_) ::close(fd);
  queue_.clear();
}

bool HttpServer::enqueue(int fd) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= kMaxQueued) return false;
    queue_.push_back(fd);
  }
  queue_cv_.notify_one();
  return true;
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;  // timeout tick (checks stopping_) or EINTR
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (!enqueue(fd)) {
      // Pool saturated: refuse from the acceptor, never block it.
      HttpResponse busy;
      busy.status = 503;
      busy.body = "handler pool saturated\n";
      send_response(fd, busy);
      ::close(fd);
    }
  }
}

void HttpServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string head;
  HttpRequest req;
  HttpResponse res;
  if (!read_request_head(fd, head) || !parse_request_line(head, req)) {
    res.status = 400;
    res.body = "malformed request\n";
  } else if (req.method != "GET" && req.method != "HEAD") {
    res.status = 405;
    res.body = "only GET is supported\n";
  } else {
    res.status = 404;
    res.body = "no such endpoint\n";
    for (const auto& [path, handler] : routes_) {
      if (path == req.path) {
        res.status = 200;
        res.body.clear();
        handler(req, res);
        break;
      }
    }
  }
  if (req.method == "HEAD") res.body.clear();
  send_response(fd, res);
  served_.fetch_add(1, std::memory_order_relaxed);
}

std::string http_get(int port, const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  write_all(fd, req.data(), req.size());

  std::string out;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr <= 0) break;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

int http_split_response(const std::string& raw, std::string& body) {
  body.clear();
  if (raw.compare(0, 5, "HTTP/") != 0) return 0;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return 0;
  int status = 0;
  for (std::size_t i = sp + 1; i < sp + 4 && i < raw.size(); ++i) {
    if (raw[i] < '0' || raw[i] > '9') return 0;
    status = status * 10 + (raw[i] - '0');
  }
  const std::size_t blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) body = raw.substr(blank + 4);
  return status;
}

}  // namespace tsmo::obs
