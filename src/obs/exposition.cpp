#include "obs/exposition.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace tsmo::obs {

namespace {

bool legal_name_char(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || std::isdigit(static_cast<unsigned char>(c));
}

/// One rendered sample line: optional label pair + value text.
struct Sample {
  std::string label_key;
  std::string label_value;
  std::string value;
};

/// One exposition family: unique name, single TYPE/HELP pair, samples.
struct Family {
  std::string type;  // "counter" | "gauge" | "histogram"
  std::string help;
  std::vector<Sample> samples;
  /// Histograms render their own multi-line body instead of samples.
  std::string raw_body;
};

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// "worker.<N>.<rest>" -> rest; returns true and fills n/rest on match.
bool parse_worker_gauge(const std::string& name, std::string& n,
                        std::string& rest) {
  const std::string prefix = "worker.";
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  const std::size_t dot = name.find('.', prefix.size());
  if (dot == std::string::npos || dot == prefix.size()) return false;
  const std::string id = name.substr(prefix.size(), dot - prefix.size());
  for (char c : id) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  if (dot + 1 >= name.size()) return false;
  n = id;
  rest = name.substr(dot + 1);
  return true;
}

/// "channel.<label>.depth" -> label.
bool parse_channel_gauge(const std::string& name, std::string& label) {
  const std::string prefix = "channel.";
  const std::string suffix = ".depth";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  label = name.substr(prefix.size(),
                      name.size() - prefix.size() - suffix.size());
  return true;
}

/// Histogram family name: strip a trailing "_ns" and append "_seconds".
std::string histogram_family(const std::string& prefix,
                             const std::string& name) {
  std::string base = name;
  const std::string ns = "_ns";
  if (base.size() > ns.size() &&
      base.compare(base.size() - ns.size(), ns.size(), ns) == 0) {
    base.resize(base.size() - ns.size());
  }
  return prefix + "_" + sanitize_metric_name(base) + "_seconds";
}

void render_histogram_body(std::string& out, const std::string& family,
                           const telemetry::HistogramSnap& h) {
  // Cumulative counts over the log2 buckets; the bucket upper bound of
  // bucket b is 2^b ns (bucket 0 holds exact zeros, le="0").
  int last = telemetry::kHistogramBuckets - 1;
  while (last > 0 && h.buckets[last] == 0) --last;
  std::uint64_t cum = 0;
  for (int b = 0; b <= last; ++b) {
    cum += h.buckets[b];
    const double le_seconds = b == 0 ? 0.0 : std::ldexp(1.0, b) * 1e-9;
    out += family + "_bucket{le=\"" + fmt_double(le_seconds) + "\"} " +
           fmt_u64(cum) + "\n";
  }
  // Under concurrent mutation a snapshot can observe a bucket increment
  // whose matching count increment has not landed yet (record_ns stores
  // bucket, then count, both relaxed; the snapshot reads in the same
  // order), leaving h.count below the finite cumulative total.  Clamp so
  // the rendered series keeps the exposition-format invariants: buckets
  // cumulative and monotone, +Inf == _count >= every finite bucket.
  const std::uint64_t total = std::max(h.count, cum);
  out += family + "_bucket{le=\"+Inf\"} " + fmt_u64(total) + "\n";
  out += family + "_sum " +
         fmt_double(static_cast<double>(h.sum_ns) * 1e-9) + "\n";
  out += family + "_count " + fmt_u64(total) + "\n";
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(legal_name_char(c) ? c : '_');
  }
  if (out.empty()) out = "_";
  if (std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void write_prometheus(std::ostream& os, const telemetry::Snapshot& snap,
                      const std::string& prefix) {
  // std::map keeps family order stable across scrapes (sorted by name).
  std::map<std::string, Family> families;

  for (const telemetry::CounterSnap& c : snap.counters) {
    const std::string family =
        prefix + "_" + sanitize_metric_name(c.name) + "_total";
    Family& f = families[family];
    f.type = "counter";
    f.help = "Counter " + c.name;
    f.samples.push_back(Sample{"", "", fmt_u64(c.value)});
  }

  for (const telemetry::GaugeSnap& g : snap.gauges) {
    std::string worker_id, rest, channel;
    if (parse_worker_gauge(g.name, worker_id, rest)) {
      const std::string family =
          prefix + "_worker_" + sanitize_metric_name(rest);
      Family& f = families[family];
      f.type = "gauge";
      f.help = "Per-worker gauge worker.<id>." + rest;
      f.samples.push_back(
          Sample{"worker", worker_id, std::to_string(g.value)});
    } else if (parse_channel_gauge(g.name, channel)) {
      const std::string family = prefix + "_channel_depth";
      Family& f = families[family];
      f.type = "gauge";
      f.help = "Queue depth of channel.<name>.depth";
      f.samples.push_back(
          Sample{"channel", channel, std::to_string(g.value)});
    } else {
      const std::string family = prefix + "_" + sanitize_metric_name(g.name);
      Family& f = families[family];
      f.type = "gauge";
      f.help = "Gauge " + g.name;
      f.samples.push_back(Sample{"", "", std::to_string(g.value)});
    }
  }

  for (const telemetry::HistogramSnap& h : snap.histograms) {
    const std::string family = histogram_family(prefix, h.name);
    Family& f = families[family];
    f.type = "histogram";
    f.help = "Histogram " + h.name + " (log2 buckets, seconds)";
    render_histogram_body(f.raw_body, family, h);
  }

  for (const auto& [name, f] : families) {
    // HELP text: escape backslash and newline per the exposition format.
    std::string help;
    for (char c : f.help) {
      if (c == '\\') {
        help += "\\\\";
      } else if (c == '\n') {
        help += "\\n";
      } else {
        help.push_back(c);
      }
    }
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << ' ' << f.type << '\n';
    for (const Sample& s : f.samples) {
      os << name;
      if (!s.label_key.empty()) {
        os << '{' << sanitize_metric_name(s.label_key) << "=\""
           << escape_label_value(s.label_value) << "\"}";
      }
      os << ' ' << s.value << '\n';
    }
    os << f.raw_body;
  }
}

#if defined(__linux__)

ProcessStats read_process_stats() {
  ProcessStats ps;
  // RSS from /proc/self/statm field 2 (pages).
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long size = 0;
    long resident = 0;
    if (std::fscanf(f, "%ld %ld", &size, &resident) == 2) {
      ps.resident_memory_bytes =
          static_cast<double>(resident) *
          static_cast<double>(sysconf(_SC_PAGESIZE));
      ps.available = true;
    }
    std::fclose(f);
  }
  // utime/stime and starttime from /proc/self/stat; the comm field can
  // contain spaces and parens, so parse after the *last* ')'.
  const double ticks = static_cast<double>(sysconf(_SC_CLK_TCK));
  if (std::FILE* f = std::fopen("/proc/self/stat", "r")) {
    char buf[1024];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    if (const char* close_paren = std::strrchr(buf, ')')) {
      // Fields after ") ": state is field 3; utime is 14, stime 15,
      // starttime 22 (1-based over the whole line).
      unsigned long long utime = 0;
      unsigned long long stime = 0;
      unsigned long long starttime = 0;
      const int got = std::sscanf(
          close_paren + 2,
          "%*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu %*d %*d "
          "%*d %*d %*d %*d %llu",
          &utime, &stime, &starttime);
      if (got == 3 && ticks > 0) {
        ps.cpu_seconds_total = static_cast<double>(utime + stime) / ticks;
        // Uptime of the process = system uptime - starttime.
        if (std::FILE* u = std::fopen("/proc/uptime", "r")) {
          double sys_uptime = 0.0;
          if (std::fscanf(u, "%lf", &sys_uptime) == 1) {
            ps.uptime_seconds =
                sys_uptime - static_cast<double>(starttime) / ticks;
            if (ps.uptime_seconds < 0) ps.uptime_seconds = 0;
          }
          std::fclose(u);
        }
        ps.available = true;
      }
    }
  }
  if (DIR* d = opendir("/proc/self/fd")) {
    int count = 0;
    while (readdir(d) != nullptr) ++count;
    closedir(d);
    // Minus ".", ".." and the directory fd itself.
    ps.open_fds = static_cast<double>(count > 3 ? count - 3 : 0);
    ps.available = true;
  }
  return ps;
}

#else  // !__linux__

ProcessStats read_process_stats() { return ProcessStats{}; }

#endif

}  // namespace tsmo::obs
