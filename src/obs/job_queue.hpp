#pragma once

// Bounded FIFO admission queue of the job plane (DESIGN.md §12).
//
// The front end (HTTP handler threads) calls try_push(); when the queue is
// at capacity the push is refused *synchronously* — the caller turns that
// into 429 + Retry-After, so backpressure reaches the client instead of
// piling up unbounded work behind the accept loop.  A fixed pool of
// executor threads blocks in pop_wait(); close() wakes them all for
// shutdown and drains the remaining ids back to the caller so queued jobs
// can be marked cancelled instead of silently lost.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace tsmo::obs {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Admits one job id; false when the queue is full or closed (the
  /// caller distinguishes via closed()).
  bool try_push(std::uint64_t id);

  /// Blocks until an id is available or the queue is closed; nullopt once
  /// closed (ids still queued at close time are handed back by close()).
  std::optional<std::uint64_t> pop_wait();

  /// Closes the queue: subsequent try_push() calls fail and blocked
  /// pop_wait() callers wake with nullopt.  Returns the ids that were
  /// still queued — ids no executor will ever pop, so shutdown can mark
  /// them cancelled instead of silently losing them.
  std::vector<std::uint64_t> close();

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t depth() const;
  bool closed() const;

  /// Admission counters (monotone; conservation: pushed == popped +
  /// drained-at-close).
  std::uint64_t pushed() const;
  std::uint64_t rejected() const;
  std::uint64_t popped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;
  bool closed_ = false;
  std::uint64_t pushed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace tsmo::obs
