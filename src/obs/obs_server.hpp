#pragma once

// The operational plane (DESIGN.md §10): an embedded HttpServer serving
//
//   GET /metrics    Prometheus 0.0.4 exposition of the telemetry registry
//                   (metrics-only snapshot; span rings are never touched
//                   mid-run) plus obs self-metrics and live Pareto gauges.
//   GET /healthz    liveness JSON: uptime, per-slot heartbeat ages and the
//                   stall watchdog's verdicts.
//   GET /status     live run JSON: engine, global anytime hypervolume and
//                   its non-dominated front, per-worker progress/busy
//                   flags, sample/insertion counts.
//   GET /buildinfo  build provenance (git sha, compiler, flags).
//   GET /debug/profile?seconds=N[&format=folded|speedscope]
//                   on-demand CPU profile window from the sampling
//                   profiler (DESIGN.md §14); 409 when sampling is off.
//   GET /           plain-text index of the endpoints above.
//
// With attach_jobs() the same server also fronts the job plane
// (DESIGN.md §12): POST /jobs, GET /jobs[/<id>[/result]], DELETE
// /jobs/<id>, and /metrics grows tsmo_jobs_* counters and queue gauges.
//
// Everything served (job mutation endpoints aside) is observation-only:
// handlers read atomics, take the recorder mutex briefly, and never touch
// search state or RNGs, so golden-seed fingerprints are identical with
// the server on or off.

#include <atomic>
#include <cstdint>
#include <string>

#include "moo/anytime.hpp"
#include "obs/http_server.hpp"

namespace tsmo::obs {

class JobManager;

class ObsServer {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral (resolved port via port())
    int handler_threads = 2;
  };

  ObsServer() : ObsServer(Options()) {}
  explicit ObsServer(Options opts);

  /// Starts serving; false (see reason()) when the bind fails.
  bool start();
  void stop();
  bool running() const noexcept { return server_.running(); }
  int port() const noexcept { return server_.port(); }
  const std::string& reason() const noexcept { return server_.reason(); }

  /// Attaches the live run's recorder; /status and /healthz serve richer
  /// data while it is set.  Pass nullptr before the recorder dies.
  void set_recorder(const ConvergenceRecorder* rec) noexcept {
    recorder_.store(rec, std::memory_order_release);
  }

  /// Mounts the job plane: registers the /jobs routes and adds job
  /// counters to /metrics.  Must be called before start(); `jobs` must
  /// outlive the server.
  void attach_jobs(JobManager* jobs);

  /// /metrics scrapes answered so far.
  std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void handle_metrics(HttpResponse& res);
  void handle_healthz(HttpResponse& res);
  void handle_status(HttpResponse& res);
  void handle_debug_profile(const HttpRequest& req, HttpResponse& res);

  HttpServer server_;
  JobManager* jobs_ = nullptr;  ///< set before start(), then read-only
  std::atomic<const ConvergenceRecorder*> recorder_{nullptr};
  std::atomic<std::uint64_t> scrapes_{0};
  std::uint64_t start_ns_ = 0;
};

}  // namespace tsmo::obs
