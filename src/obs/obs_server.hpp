#pragma once

// The operational plane (DESIGN.md §10): an embedded HttpServer serving
//
//   GET /metrics    Prometheus 0.0.4 exposition of the telemetry registry
//                   (metrics-only snapshot; span rings are never touched
//                   mid-run) plus obs self-metrics and live Pareto gauges.
//   GET /healthz    liveness JSON: uptime, per-slot heartbeat ages and the
//                   stall watchdog's verdicts.
//   GET /status     live run JSON: engine, global anytime hypervolume and
//                   its non-dominated front, per-worker progress/busy
//                   flags, sample/insertion counts.
//   GET /buildinfo  build provenance (git sha, compiler, flags).
//   GET /debug/profile?seconds=N[&format=folded|speedscope]
//                   on-demand CPU profile window from the sampling
//                   profiler (DESIGN.md §14); 409 when sampling is off.
//   GET /api/timeseries?series=<glob>&window=<s>&step=<s>
//                   windowed/downsampled history JSON from the in-process
//                   tsdb (DESIGN.md §15); 404 until enable_history().
//   GET /dashboard  single embedded self-refreshing HTML page (inline
//                   JS/SVG sparklines, zero external assets) rendered
//                   entirely from /api/timeseries + /healthz.
//   GET /           plain-text index of the endpoints above.
//
// With enable_history() the server owns a sampler thread that feeds the
// tsdb once per period (registry counters/gauges, histogram quantiles,
// job-plane stats, per-route p99s, recorder hypervolume, process gauges)
// and then runs the SLO burn-rate engine over it; verdicts surface as
// tsmo_slo_* gauges on /metrics and an slo{} block on /healthz.
//
// With attach_jobs() the same server also fronts the job plane
// (DESIGN.md §12): POST /jobs, GET /jobs[/<id>[/result]], DELETE
// /jobs/<id>, and /metrics grows tsmo_jobs_* counters and queue gauges.
//
// Everything served (job mutation endpoints aside) is observation-only:
// handlers read atomics, take the recorder mutex briefly, and never touch
// search state or RNGs, so golden-seed fingerprints are identical with
// the server on or off.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "moo/anytime.hpp"
#include "obs/http_server.hpp"
#include "obs/slo.hpp"
#include "util/tsdb.hpp"

namespace tsmo::obs {

class JobManager;

class ObsServer {
 public:
  struct Options {
    int port = 0;  ///< 0 = ephemeral (resolved port via port())
    int handler_threads = 2;
  };

  /// Configuration for the in-process history plane (off by default).
  struct HistoryOptions {
    tsdb::TsdbOptions tsdb;
    /// Evaluate SLO rules after each sampler tick.
    bool slo = true;
    /// Rule set; default_slo_rules() when empty.
    std::vector<SloRule> rules;
    /// Launch the sampler thread on start().  Tests turn this off and
    /// drive sample_now() manually — the tsdb writer side is
    /// single-threaded by contract.
    bool sampler = true;
  };

  ObsServer() : ObsServer(Options()) {}
  explicit ObsServer(Options opts);

  /// Starts serving; false (see reason()) when the bind fails.
  bool start();
  void stop();
  bool running() const noexcept { return server_.running(); }
  int port() const noexcept { return server_.port(); }
  const std::string& reason() const noexcept { return server_.reason(); }

  /// Attaches the live run's recorder; /status and /healthz serve richer
  /// data while it is set.  Pass nullptr before the recorder dies.
  void set_recorder(const ConvergenceRecorder* rec) noexcept {
    recorder_.store(rec, std::memory_order_release);
  }

  /// Mounts the job plane: registers the /jobs routes and adds job
  /// counters to /metrics.  Must be called before start(); `jobs` must
  /// outlive the server.
  void attach_jobs(JobManager* jobs);

  /// Arms the history plane: allocates the tsdb (and SLO engine unless
  /// opts.slo is false); start() then launches the sampler thread.  Call
  /// before start(); a second call replaces the (not yet sampling) store.
  void enable_history(HistoryOptions opts);
  void enable_history() { enable_history(HistoryOptions()); }
  bool history_enabled() const noexcept { return db_ != nullptr; }

  /// The store / engine, or nullptr while history is off.  The tsdb's
  /// reader API is safe from any thread while the server runs.
  const tsdb::Tsdb* db() const noexcept { return db_.get(); }
  const SloEngine* slo() const noexcept { return slo_.get(); }

  /// Runs one sampler tick synchronously at wall time `now_ms` (tests and
  /// CLI one-shots; the sampler thread calls the same path).  No-op while
  /// history is off.
  void sample_now(std::int64_t now_ms);

  /// /metrics scrapes answered so far.
  std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void handle_metrics(HttpResponse& res);
  void handle_healthz(HttpResponse& res);
  void handle_status(HttpResponse& res);
  void handle_debug_profile(const HttpRequest& req, HttpResponse& res);
  void handle_timeseries(const HttpRequest& req, HttpResponse& res);
  void handle_dashboard(HttpResponse& res);
  void sampler_loop();

  HttpServer server_;
  JobManager* jobs_ = nullptr;  ///< set before start(), then read-only
  std::atomic<const ConvergenceRecorder*> recorder_{nullptr};
  std::atomic<std::uint64_t> scrapes_{0};
  std::uint64_t start_ns_ = 0;
  std::int64_t start_unix_ms_ = 0;

  // History plane (DESIGN.md §15).
  std::unique_ptr<tsdb::Tsdb> db_;
  std::unique_ptr<SloEngine> slo_;
  std::thread sampler_;
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;    // guarded by sampler_mu_
  bool sampler_wanted_ = true;   // from HistoryOptions::sampler
};

}  // namespace tsmo::obs
