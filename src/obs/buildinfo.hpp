#pragma once

// Build provenance (DESIGN.md §10): git sha, compiler, flags and build
// type captured at configure time (src/obs/CMakeLists.txt passes them as
// compile definitions).  All fields are string literals with static
// storage so the flight recorder's crash handler can read them without
// allocating.  Served at /buildinfo and stamped into every RunResult JSON
// so bench_results artifacts are traceable to the binary that made them.

#include <cstdint>
#include <ostream>

namespace tsmo::obs {

struct BuildInfo {
  const char* git_sha;     ///< short sha of HEAD at configure time
  const char* compiler;    ///< "GNU 13.2.0" style id + version
  const char* flags;       ///< CXX flags incl. the build-type flags
  const char* build_type;  ///< CMAKE_BUILD_TYPE
};

/// The compiled-in build record.
const BuildInfo& build_info() noexcept;

/// Wall-clock time this process loaded [unix ms]; captured once at static
/// init so /buildinfo, /healthz and the dashboard header agree on when
/// the server last restarted.
std::int64_t process_start_unix_ms() noexcept;

/// Seconds since process load (steady clock, immune to wall adjustments).
double process_uptime_s() noexcept;

/// Renders the record as a small JSON object ({"git_sha": ..., ...})
/// plus start_time_unix_ms / uptime_s.
void write_buildinfo_json(std::ostream& os);

}  // namespace tsmo::obs
