#pragma once

// The embedded /dashboard page (DESIGN.md §15): one self-contained HTML
// document — inline CSS + JS, SVG sparklines, zero external assets — that
// renders entirely from GET /api/timeseries and GET /healthz.  Served with
// Cache-Control: max-age=60 (it is a static asset; the data it fetches is
// no-store).
//
// Charting follows the repo's data-viz conventions: series hues and ink
// tokens are CSS custom properties with selected dark-mode steps (OS
// preference plus a manual toggle), status states always pair an icon
// with a label so color never carries meaning alone, text wears ink
// tokens rather than series color, and every plot carries a hover
// crosshair + tooltip.  Multi-series panels cap at three hues (the
// all-pairs-validated prefix of the categorical order) and fold the rest.

namespace tsmo::obs {

inline constexpr const char kDashboardHtml[] = R"TSMODASH(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>tsmo dashboard</title>
<style>
:root {
  color-scheme: light;
  --page:          #f9f9f7;
  --surface-1:     #fcfcfb;
  --text-primary:  #0b0b0b;
  --text-secondary:#52514e;
  --text-muted:    #898781;
  --grid:          #e1e0d9;
  --baseline:      #c3c2b7;
  --border:        rgba(11,11,11,0.10);
  --series-1:      #2a78d6;
  --series-2:      #eb6834;
  --series-3:      #1baf7a;
  --status-good:     #0ca30c;
  --status-warning:  #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --page:          #0d0d0d;
    --surface-1:     #1a1a19;
    --text-primary:  #ffffff;
    --text-secondary:#c3c2b7;
    --text-muted:    #898781;
    --grid:          #2c2c2a;
    --baseline:      #383835;
    --border:        rgba(255,255,255,0.10);
    --series-1:      #3987e5;
    --series-2:      #d95926;
    --series-3:      #199e70;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --page:          #0d0d0d;
  --surface-1:     #1a1a19;
  --text-primary:  #ffffff;
  --text-secondary:#c3c2b7;
  --text-muted:    #898781;
  --grid:          #2c2c2a;
  --baseline:      #383835;
  --border:        rgba(255,255,255,0.10);
  --series-1:      #3987e5;
  --series-2:      #d95926;
  --series-3:      #199e70;
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header {
  display: flex; align-items: baseline; gap: 16px; flex-wrap: wrap;
  padding: 14px 20px 6px;
}
header h1 { font-size: 17px; margin: 0; font-weight: 650; }
header .sub { color: var(--text-secondary); font-size: 13px; }
header .spacer { flex: 1; }
button.theme {
  background: var(--surface-1); color: var(--text-secondary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 3px 10px; font: inherit; font-size: 12px; cursor: pointer;
}
.badge {
  display: inline-flex; align-items: center; gap: 6px;
  font-size: 13px; font-weight: 600; padding: 2px 10px;
  border: 1px solid var(--border); border-radius: 999px;
  background: var(--surface-1);
}
.badge .dot { font-size: 12px; }
.badge.ok    .dot { color: var(--status-good); }
.badge.warn  .dot { color: var(--status-warning); }
.badge.breach .dot { color: var(--status-critical); }
main { padding: 8px 20px 28px; max-width: 1240px; margin: 0 auto; }
.tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(160px, 1fr)); gap: 12px; margin: 10px 0 14px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 10px 14px 12px;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 650; margin-top: 2px; }
.tile .value small { font-size: 14px; font-weight: 500; color: var(--text-secondary); }
.grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); gap: 12px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 14px;
}
.panel h2 { font-size: 13px; font-weight: 650; margin: 0 0 2px; }
.panel .meta { color: var(--text-muted); font-size: 11.5px; margin-bottom: 6px; }
.panel svg { display: block; width: 100%; height: 120px; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin-top: 6px; font-size: 12px; color: var(--text-secondary); }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.legend .swatch { width: 14px; height: 3px; border-radius: 2px; display: inline-block; }
table.slo { width: 100%; border-collapse: collapse; font-size: 13px; }
table.slo th { text-align: left; color: var(--text-muted); font-weight: 500; font-size: 11.5px; padding: 4px 8px 4px 0; border-bottom: 1px solid var(--grid); }
table.slo td { padding: 6px 8px 6px 0; border-bottom: 1px solid var(--grid); }
table.slo td.num { font-variant-numeric: tabular-nums; text-align: right; }
.state { display: inline-flex; align-items: center; gap: 6px; font-weight: 600; }
.state.ok     { color: var(--text-primary); }
.state.ok .dot     { color: var(--status-good); }
.state.warn .dot   { color: var(--status-warning); }
.state.breach .dot { color: var(--status-critical); }
#tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 4px 8px; font-size: 12px; box-shadow: 0 2px 8px rgba(0,0,0,0.15);
}
#tooltip .t { color: var(--text-muted); }
.empty { color: var(--text-muted); font-size: 12px; padding: 24px 0; text-align: center; }
</style>
</head>
<body>
<header>
  <h1>tsmo dashboard</h1>
  <span class="sub" id="sub">connecting…</span>
  <span class="badge ok" id="slo-badge"><span class="dot">●</span><span id="slo-badge-text">SLO —</span></span>
  <span class="spacer"></span>
  <button class="theme" id="theme-toggle" type="button">theme: auto</button>
</header>
<main>
  <div class="tiles">
    <div class="tile"><div class="label">Jobs / sec</div><div class="value" id="tile-rate">—</div></div>
    <div class="tile"><div class="label">Queue depth</div><div class="value" id="tile-queue">—</div></div>
    <div class="tile"><div class="label">Workers busy</div><div class="value" id="tile-workers">—</div></div>
    <div class="tile"><div class="label">Jobs done / failed</div><div class="value" id="tile-done">—</div></div>
    <div class="tile"><div class="label">Uptime</div><div class="value" id="tile-uptime">—</div></div>
  </div>
  <div class="grid">
    <div class="panel"><h2>Job throughput</h2><div class="meta">finished jobs per second · 15 min</div><div id="chart-rate"></div></div>
    <div class="panel"><h2>Queue depth</h2><div class="meta">jobs waiting for an executor</div><div id="chart-queue"></div></div>
    <div class="panel"><h2>Route p99 latency</h2><div class="meta">ms · top routes by current p99</div><div id="chart-p99"></div></div>
    <div class="panel"><h2>Worker utilization</h2><div class="meta">running / executors</div><div id="chart-util"></div></div>
    <div class="panel"><h2>Hypervolume</h2><div class="meta">anytime Pareto hypervolume per live job</div><div id="chart-hv"></div></div>
    <div class="panel"><h2>SLO burn rates</h2><div class="meta">fast 5 m / slow 1 h windows (clamped to history)</div><div id="slo-table"></div></div>
  </div>
</main>
<div id="tooltip"></div>
<script>
"use strict";
const SERIES_VARS = ["--series-1", "--series-2", "--series-3"];
const tooltip = document.getElementById("tooltip");

const themeBtn = document.getElementById("theme-toggle");
const THEMES = ["auto", "light", "dark"];
let themeIdx = 0;
themeBtn.addEventListener("click", () => {
  themeIdx = (themeIdx + 1) % THEMES.length;
  const t = THEMES[themeIdx];
  if (t === "auto") delete document.documentElement.dataset.theme;
  else document.documentElement.dataset.theme = t;
  themeBtn.textContent = "theme: " + t;
});

function cssVar(name) {
  return getComputedStyle(document.documentElement).getPropertyValue(name).trim();
}
function fmt(v) {
  if (!isFinite(v)) return "—";
  const a = Math.abs(v);
  if (a >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (a >= 1e4) return (v / 1e3).toFixed(1) + "k";
  if (a >= 100 || Number.isInteger(v)) return v.toFixed(0);
  if (a >= 1) return v.toFixed(2);
  return v.toPrecision(2);
}
function fmtDur(s) {
  if (!isFinite(s)) return "—";
  if (s < 120) return s.toFixed(0) + " s";
  if (s < 7200) return (s / 60).toFixed(1) + " m";
  if (s < 172800) return (s / 3600).toFixed(1) + " h";
  return (s / 86400).toFixed(1) + " d";
}
function fmtClock(ms) {
  return new Date(ms).toLocaleTimeString();
}

// One multi-series sparkline: 2px mean lines, recessive baseline, shared
// crosshair tooltip.  `series` = [{label, points:[[t,min,mean,max]]}].
function drawChart(el, series, opts) {
  opts = opts || {};
  const W = 560, H = 120, PAD = 6, PADB = 14;
  const drawn = series.filter(s => s.points.length > 0);
  if (drawn.length === 0) {
    el.innerHTML = '<div class="empty">no samples yet</div>';
    return;
  }
  let tMin = Infinity, tMax = -Infinity, vMin = Infinity, vMax = -Infinity;
  for (const s of drawn) for (const p of s.points) {
    tMin = Math.min(tMin, p[0]); tMax = Math.max(tMax, p[0]);
    vMin = Math.min(vMin, p[1]); vMax = Math.max(vMax, p[3]);
  }
  if (opts.zeroBase) vMin = Math.min(vMin, 0);
  if (opts.maxHint !== undefined) vMax = Math.max(vMax, opts.maxHint);
  if (vMax === vMin) vMax = vMin + 1;
  if (tMax === tMin) tMax = tMin + 1;
  const X = t => PAD + (t - tMin) / (tMax - tMin) * (W - 2 * PAD);
  const Y = v => (H - PADB) - (v - vMin) / (vMax - vMin) * (H - PAD - PADB);
  const ns = "http://www.w3.org/2000/svg";
  const svg = document.createElementNS(ns, "svg");
  svg.setAttribute("viewBox", `0 0 ${W} ${H}`);
  svg.setAttribute("preserveAspectRatio", "none");
  const mkLine = (x1, y1, x2, y2, stroke, w) => {
    const l = document.createElementNS(ns, "line");
    l.setAttribute("x1", x1); l.setAttribute("y1", y1);
    l.setAttribute("x2", x2); l.setAttribute("y2", y2);
    l.setAttribute("stroke", stroke); l.setAttribute("stroke-width", w);
    svg.appendChild(l); return l;
  };
  mkLine(PAD, Y(vMin), W - PAD, Y(vMin), cssVar("--baseline"), 1);
  const gy = (vMin + vMax) / 2;
  mkLine(PAD, Y(gy), W - PAD, Y(gy), cssVar("--grid"), 1);
  drawn.forEach((s, i) => {
    const color = cssVar(SERIES_VARS[i % SERIES_VARS.length]);
    const pl = document.createElementNS(ns, "polyline");
    pl.setAttribute("points",
        s.points.map(p => X(p[0]).toFixed(1) + "," + Y(p[1]).toFixed(1)).join(" "));
    pl.setAttribute("fill", "none");
    pl.setAttribute("stroke", color);
    pl.setAttribute("stroke-width", "2");
    pl.setAttribute("stroke-linejoin", "round");
    svg.appendChild(pl);
    s.color = color;
  });
  const axisColor = cssVar("--text-muted");
  const mkText = (x, y, anchor, text) => {
    const t = document.createElementNS(ns, "text");
    t.setAttribute("x", x); t.setAttribute("y", y);
    t.setAttribute("text-anchor", anchor);
    t.setAttribute("fill", axisColor);
    t.setAttribute("font-size", "10");
    t.textContent = text;
    svg.appendChild(t);
  };
  mkText(PAD, H - 3, "start", fmtClock(tMin));
  mkText(W - PAD, H - 3, "end", fmtClock(tMax));
  mkText(PAD, Y(vMax) + 9, "start", fmt(opts.percent ? vMax * 100 : vMax) + (opts.unit || ""));
  const cross = mkLine(0, PAD, 0, H - PADB, cssVar("--baseline"), 1);
  cross.setAttribute("visibility", "hidden");
  svg.addEventListener("mousemove", ev => {
    const r = svg.getBoundingClientRect();
    const t = tMin + (ev.clientX - r.left) / r.width * (tMax - tMin);
    let rows = [];
    for (const s of drawn) {
      let best = null, bd = Infinity;
      for (const p of s.points) {
        const d = Math.abs(p[0] - t);
        if (d < bd) { bd = d; best = p; }
      }
      if (best) rows.push({ s, p: best });
    }
    if (rows.length === 0) return;
    const x = X(rows[0].p[0]);
    cross.setAttribute("x1", x); cross.setAttribute("x2", x);
    cross.setAttribute("visibility", "visible");
    tooltip.innerHTML = '<div class="t">' + fmtClock(rows[0].p[0]) + "</div>" +
        rows.map(r =>
            '<div><span style="color:' + r.s.color + '">▬</span> ' +
            r.s.label + ": " +
            fmt(opts.percent ? r.p[2] * 100 : r.p[2]) + (opts.unit || "") +
            "</div>").join("");
    tooltip.style.display = "block";
    tooltip.style.left = Math.min(ev.clientX + 14, window.innerWidth - 180) + "px";
    tooltip.style.top = (ev.clientY + 12) + "px";
  });
  svg.addEventListener("mouseleave", () => {
    tooltip.style.display = "none";
    cross.setAttribute("visibility", "hidden");
  });
  el.innerHTML = "";
  el.appendChild(svg);
  if (drawn.length > 1) {
    const legend = document.createElement("div");
    legend.className = "legend";
    drawn.forEach(s => {
      const k = document.createElement("span");
      k.className = "key";
      k.innerHTML = '<span class="swatch" style="background:' + s.color + '"></span>' + s.label;
      legend.appendChild(k);
    });
    el.appendChild(legend);
  }
}

function latest(s) {
  return s && s.points.length ? s.points[s.points.length - 1][2] : NaN;
}

const STATE_ICON = { ok: "●", warn: "▲", breach: "✕" };

function renderSlo(hz) {
  const box = document.getElementById("slo-table");
  const badge = document.getElementById("slo-badge");
  const badgeText = document.getElementById("slo-badge-text");
  const slo = hz.slo;
  if (!slo) {
    box.innerHTML = '<div class="empty">SLO engine off (start with --slo)</div>';
    badge.className = "badge ok";
    badgeText.textContent = "SLO off";
    return;
  }
  badge.className = "badge " + slo.state;
  badge.querySelector(".dot").textContent = STATE_ICON[slo.state] || "●";
  badgeText.textContent = "SLO " + slo.state;
  let html = '<table class="slo"><tr><th>rule</th><th>state</th>' +
      '<th style="text-align:right">fast burn</th><th style="text-align:right">slow burn</th>' +
      '<th style="text-align:right">bad / total (fast)</th></tr>';
  for (const r of slo.rules) {
    html += "<tr><td>" + r.name + '</td><td><span class="state ' + r.state +
        '"><span class="dot">' + (STATE_ICON[r.state] || "●") + "</span>" + r.state +
        '</span></td><td class="num">' + fmt(r.fast_burn) +
        '</td><td class="num">' + fmt(r.slow_burn) +
        '</td><td class="num">' + fmt(r.bad_fast) + " / " + fmt(r.total_fast) +
        "</td></tr>";
  }
  box.innerHTML = html + "</table>";
}

async function tick() {
  let ts, hz;
  try {
    const [a, b] = await Promise.all([
      fetch("/api/timeseries?series=*&window=900&step=5"),
      fetch("/healthz"),
    ]);
    if (!a.ok) throw new Error("/api/timeseries " + a.status);
    ts = await a.json();
    hz = await b.json();
  } catch (e) {
    document.getElementById("sub").textContent = "disconnected: " + e.message;
    return;
  }
  const by = {};
  for (const s of ts.series) by[s.name] = s;
  const sha = (hz.build && hz.build.git_sha) || "";
  document.getElementById("sub").textContent =
      (sha ? sha + " · " : "") + "up " + fmtDur(hz.uptime_s) + " · " + fmtClock(ts.now_ms);

  const rate = by["jobs.finished"];
  document.getElementById("tile-rate").textContent = fmt(latest(rate) || 0);
  document.getElementById("tile-queue").textContent =
      fmt(latest(by["jobs.queue_depth"]) || 0);
  const running = latest(by["jobs.running"]), execs = latest(by["jobs.executors"]);
  document.getElementById("tile-workers").innerHTML =
      isFinite(running) ? fmt(running) + "<small> / " + fmt(execs) + "</small>" : "—";
  const done = hz.jobs ? hz.jobs.done : NaN, failed = hz.jobs ? hz.jobs.failed : NaN;
  document.getElementById("tile-done").innerHTML =
      isFinite(done) ? fmt(done) + "<small> / " + fmt(failed) + "</small>" : "—";
  document.getElementById("tile-uptime").textContent = fmtDur(hz.uptime_s);

  drawChart(document.getElementById("chart-rate"),
      [{ label: "jobs/sec", points: rate ? rate.points : [] }],
      { zeroBase: true });
  drawChart(document.getElementById("chart-queue"),
      [{ label: "queue depth", points: by["jobs.queue_depth"] ? by["jobs.queue_depth"].points : [] }],
      { zeroBase: true });
  const routes = Object.keys(by).filter(n => n.startsWith("http.p99_ms."))
      .sort((x, y) => latest(by[y]) - latest(by[x])).slice(0, 3);
  drawChart(document.getElementById("chart-p99"),
      routes.map(n => ({ label: n.slice("http.p99_ms.".length), points: by[n].points })),
      { zeroBase: true, unit: " ms" });
  drawChart(document.getElementById("chart-util"),
      [{ label: "utilization", points: by["jobs.utilization"] ? by["jobs.utilization"].points : [] }],
      { zeroBase: true, maxHint: 1, percent: true, unit: "%" });
  const hvNames = Object.keys(by)
      .filter(n => (n.startsWith("job.") && n.endsWith(".hv")) || n === "search.hv")
      .sort((x, y) => latest(by[y]) - latest(by[x])).slice(0, 3);
  drawChart(document.getElementById("chart-hv"),
      hvNames.map(n => ({
        label: n === "search.hv" ? "run" : n.slice(4, -3),
        points: by[n].points,
      })),
      {});
  renderSlo(hz);
}

tick();
setInterval(() => { if (!document.hidden) tick(); }, 2000);
</script>
</body>
</html>
)TSMODASH";

}  // namespace tsmo::obs
