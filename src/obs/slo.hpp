#pragma once

// Declarative SLOs with multi-window burn-rate evaluation (DESIGN.md §15).
//
// An SLO is an objective over an event ratio ("99.9 % of submits reach a
// first front in time") plus an error budget; a *burn rate* is how fast
// the budget is being spent relative to the rate that would exactly
// exhaust it over the SLO period:
//
//   burn(w) = (bad(w) / total(w)) / (1 - objective)
//
// with bad/total read as counter increases over window w from the tsdb.
// Following the multi-window multi-burn-rate pattern, a rule fires only
// when BOTH a fast window (default 5 m, catches pages fast) and a slow
// window (default 1 h, rejects blips) exceed their thresholds; the fast
// window alone yields a warning.  Windows are clamped to the data span
// actually retained, so a freshly started server can still page within
// seconds instead of waiting an hour of history.
//
// The engine is evaluated on the obs sampler thread right after each tsdb
// tick.  State transitions are *events*: they land in the flight recorder
// (kSloBreach / kSloRecover) and the structured log plane with ambient
// trace correlation; the current state is surfaced as tsmo_slo_* gauges on
// /metrics and an slo{} verdict block on /healthz.  Evaluation is pure
// observation — it never touches search state, so golden-seed fingerprints
// are identical with the engine on or off.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/tsdb.hpp"

namespace tsmo::obs {

enum class SloState : std::uint8_t { kOk = 0, kWarn = 1, kBreach = 2 };

const char* to_string(SloState state) noexcept;

/// One declarative rule: the ratio bad/total measured against an
/// objective, evaluated over a fast and a slow burn window.
struct SloRule {
  std::string name;          ///< e.g. "job_error_ratio"
  std::string bad_series;    ///< tsdb counter of bad events
  std::string total_series;  ///< tsdb counter of all events
  double objective = 0.99;   ///< target good fraction in (0, 1)
  double fast_window_s = 300.0;
  double slow_window_s = 3600.0;
  /// Burn-rate thresholds (Google SRE workbook defaults: 14.4 pages on
  /// 2 % budget/hour, 6 on 5 %/6 h).
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
  /// Events required in the fast window before the rule may fire; keeps a
  /// single early failure from paging an idle server.
  double min_events = 1.0;
};

/// Evaluated rule state at one tick.
struct SloVerdict {
  std::string name;
  SloState state = SloState::kOk;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  double bad_fast = 0.0;    ///< bad-event increase over the fast window
  double total_fast = 0.0;  ///< total-event increase over the fast window
  double objective = 0.0;
  std::uint64_t transitions = 0;  ///< state changes since start
  std::int64_t since_ms = 0;      ///< wall time of the last transition
};

/// The default rule set covering the job plane (ISSUE 10):
///   submit-to-first-front latency (bad = slower than target),
///   job error ratio, queue-full 429 ratio, stall-watchdog trips.
/// Series names match what ObsServer's sampler publishes.
std::vector<SloRule> default_slo_rules();

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloRule> rules = default_slo_rules());

  /// Evaluates every rule against `db` at wall time `now_ms`; emits
  /// flight + log events on state transitions.  Called from the sampler
  /// thread; verdicts() may be read concurrently.
  void evaluate(const tsdb::Tsdb& db, std::int64_t now_ms);

  /// Copy of the latest verdicts (any thread).
  std::vector<SloVerdict> verdicts() const;

  /// Worst state across rules (kOk when no rule has fired).
  SloState overall() const;

  const std::vector<SloRule>& rules() const noexcept { return rules_; }

 private:
  struct RuleState {
    SloState state = SloState::kOk;
    std::uint64_t transitions = 0;
    std::int64_t since_ms = 0;
  };

  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;

  mutable std::mutex mu_;  ///< guards verdicts_ (sampler writes, HTTP reads)
  std::vector<SloVerdict> verdicts_;
};

}  // namespace tsmo::obs
