#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>

#include "obs/buildinfo.hpp"
#include "util/progress.hpp"
#include "util/timer.hpp"

namespace tsmo::obs {

std::atomic<bool> FlightRecorder::g_enabled{false};

const char* to_string(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::kEngineStart:
      return "engine_start";
    case FlightKind::kEngineFinish:
      return "engine_finish";
    case FlightKind::kArchiveInsert:
      return "archive_insert";
    case FlightKind::kStall:
      return "stall";
    case FlightKind::kChannelHighWater:
      return "channel_high_water";
    case FlightKind::kSignal:
      return "signal";
    case FlightKind::kServeStart:
      return "serve_start";
    case FlightKind::kServeStop:
      return "serve_stop";
    case FlightKind::kStopRequest:
      return "stop_request";
    case FlightKind::kJobSubmit:
      return "job_submit";
    case FlightKind::kJobStart:
      return "job_start";
    case FlightKind::kJobFinish:
      return "job_finish";
    case FlightKind::kJobCancel:
      return "job_cancel";
    case FlightKind::kSloBreach:
      return "slo_breach";
    case FlightKind::kSloRecover:
      return "slo_recover";
    case FlightKind::kNote:
      return "note";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() : ring_(new Slot[kDefaultCapacity]) {}

FlightRecorder& FlightRecorder::instance() noexcept {
  // Leaked, like telemetry::Registry: hooks may fire during late teardown.
  static FlightRecorder* r = new FlightRecorder();
  return *r;
}

int FlightRecorder::configure_capacity(int slots) {
  const int cap = slots < 16 ? 16 : (slots > 65536 ? 65536 : slots);
  if (cap == capacity_.load(std::memory_order_relaxed)) {
    reset();
    return cap;
  }
  // Old ring leaks deliberately: a straggler hook that raced past the
  // documented "configure before enabling" contract still dereferences
  // valid memory instead of a freed block.
  ring_ = new Slot[static_cast<std::size_t>(cap)];
  capacity_.store(cap, std::memory_order_release);
  head_.store(0, std::memory_order_relaxed);
  return cap;
}

void FlightRecorder::record(FlightKind kind, const char* tag, std::int32_t a,
                            std::int32_t b, std::int64_t v,
                            std::uint64_t trace) noexcept {
  const std::uint64_t cap =
      static_cast<std::uint64_t>(capacity_.load(std::memory_order_acquire));
  const std::uint64_t seq =
      head_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = ring_[(seq - 1) % cap];
  // Mark in-progress so snapshot() skips the slot instead of reading a
  // half-written payload, then publish with a release store of the seq.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.ev.seq = seq;
  slot.ev.t_ns = now_ns();
  slot.ev.kind = kind;
  slot.ev.a = a;
  slot.ev.b = b;
  slot.ev.v = v;
  slot.ev.trace = trace;
  std::size_t n = 0;
  if (tag != nullptr) {
    for (; n + 1 < sizeof(slot.ev.tag) && tag[n] != '\0'; ++n) {
      slot.ev.tag[n] = tag[n];
    }
  }
  slot.ev.tag[n] = '\0';
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t cap =
      static_cast<std::uint64_t>(capacity_.load(std::memory_order_acquire));
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t kept = head < cap ? head : cap;
  std::vector<FlightEvent> out;
  out.reserve(kept);
  for (std::uint64_t seq = head - kept + 1; seq <= head; ++seq) {
    const Slot& slot = ring_[(seq - 1) % cap];
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    FlightEvent ev = slot.ev;
    // Re-check after the copy: a writer lapping us mid-copy tore the data.
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::reset() noexcept {
  const int cap = capacity_.load(std::memory_order_acquire);
  for (int i = 0; i < cap; ++i) {
    ring_[i].seq.store(0, std::memory_order_relaxed);
    ring_[i].ev = FlightEvent{};
  }
  head_.store(0, std::memory_order_relaxed);
  last_fingerprint_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Async-signal-safe postmortem writer.  Everything below restricts itself
// to write(2) plus integer formatting into a stack buffer — no allocation,
// no locks, no stdio.
// ---------------------------------------------------------------------------

namespace {

/// Buffered fd writer; flush loops over write(2), tolerating EINTR.
struct RawWriter {
  int fd;
  char buf[1024];
  std::size_t len = 0;

  explicit RawWriter(int fd_in) : fd(fd_in) {}

  void flush() noexcept {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;  // nothing recoverable mid-crash
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }

  void put(char c) noexcept {
    if (len == sizeof(buf)) flush();
    buf[len++] = c;
  }

  void str(const char* s) noexcept {
    for (; *s != '\0'; ++s) put(*s);
  }

  /// JSON string payload: escapes backslash/quote, drops control chars.
  void escaped(const char* s) noexcept {
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        put('\\');
        put(c);
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        put(c);
      }
    }
  }

  void u64(std::uint64_t v) noexcept {
    char tmp[24];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + (v % 10));
      v /= 10;
    } while (v != 0);
    while (n > 0) put(tmp[--n]);
  }

  void i64(std::int64_t v) noexcept {
    if (v < 0) {
      put('-');
      // Negate via unsigned to survive INT64_MIN.
      u64(~static_cast<std::uint64_t>(v) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }

  void hex64(std::uint64_t v) noexcept {
    str("0x");
    bool started = false;
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int digit = static_cast<int>((v >> shift) & 0xF);
      if (!started && digit == 0 && shift != 0) continue;
      started = true;
      put("0123456789abcdef"[digit]);
    }
  }
};

const char* signal_name(int signo) noexcept {
  switch (signo) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGINT:
      return "SIGINT";
    case SIGTERM:
      return "SIGTERM";
    case 0:
      return "none";
    default:
      return "other";
  }
}

/// fd the crash handlers dump to; -1 until install_crash_handlers().
std::atomic<int> g_postmortem_fd{-1};

void tsmo_crash_handler(int signo) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(FlightKind::kSignal, signal_name(signo), signo);
  const int fd = g_postmortem_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    rec.dump_postmortem(fd, signo);
    ::fsync(fd);
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (wait status stays truthful).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void FlightRecorder::dump_postmortem(int fd, int signo) const noexcept {
  RawWriter w(fd);
  w.str("{\n  \"signal\": ");
  w.i64(signo);
  w.str(",\n  \"signal_name\": \"");
  w.str(signal_name(signo));
  w.str("\",\n  \"t_ns\": ");
  w.u64(now_ns());
  w.str(",\n  \"build\": {\"git_sha\": \"");
  w.escaped(build_info().git_sha);
  w.str("\", \"compiler\": \"");
  w.escaped(build_info().compiler);
  w.str("\"},\n  \"trace_fingerprint\": \"");
  w.hex64(last_fingerprint_.load(std::memory_order_relaxed));
  w.str("\",\n  \"events_recorded\": ");
  w.u64(head_.load(std::memory_order_relaxed));
  w.str(",\n  \"events\": [");

  const std::uint64_t cap =
      static_cast<std::uint64_t>(capacity_.load(std::memory_order_relaxed));
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t kept = head < cap ? head : cap;
  bool first = true;
  for (std::uint64_t seq = head - kept + 1; seq <= head; ++seq) {
    const Slot& slot = ring_[(seq - 1) % cap];
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    if (!first) w.put(',');
    first = false;
    w.str("\n    {\"seq\": ");
    w.u64(slot.ev.seq);
    w.str(", \"t_ns\": ");
    w.u64(slot.ev.t_ns);
    w.str(", \"kind\": \"");
    w.str(to_string(slot.ev.kind));
    w.str("\", \"tag\": \"");
    w.escaped(slot.ev.tag);
    w.str("\", \"a\": ");
    w.i64(slot.ev.a);
    w.str(", \"b\": ");
    w.i64(slot.ev.b);
    w.str(", \"v\": ");
    w.i64(slot.ev.v);
    w.str(", \"trace\": \"");
    w.hex64(slot.ev.trace);
    w.str("\"}");
  }
  w.str("\n  ],\n  \"heartbeats\": [");

  const HeartbeatBoard* board = board_.load(std::memory_order_acquire);
  if (board != nullptr) {
    const int n = board->size();
    for (int i = 0; i < n; ++i) {
      std::uint64_t beat_ns = 0;
      std::int64_t progress = 0;
      std::uint64_t beats = 0;
      board->read_raw(i, beat_ns, progress, beats);
      if (i > 0) w.put(',');
      w.str("\n    {\"slot\": ");
      w.i64(i);
      w.str(", \"label\": \"");
      w.escaped(board->label_c_str(i));
      w.str("\", \"last_beat_ns\": ");
      w.u64(beat_ns);
      w.str(", \"progress\": ");
      w.i64(progress);
      w.str(", \"beats\": ");
      w.u64(beats);
      w.put('}');
    }
  }
  w.str("\n  ]\n}\n");
  w.flush();
}

bool install_crash_handlers(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  const int old = g_postmortem_fd.exchange(fd, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = tsmo_crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);

  FlightRecorder::set_enabled(true);
  return true;
}

bool write_postmortem(const std::string& path, int signo) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  FlightRecorder::instance().dump_postmortem(fd, signo);
  ::close(fd);
  return true;
}

}  // namespace tsmo::obs
