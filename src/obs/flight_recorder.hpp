#pragma once

// Crash-safe flight recorder (DESIGN.md §10).
//
// A fixed-size lock-free ring of recent structured events — engine
// lifecycle, archive insertions, stall verdicts, channel high-water marks,
// signals — fed from the same hook points the telemetry/progress layers
// already use.  Recording is one relaxed fetch_add plus plain stores on a
// slot the claiming thread owns, so it is cheap enough to leave on for any
// operational run and is *async-signal-safe* (no locks, no allocation):
// the SIGSEGV/SIGABRT/SIGBUS handlers installed by
// install_crash_handlers() replay the ring into a postmortem JSON document
// using only write(2) on a pre-opened file descriptor.
//
// Like telemetry and the convergence recorder, the flight recorder is pure
// observation: hooks are gated on a relaxed atomic `enabled()` check and
// never touch a search RNG or decision, so deterministic-mode fingerprints
// are bitwise identical with the recorder on or off (guarded by
// tests/test_golden_seed.cpp).

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tsmo {
class HeartbeatBoard;
}  // namespace tsmo

namespace tsmo::obs {

enum class FlightKind : std::uint8_t {
  kEngineStart = 0,
  kEngineFinish,
  kArchiveInsert,
  kStall,
  kChannelHighWater,
  kSignal,
  kServeStart,
  kServeStop,
  kStopRequest,
  kJobSubmit,
  kJobStart,
  kJobFinish,
  kJobCancel,
  kSloBreach,
  kSloRecover,
  kNote,
};

/// Human-readable name of a kind ("engine_start", ...); static storage.
const char* to_string(FlightKind kind) noexcept;

/// One ring entry.  POD with a short inline tag so recording never
/// allocates; the meaning of a/b/v depends on the kind:
///   kEngineStart       tag=engine   a=searchers b=workers
///   kEngineFinish      tag=engine   v=iterations
///   kArchiveInsert     a=searcher   b=operator (-1 init/restart)  v=iteration
///   kStall             tag=label    a=slot      v=progress
///   kChannelHighWater  tag=channel  v=depth
///   kSignal            a=signo
///   kServeStart/Stop   b=port
///   kJobSubmit         tag=job id   a=queue depth after admission
///   kJobStart          tag=job id   v=queue wait [ms]
///   kJobFinish         tag=job id   a=terminal state  v=run [ms]
///   kJobCancel         tag=job id   a=1 when it was already running
///   kSloBreach         tag=rule     a=state (1 warn, 2 breach)
///                                   v=fast-window burn rate ×1000
///   kSloRecover        tag=rule     v=fast-window burn rate ×1000
struct FlightEvent {
  std::uint64_t seq = 0;   ///< 1-based global claim order
  std::uint64_t t_ns = 0;  ///< now_ns() at record time
  FlightKind kind = FlightKind::kNote;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int64_t v = 0;
  std::uint64_t trace = 0;  ///< causal trace id (DESIGN.md §13); 0 = untraced
  char tag[16] = {};        ///< NUL-terminated, truncated label
};

/// Process-wide ring.  The singleton is leaked (like telemetry::Registry)
/// so hooks in thread teardown paths never touch a dead object.
class FlightRecorder {
 public:
  /// Default ring capacity; comfortably above the 64 events the postmortem
  /// contract promises.  Runtime-configurable via configure_capacity().
  static constexpr int kDefaultCapacity = 256;

  static FlightRecorder& instance() noexcept;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Global runtime switch (off by default); every hook checks this first.
  static bool enabled() noexcept {
    return g_enabled.load(std::memory_order_relaxed);
  }
  /// Flips the switch; returns the previous value.
  static bool set_enabled(bool on) noexcept {
    return g_enabled.exchange(on, std::memory_order_relaxed);
  }

  /// Appends one event.  Lock-free, allocation-free, async-signal-safe.
  /// `tag` may be nullptr; longer tags are truncated to fit FlightEvent.
  void record(FlightKind kind, const char* tag, std::int32_t a = 0,
              std::int32_t b = 0, std::int64_t v = 0,
              std::uint64_t trace = 0) noexcept;

  /// Resizes the ring, clearing it (clamped to [16, 65536]; TsmoParams::
  /// flight_slots / --flight-slots).  NOT safe concurrently with record()
  /// or a crash handler — call during startup, before enabling the
  /// recorder.  Returns the capacity actually applied.
  int configure_capacity(int slots);

  /// Current ring capacity.
  int capacity() const noexcept {
    return capacity_.load(std::memory_order_acquire);
  }

  /// Total events ever recorded (ring keeps the last capacity()).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Copies the ring, oldest first.  Events torn by a concurrent writer
  /// (seq mismatch) are skipped, so the result is always consistent.
  std::vector<FlightEvent> snapshot() const;

  /// Clears the ring (tests).  Not safe concurrently with record().
  void reset() noexcept;

  /// Board whose per-worker heartbeats the postmortem dump includes; the
  /// board must outlive any crash (engines register it for the run's
  /// duration and clear it afterwards).  Pass nullptr to detach.
  void set_heartbeat_board(const HeartbeatBoard* board) noexcept {
    board_.store(board, std::memory_order_release);
  }

  /// Last RunTrace fingerprint stamped by a searcher (0 until one is).
  void note_fingerprint(std::uint64_t fp) noexcept {
    last_fingerprint_.store(fp, std::memory_order_relaxed);
  }
  std::uint64_t last_fingerprint() const noexcept {
    return last_fingerprint_.load(std::memory_order_relaxed);
  }

  /// Writes the postmortem JSON document to `fd` using only
  /// async-signal-safe calls (write(2), no allocation, no locks):
  /// signal number/name, build info, last trace fingerprint, the ring
  /// contents and per-worker heartbeats.  `signo` 0 marks an on-demand
  /// (non-crash) dump.
  void dump_postmortem(int fd, int signo) const noexcept;

 private:
  FlightRecorder();
  ~FlightRecorder() = delete;  // leaked on purpose

  struct Slot {
    /// 0 while a writer fills the payload; the claiming seq afterwards.
    std::atomic<std::uint64_t> seq{0};
    FlightEvent ev;
  };

  static std::atomic<bool> g_enabled;

  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> last_fingerprint_{0};
  std::atomic<const HeartbeatBoard*> board_{nullptr};
  std::atomic<int> capacity_{kDefaultCapacity};
  Slot* ring_;  ///< heap array of capacity() slots; leaked with the singleton
};

/// Arms SIGSEGV/SIGABRT/SIGBUS: pre-opens `path` (truncating) and installs
/// handlers that dump the postmortem there before re-raising with the
/// default disposition (so exit status still reports the crash).  Also
/// enables the recorder.  Returns false when the file cannot be opened.
/// Calling it again re-points the dump at a new path.
bool install_crash_handlers(const std::string& path);

/// Writes a postmortem to `path` immediately (no crash required); used by
/// tests and by operators who want a dump of a healthy process.
bool write_postmortem(const std::string& path, int signo = 0);

// ---------------------------------------------------------------------------
// Hook helpers: one enabled() branch when the recorder is off.
// ---------------------------------------------------------------------------

inline void flight_engine_start(const char* engine, int searchers, int workers,
                                std::uint64_t trace = 0) noexcept {
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kEngineStart, engine,
                                      searchers, workers, 0, trace);
  }
}

inline void flight_engine_finish(const char* engine, std::int64_t iterations,
                                 std::uint64_t trace = 0) noexcept {
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kEngineFinish, engine, 0, 0,
                                      iterations, trace);
  }
}

inline void flight_archive_insert(int searcher, int op, std::int64_t iteration,
                                  std::uint64_t trace = 0) noexcept {
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kArchiveInsert, nullptr,
                                      searcher, op, iteration, trace);
  }
}

inline void flight_stall(const char* label, int slot,
                         std::int64_t progress) noexcept {
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kStall, label, slot, 0,
                                      progress);
  }
}

inline void flight_channel_high_water(const char* label,
                                      std::int64_t depth) noexcept {
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().record(FlightKind::kChannelHighWater, label, 0,
                                      0, depth);
  }
}

inline void flight_fingerprint(std::uint64_t fp) noexcept {
  if (FlightRecorder::enabled()) {
    FlightRecorder::instance().note_fingerprint(fp);
  }
}

}  // namespace tsmo::obs
