#pragma once

// Minimal embedded HTTP/1.1 server (DESIGN.md §10, §12).  POSIX sockets
// only — no third-party dependency.  One acceptor thread polls the
// listening socket (~200 ms tick so stop() is prompt) and hands accepted
// fds to a small fixed pool of handler threads over a bounded internal
// queue; when the queue is full the connection is refused with 503 from
// the acceptor itself so a scrape storm cannot pile up unbounded work.
//
// Originally read-only (GET exact-match routes); the job plane extended
// it with method-aware exact and prefix routes, request bodies (read up
// to Limits::max_body_bytes, 413 beyond), and per-read timeouts (408 when
// a slow client stalls mid-request, so it cannot wedge a handler thread).
// Responses are `Connection: close` — every request gets a fresh
// connection, which keeps the server stateless and the handler loop
// trivial.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/telemetry.hpp"  // kHistogramBuckets (RED latency buckets)

namespace tsmo::obs {

/// A parsed request: method + path with the query string split off, plus
/// the body (empty unless the client sent Content-Length).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
  std::string body;
};

/// A response under construction; handlers fill status/body/content_type
/// and may append extra headers (e.g. Retry-After).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
  /// Emitted as a Cache-Control header.  Every endpoint here is dynamic,
  /// so the default is no-store; the embedded dashboard asset overrides
  /// with max-age=60.  Empty suppresses the header.
  std::string cache_control = "no-store";
  /// Exemplar correlation (DESIGN.md §13): handlers that know which request
  /// they served stamp the causal trace id and a short label (the job id);
  /// the slowest-bucket samples of the per-route latency histograms on
  /// /metrics carry them as exemplars.
  std::uint64_t trace_id = 0;
  std::string trace_label;
};

/// RED (rate/errors/duration) accounting for one (route pattern, method)
/// pair.  The route label is always the *registered* pattern — never the
/// raw request path — so metric label cardinality stays bounded; requests
/// that fail before routing land under "(error)"/"(none)".
struct RouteStat {
  std::string route;
  std::string method;
  std::uint64_t count = 0;
  std::map<int, std::uint64_t> by_status;
  /// log2 latency buckets, same scheme as telemetry histograms (bucket 0 =
  /// exact zeros, bucket b >= 1 = [2^(b-1), 2^b) ns).
  std::array<std::uint64_t, telemetry::kHistogramBuckets> buckets{};
  std::uint64_t sum_ns = 0;
  /// Slowest request seen and its exemplar ids (trace 0 = none captured).
  std::uint64_t max_ns = 0;
  std::uint64_t exemplar_trace = 0;
  std::string exemplar_label;
};

class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, HttpResponse&)>;

  /// Defensive request limits: a client that sends more than
  /// `max_body_bytes` of body is refused with 413 (the connection closes
  /// without reading the excess), and one that stalls longer than
  /// `read_timeout_ms` mid-head or mid-body gets 408 instead of pinning a
  /// handler thread forever.
  struct Limits {
    std::size_t max_head_bytes = 16 * 1024;
    std::size_t max_body_bytes = 1 << 20;
    int read_timeout_ms = 5000;
  };

  /// `port` 0 asks the kernel for an ephemeral port (see port()).
  explicit HttpServer(int port, int handler_threads = 2);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match GET `path`.  Must be called
  /// before start().
  void route(std::string path, Handler handler);

  /// Registers `handler` for exact-match `method` (e.g. "POST") `path`.
  void route(std::string method, std::string path, Handler handler);

  /// Registers `handler` for every `method` request whose path starts
  /// with `prefix` (e.g. "DELETE" + "/jobs/").  Exact routes win over
  /// prefix routes; among prefix routes the longest match wins.
  void route_prefix(std::string method, std::string prefix, Handler handler);

  /// Replaces the request limits.  Must be called before start().
  void set_limits(const Limits& limits) { limits_ = limits; }
  const Limits& limits() const noexcept { return limits_; }

  /// Binds, listens and launches the acceptor + handler threads.
  /// Returns false (with reason()) if the socket setup fails.
  bool start();

  /// Graceful shutdown: stops accepting, drains queued connections,
  /// joins all threads.  Idempotent; also run by the destructor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (resolves ephemeral port 0 after start()).
  int port() const noexcept { return port_; }

  /// Human-readable failure reason after start() returns false.
  const std::string& reason() const noexcept { return reason_; }

  /// Total requests answered (any status); exposed for tests.
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Copy of the per-route RED stats (one entry per route/method pair that
  /// has served at least one request).
  std::vector<RouteStat> route_stats() const;

 private:
  struct Route {
    std::string method;
    std::string path;
    bool prefix = false;
    Handler handler;
  };

  void accept_loop();
  void handler_loop();
  void serve_connection(int fd);
  bool enqueue(int fd);
  /// Resolves and runs the handler; `route_label` reports the matched
  /// registered pattern ("(none)" when no path matched) for RED accounting.
  void dispatch(const HttpRequest& req, HttpResponse& res,
                std::string& route_label) const;
  void observe(const std::string& route, const std::string& method, int status,
               std::uint64_t dur_ns, std::uint64_t trace_id,
               const std::string& label);

  int port_;
  int handler_threads_;
  int listen_fd_ = -1;
  std::string reason_;
  Limits limits_;
  std::vector<Route> routes_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};

  mutable std::mutex stats_mu_;
  std::vector<RouteStat> stats_;

  // Bounded fd queue feeding the handler pool.
  static constexpr std::size_t kMaxQueued = 32;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;

  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

/// Blocking single-request client used by tests and the overhead bench:
/// GETs `path` from 127.0.0.1:`port`, returns the raw response (headers +
/// body) or an empty string on connect/IO failure.
std::string http_get(int port, const std::string& path,
                     int timeout_ms = 2000);

/// General single-request client: sends `method` `path` with `body`
/// (Content-Length included whenever method is not GET/HEAD), returns the
/// raw response or an empty string on connect/IO failure.
std::string http_request(int port, const std::string& method,
                         const std::string& path, const std::string& body,
                         const std::string& content_type =
                             "application/json; charset=utf-8",
                         int timeout_ms = 5000);

/// Splits a raw response from http_get() into (status code, body);
/// returns status 0 when the response is empty/unparseable.
int http_split_response(const std::string& raw, std::string& body);

/// Case-insensitive header lookup in a raw response; empty when absent.
std::string http_header(const std::string& raw, const std::string& name);

}  // namespace tsmo::obs
