#include "obs/job_queue.hpp"

namespace tsmo::obs {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

bool JobQueue::try_push(std::uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    queue_.push_back(id);
    ++pushed_;
  }
  cv_.notify_one();
  return true;
}

std::optional<std::uint64_t> JobQueue::pop_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  const std::uint64_t id = queue_.front();
  queue_.pop_front();
  ++popped_;
  return id;
}

std::vector<std::uint64_t> JobQueue::close() {
  std::vector<std::uint64_t> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    drained.assign(queue_.begin(), queue_.end());
    queue_.clear();
  }
  cv_.notify_all();
  return drained;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::uint64_t JobQueue::pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

std::uint64_t JobQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::uint64_t JobQueue::popped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return popped_;
}

}  // namespace tsmo::obs
