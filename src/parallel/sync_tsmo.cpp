#include "parallel/sync_tsmo.hpp"

#include <algorithm>
#include <memory>

#include "core/sequential_tsmo.hpp"
#include "obs/flight_recorder.hpp"
#include "parallel/worker_team.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo {

RunResult SyncTsmo::run() const {
  if (options_.deterministic) return run_deterministic();
  // Re-establish the caller's causal trace on this thread (DESIGN.md §13);
  // every span below parents under the request's job.run span.
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.sync");
  TSMO_PROFILE_FRAME("run.sync");
  TSMO_TELEMETRY_ONLY(
      if (telemetry::enabled()) {
        telemetry::Registry::instance().set_thread_label("sync master");
      })
  Timer timer;
  const int procs = std::max(2, processors_);
  const auto cands = make_candidate_list(*inst_, params_.candidate_k);
  SearchState state(*inst_, params_, Rng(params_.seed), cands);
  WorkerTeam team(*inst_, procs - 1, params_.seed, cands,
                  params_.batch_pricing);
  obs::flight_engine_start("sync", 1, team.num_workers(), params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("sync", 1, team.num_workers());
    team.enable_heartbeats(*options_.recorder, "sync worker");
    state.set_recorder(options_.recorder);
  }
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("sync");
    live = own_introspect.get();
  }
  if (live != nullptr) state.set_introspect(live);
  state.initialize();

  std::uint64_t ticket = 0;
  while (!state.budget_exhausted()) {
    TSMO_SPAN("sync.round");
    TSMO_PROFILE_FRAME("sync.round");
    const std::int64_t remaining =
        params_.max_evaluations - state.evaluations();
    const int want = static_cast<int>(std::min<std::int64_t>(
        params_.neighborhood_size, remaining));
    if (want <= 0) break;

    // Distribute the neighborhood among master + workers.
    const int worker_chunk = want / procs;
    int dispatched = 0;
    if (worker_chunk > 0) {
      for (int w = 0; w < team.num_workers(); ++w) {
        team.submit(GenRequest{state.current(), worker_chunk, ++ticket});
        ++dispatched;
      }
    }
    TSMO_COUNT_N("sync.chunks_dispatched", dispatched);
    const int master_chunk = want - dispatched * worker_chunk;
    std::vector<Candidate> candidates =
        state.generate_candidates(master_chunk);

    // Barrier: wait for every worker's part before selecting.
    {
      TSMO_SPAN_TIMED("sync.barrier", "sync.barrier_wait_ns");
      TSMO_PROFILE_FRAME("channel.wait");
      for (int w = 0; w < dispatched; ++w) {
        auto result = team.collect();
        if (!result) break;  // team shut down (cannot happen mid-run)
        state.charge_evaluations(
            static_cast<std::int64_t>(result->candidates.size()));
        candidates.insert(candidates.end(),
                          std::make_move_iterator(result->candidates.begin()),
                          std::make_move_iterator(result->candidates.end()));
      }
    }
    state.step_with_candidates(candidates);
  }
  obs::flight_engine_finish("sync", state.iterations(), params_.trace_id);
  if (options_.recorder) options_.recorder->engine_finished(state.iterations());
  return collect_result(state, "sync", timer.elapsed_seconds());
}

RunResult SyncTsmo::run_deterministic() const {
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.sync");
  TSMO_PROFILE_FRAME("run.sync");
  TSMO_TELEMETRY_ONLY(
      if (telemetry::enabled()) {
        telemetry::Registry::instance().set_thread_label("sync master");
      })
  Timer timer;
  const int procs = std::max(2, processors_);
  const int exec =
      options_.exec_threads > 0 ? options_.exec_threads : procs - 1;
  const auto cands = make_candidate_list(*inst_, params_.candidate_k);
  SearchState state(*inst_, params_, Rng(params_.seed), cands);
  WorkerTeam team(*inst_, exec, params_.seed, cands, params_.batch_pricing);
  obs::flight_engine_start("sync", 1, team.num_workers(), params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("sync", 1, team.num_workers());
    team.enable_heartbeats(*options_.recorder, "sync worker");
    state.set_recorder(options_.recorder);
  }
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("sync");
    live = own_introspect.get();
  }
  if (live != nullptr) state.set_introspect(live);
  state.initialize();
  // Chunk seeds come from a dedicated schedule stream, so the logical
  // candidate sequence depends only on (seed, procs) — not on exec width.
  Rng schedule(params_.seed ^ 0xdead5eedULL);

  std::uint64_t ticket = 0;
  std::vector<GenResult> results;
  while (!state.budget_exhausted()) {
    TSMO_SPAN("sync.round");
    TSMO_PROFILE_FRAME("sync.round");
    const std::int64_t remaining =
        params_.max_evaluations - state.evaluations();
    const int want = static_cast<int>(std::min<std::int64_t>(
        params_.neighborhood_size, remaining));
    if (want <= 0) break;

    // Fixed balanced `procs`-way partition of the neighborhood.
    int dispatched = 0;
    for (int c = 0; c < procs; ++c) {
      const int count = (c + 1) * want / procs - c * want / procs;
      if (count <= 0) continue;
      team.submit(
          GenRequest{state.current(), count, ++ticket, schedule.next(), true});
      ++dispatched;
    }
    state.trace().record_event(RunTrace::kTagDispatch, ticket,
                               static_cast<std::uint64_t>(dispatched));
    TSMO_COUNT_N("sync.chunks_dispatched", dispatched);

    // Barrier, as in the plain mode — but reassemble in ticket order so
    // the pool is independent of worker scheduling.
    results.clear();
    {
      TSMO_SPAN_TIMED("sync.barrier", "sync.barrier_wait_ns");
      TSMO_PROFILE_FRAME("channel.wait");
      for (int c = 0; c < dispatched; ++c) {
        auto result = team.collect();
        if (!result) break;  // team shut down (cannot happen mid-run)
        results.push_back(std::move(*result));
      }
    }
    std::sort(results.begin(), results.end(),
              [](const GenResult& a, const GenResult& b) {
                return a.ticket < b.ticket;
              });
    std::vector<Candidate> candidates;
    candidates.reserve(static_cast<std::size_t>(want));
    for (GenResult& r : results) {
      state.charge_evaluations(static_cast<std::int64_t>(r.candidates.size()));
      candidates.insert(candidates.end(),
                        std::make_move_iterator(r.candidates.begin()),
                        std::make_move_iterator(r.candidates.end()));
    }
    state.step_with_candidates(candidates);
  }
  obs::flight_engine_finish("sync", state.iterations(), params_.trace_id);
  if (options_.recorder) options_.recorder->engine_finished(state.iterations());
  return collect_result(state, "sync", timer.elapsed_seconds());
}

}  // namespace tsmo
