#include "parallel/sync_tsmo.hpp"

#include <algorithm>

#include "core/sequential_tsmo.hpp"
#include "parallel/worker_team.hpp"
#include "util/timer.hpp"

namespace tsmo {

RunResult SyncTsmo::run() const {
  Timer timer;
  const int procs = std::max(2, processors_);
  SearchState state(*inst_, params_, Rng(params_.seed));
  state.initialize();
  WorkerTeam team(*inst_, procs - 1, params_.seed);

  std::uint64_t ticket = 0;
  while (!state.budget_exhausted()) {
    const std::int64_t remaining =
        params_.max_evaluations - state.evaluations();
    const int want = static_cast<int>(std::min<std::int64_t>(
        params_.neighborhood_size, remaining));
    if (want <= 0) break;

    // Distribute the neighborhood among master + workers.
    const int worker_chunk = want / procs;
    int dispatched = 0;
    if (worker_chunk > 0) {
      for (int w = 0; w < team.num_workers(); ++w) {
        team.submit(GenRequest{state.current(), worker_chunk, ++ticket});
        ++dispatched;
      }
    }
    const int master_chunk = want - dispatched * worker_chunk;
    std::vector<Candidate> candidates =
        state.generate_candidates(master_chunk);

    // Barrier: wait for every worker's part before selecting.
    for (int w = 0; w < dispatched; ++w) {
      auto result = team.collect();
      if (!result) break;  // team shut down (cannot happen mid-run)
      state.charge_evaluations(
          static_cast<std::int64_t>(result->candidates.size()));
      candidates.insert(candidates.end(),
                        std::make_move_iterator(result->candidates.begin()),
                        std::make_move_iterator(result->candidates.end()));
    }
    state.step_with_candidates(candidates);
  }
  return collect_result(state, "sync", timer.elapsed_seconds());
}

}  // namespace tsmo
