#pragma once

// Unbounded MPMC channel (mutex + condition variable).
//
// This is the only inter-thread communication primitive in the library:
// master->worker generation requests, worker->master results, and the
// multisearch mailboxes are all channels.  Close semantics: push after
// close is refused; pop drains remaining items, then reports closed.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tsmo {

template <typename T>
class Channel {
 public:
  /// Enqueues an item; returns false (dropping the item) when closed.
  bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Blocks until an item arrives or the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Blocks up to `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, timeout,
                 [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace tsmo
