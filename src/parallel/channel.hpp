#pragma once

// Unbounded MPMC channel (mutex + condition variable).
//
// This is the only inter-thread communication primitive in the library:
// master->worker generation requests, worker->master results, and the
// multisearch mailboxes are all channels.  Close semantics: push after
// close is refused; pop drains remaining items, then reports closed.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo {

template <typename T>
class Channel {
 public:
  /// Registers this channel with the telemetry layer under `label`: a
  /// `channel.<label>.depth` gauge tracking queue depth and a
  /// `channel.<label>.wait_ns` histogram of blocking-pop wait times.
  /// Also names the channel for the flight recorder's high-water events.
  /// Call before handing the channel to other threads.
  void enable_telemetry(const std::string& label) {
    label_ = label;
#if TSMO_TELEMETRY_ENABLED
    auto& reg = telemetry::Registry::instance();
    depth_gauge_ = reg.gauge("channel." + label + ".depth");
    wait_hist_ = reg.histogram("channel." + label + ".wait_ns");
#endif
  }

  /// Enqueues an item; returns false (dropping the item) when closed.
  bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
      note_depth(queue_.size());
      note_high_water(queue_.size());
    }
    cv_.notify_one();
    return true;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    note_depth(queue_.size());
    return item;
  }

  /// Blocks until an item arrives or the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    const std::uint64_t wait_start = wait_begin();
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    wait_end(wait_start);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    note_depth(queue_.size());
    return item;
  }

  /// Blocks up to `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    const std::uint64_t wait_start = wait_begin();
    cv_.wait_for(lock, timeout,
                 [this] { return !queue_.empty() || closed_; });
    wait_end(wait_start);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    note_depth(queue_.size());
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  bool empty() const { return size() == 0; }

 private:
#if TSMO_TELEMETRY_ENABLED
  // Called with mutex_ held, so gauge updates are ordered per channel.
  void note_depth(std::size_t depth) noexcept {
    if (depth_gauge_.valid() && telemetry::enabled()) {
      telemetry::Registry::instance().gauge_set(
          depth_gauge_, static_cast<std::int64_t>(depth));
    }
  }
  std::uint64_t wait_begin() const noexcept {
    return wait_hist_.valid() && telemetry::enabled() ? now_ns() : 0;
  }
  void wait_end(std::uint64_t wait_start) const noexcept {
    if (wait_start != 0) {
      telemetry::Registry::instance().record_ns(wait_hist_,
                                                now_ns() - wait_start);
    }
  }
  telemetry::GaugeId depth_gauge_{};
  telemetry::HistogramId wait_hist_{};
#else
  void note_depth(std::size_t) noexcept {}
  std::uint64_t wait_begin() const noexcept { return 0; }
  void wait_end(std::uint64_t) const noexcept {}
#endif

  // Called with mutex_ held.  Depth grows one push at a time, so checking
  // for exact powers of two records each doubling of the backlog exactly
  // once per new high-water mark (named channels only).
  void note_high_water(std::size_t depth) noexcept {
    if (depth <= high_water_) return;
    high_water_ = depth;
    if (depth >= 2 && (depth & (depth - 1)) == 0 && !label_.empty()) {
      obs::flight_channel_high_water(label_.c_str(),
                                     static_cast<std::int64_t>(depth));
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  std::string label_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace tsmo
