#include "parallel/async_tsmo.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "core/sequential_tsmo.hpp"
#include "obs/flight_recorder.hpp"
#include "parallel/worker_team.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo {

RunResult AsyncTsmo::run() const {
  if (options_.deterministic) return run_deterministic();
  // Re-establish the caller's causal trace on this thread (DESIGN.md §13);
  // every span below parents under the request's job.run span.
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.async");
  TSMO_PROFILE_FRAME("run.async");
  TSMO_TELEMETRY_ONLY(
      if (telemetry::enabled()) {
        telemetry::Registry::instance().set_thread_label("async master");
      })
  Timer timer;
  const int procs = std::max(2, processors_);
  const auto cands = make_candidate_list(*inst_, params_.candidate_k);
  SearchState state(*inst_, params_, Rng(params_.seed), cands);
  WorkerTeam team(*inst_, procs - 1, params_.seed, cands,
                  params_.batch_pricing);
  obs::flight_engine_start("async", 1, team.num_workers(), params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("async", 1, team.num_workers());
    team.enable_heartbeats(*options_.recorder, "async worker");
    state.set_recorder(options_.recorder);
    if (options_.stall_restart) {
      options_.recorder->set_stall_action(
          [&state](int) { state.request_restart(); });
    }
  }
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("async");
    live = own_introspect.get();
  }
  if (live != nullptr) state.set_introspect(live);
  state.initialize();

  const int chunk = std::max(1, params_.neighborhood_size / procs);
  std::vector<bool> busy(static_cast<std::size_t>(team.num_workers()),
                         false);
  std::int64_t inflight = 0;  // evaluations requested but not yet returned
  std::vector<Candidate> pool;
  std::uint64_t ticket = 0;

  auto drain = [&](std::optional<GenResult> result) {
    while (result) {
      busy[static_cast<std::size_t>(result->worker_id)] = false;
      inflight -= static_cast<std::int64_t>(chunk);
      state.charge_evaluations(
          static_cast<std::int64_t>(result->candidates.size()));
      pool.insert(pool.end(),
                  std::make_move_iterator(result->candidates.begin()),
                  std::make_move_iterator(result->candidates.end()));
      result = team.try_collect();
    }
  };

  while (!state.budget_exhausted()) {
    // Dispatch fresh chunks (on the current solution) to idle workers, as
    // long as the budget leaves room for the in-flight work.
    for (int w = 0; w < team.num_workers(); ++w) {
      const std::int64_t headroom = params_.max_evaluations -
                                    state.evaluations() - inflight;
      if (busy[static_cast<std::size_t>(w)] || headroom < chunk) continue;
      team.submit(GenRequest{state.current(), chunk, ++ticket});
      busy[static_cast<std::size_t>(w)] = true;
      inflight += chunk;
      TSMO_COUNT("async.chunks_dispatched");
    }

    // Master's own share of the neighborhood.
    const std::int64_t remaining =
        params_.max_evaluations - state.evaluations();
    const int master_chunk =
        static_cast<int>(std::min<std::int64_t>(chunk, remaining));
    if (master_chunk > 0) {
      std::vector<Candidate> mine = state.generate_candidates(master_chunk);
      pool.insert(pool.end(), std::make_move_iterator(mine.begin()),
                  std::make_move_iterator(mine.end()));
    }
    drain(team.try_collect());

    // --- Algorithm 2: decide whether to keep waiting. ---
    {
      TSMO_SPAN_TIMED("async.wait", "async.wait_ns");
      TSMO_PROFILE_FRAME("channel.wait");
      const Timer wait_timer;
      for (;;) {
        const bool c1 = std::any_of(busy.begin(), busy.end(),
                                    [](bool b) { return !b; });
        const bool c2 = std::any_of(
            pool.begin(), pool.end(), [&](const Candidate& c) {
              return dominates(c.obj, state.current()->objectives());
            });
        const bool c3 = wait_timer.elapsed_ms() >= options_.wait_too_long_ms;
        const bool c4 = state.budget_exhausted();
        if (c1 || c2 || c3 || c4) break;
        drain(team.collect_for(std::chrono::microseconds(200)));
      }
    }

    if (pool.empty() && state.budget_exhausted()) break;
    state.step_with_candidates(pool);
    // The considered pool is consumed; results still in flight will join
    // the pool of the iteration in which they arrive.
    pool.clear();
  }

  if (options_.recorder) {
    // Clearing the action blocks out any in-flight watchdog invocation,
    // so it can no longer touch `state` after this line.
    options_.recorder->set_stall_action(nullptr);
    options_.recorder->engine_finished(state.iterations());
  }
  obs::flight_engine_finish("async", state.iterations(), params_.trace_id);
  return collect_result(state, "async", timer.elapsed_seconds());
}

RunResult AsyncTsmo::run_deterministic() const {
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.async");
  TSMO_PROFILE_FRAME("run.async");
  TSMO_TELEMETRY_ONLY(
      if (telemetry::enabled()) {
        telemetry::Registry::instance().set_thread_label("async master");
      })
  Timer timer;
  const int procs = std::max(2, processors_);
  const int exec =
      options_.exec_threads > 0 ? options_.exec_threads : procs - 1;
  const auto cands = make_candidate_list(*inst_, params_.candidate_k);
  SearchState state(*inst_, params_, Rng(params_.seed), cands);
  WorkerTeam team(*inst_, exec, params_.seed, cands, params_.batch_pricing);
  obs::flight_engine_start("async", 1, team.num_workers(), params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("async", 1, team.num_workers());
    team.enable_heartbeats(*options_.recorder, "async worker");
    state.set_recorder(options_.recorder);
  }
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("async");
    live = own_introspect.get();
  }
  if (live != nullptr) state.set_introspect(live);
  state.initialize();
  Rng schedule(params_.seed ^ 0xa57c5eedULL);

  const int chunk = std::max(1, params_.neighborhood_size / procs);
  std::vector<Candidate> deferred;  // straggler chunks, one iteration late
  std::uint64_t ticket = 0;
  std::vector<GenResult> results;

  while (!state.budget_exhausted()) {
    // Dispatch the full chunk set within the remaining budget (deferred
    // candidates are already charged, so headroom needs no inflight term).
    std::int64_t headroom = params_.max_evaluations - state.evaluations();
    std::int64_t total =
        std::min<std::int64_t>(static_cast<std::int64_t>(procs) * chunk,
                               headroom);
    int dispatched = 0;
    while (total > 0) {
      const int count = static_cast<int>(std::min<std::int64_t>(chunk, total));
      team.submit(
          GenRequest{state.current(), count, ++ticket, schedule.next(), true});
      total -= count;
      ++dispatched;
    }
    state.trace().record_event(RunTrace::kTagDispatch, ticket,
                               static_cast<std::uint64_t>(dispatched));
    TSMO_COUNT_N("async.chunks_dispatched", dispatched);

    // Logical collection: every chunk completes, reassembled in ticket
    // order; the seeded straggler model, not arrival order, decides which
    // chunks miss this iteration's selection.
    results.clear();
    {
      TSMO_SPAN_TIMED("async.wait", "async.wait_ns");
      TSMO_PROFILE_FRAME("channel.wait");
      for (int c = 0; c < dispatched; ++c) {
        auto result = team.collect();
        if (!result) break;  // team shut down (cannot happen mid-run)
        results.push_back(std::move(*result));
      }
    }
    std::sort(results.begin(), results.end(),
              [](const GenResult& a, const GenResult& b) {
                return a.ticket < b.ticket;
              });
    std::vector<Candidate> pool = std::move(deferred);
    deferred.clear();
    bool leading = true;
    for (GenResult& r : results) {
      state.charge_evaluations(static_cast<std::int64_t>(r.candidates.size()));
      const bool defer =
          !leading && schedule.chance(options_.defer_probability);
      state.trace().record_event(RunTrace::kTagDefer, r.ticket,
                                 defer ? 1 : 0);
      if (defer) TSMO_COUNT("async.chunks_deferred");
      auto& sink = defer ? deferred : pool;
      sink.insert(sink.end(), std::make_move_iterator(r.candidates.begin()),
                  std::make_move_iterator(r.candidates.end()));
      leading = false;
    }
    state.step_with_candidates(pool);
  }
  // Chunks still deferred at exhaustion are dropped, like in-flight
  // results at termination of the wall-clock mode.
  obs::flight_engine_finish("async", state.iterations(), params_.trace_id);
  if (options_.recorder) options_.recorder->engine_finished(state.iterations());
  return collect_result(state, "async", timer.elapsed_seconds());
}

}  // namespace tsmo
