#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "util/telemetry.hpp"

namespace tsmo {

ThreadPool::ThreadPool(unsigned num_threads) {
  tasks_.enable_telemetry("pool_tasks");
  const unsigned n = std::max(1u, num_threads);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] {
      while (auto task = tasks_.pop()) {
        TSMO_COUNT("pool.tasks");
        TSMO_TIME_SCOPE("pool.task_ns");
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace tsmo
