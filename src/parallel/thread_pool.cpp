#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace tsmo {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] {
      while (auto task = tasks_.pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace tsmo
