#include "parallel/multisearch_tsmo.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>

#include "core/sequential_tsmo.hpp"
#include "parallel/channel.hpp"
#include "util/timer.hpp"

namespace tsmo {

RunResult merge_results(const std::vector<RunResult>& results,
                        std::string algorithm) {
  RunResult merged;
  merged.algorithm = std::move(algorithm);
  for (const RunResult& r : results) {
    merged.evaluations += r.evaluations;
    merged.iterations += r.iterations;
    merged.restarts += r.restarts;
    merged.wall_seconds = std::max(merged.wall_seconds, r.wall_seconds);
    merged.sim_seconds = std::max(merged.sim_seconds, r.sim_seconds);
    for (std::size_t i = 0; i < r.front.size(); ++i) {
      bool dominated = false;
      for (const Objectives& o : merged.front) {
        if (weakly_dominates(o, r.front[i])) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      for (std::size_t j = merged.front.size(); j-- > 0;) {
        if (dominates(r.front[i], merged.front[j])) {
          merged.front.erase(merged.front.begin() +
                             static_cast<std::ptrdiff_t>(j));
          merged.solutions.erase(merged.solutions.begin() +
                                 static_cast<std::ptrdiff_t>(j));
        }
      }
      merged.front.push_back(r.front[i]);
      merged.solutions.push_back(r.solutions[i]);
    }
  }
  return merged;
}

MultisearchResult MultisearchTsmo::run() const {
  Timer timer;
  const int procs = std::max(2, processors_);
  const auto n = static_cast<std::size_t>(procs);

  // One mailbox per searcher; solutions are exchanged by value.
  std::vector<std::unique_ptr<Channel<Solution>>> mailboxes;
  mailboxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mailboxes.push_back(std::make_unique<Channel<Solution>>());
  }

  std::vector<RunResult> per_searcher(n);
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> messages_accepted{0};

  auto searcher = [&](int id) {
    Timer local_timer;
    Rng rng(params_.seed + static_cast<std::uint64_t>(id) * 0x51ed2701ULL);
    // Searcher 0 keeps the base parameters; others perturb (§III.E).
    TsmoParams p = id == 0 ? params_ : params_.perturbed(rng);
    p.max_evaluations = params_.max_evaluations;  // full budget each
    p.seed = rng.next();

    SearchState state(*inst_, p, Rng(p.seed));
    state.initialize();

    // Random private communication list over the other searchers.
    std::vector<int> comm;
    for (int k = 0; k < procs; ++k) {
      if (k != id) comm.push_back(k);
    }
    for (std::size_t k = comm.size(); k > 1; --k) {
      std::swap(comm[k - 1], comm[rng.below(k)]);
    }

    bool initial_phase = true;
    while (!state.budget_exhausted()) {
      // Incorporate peer solutions before the next step.
      while (auto received = mailboxes[static_cast<std::size_t>(id)]
                                 ->try_pop()) {
        if (state.receive(*received)) {
          messages_accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }

      const std::int64_t remaining =
          p.max_evaluations - state.evaluations();
      const int want = static_cast<int>(
          std::min<std::int64_t>(p.neighborhood_size, remaining));
      if (want <= 0) break;
      const auto candidates = state.generate_candidates(want);
      const auto outcome = state.step_with_candidates(candidates);

      if (initial_phase && state.iterations_since_improvement() >=
                               p.restart_after) {
        initial_phase = false;  // stagnated once: start collaborating
      }
      if (!initial_phase && outcome.archive_improved && !comm.empty()) {
        const int target = comm.front();
        std::rotate(comm.begin(), comm.begin() + 1, comm.end());
        mailboxes[static_cast<std::size_t>(target)]->push(*state.current());
        messages_sent.fetch_add(1, std::memory_order_relaxed);
      }
    }
    per_searcher[static_cast<std::size_t>(id)] = collect_result(
        state, "coll[" + std::to_string(id) + "]",
        local_timer.elapsed_seconds());
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (int id = 0; id < procs; ++id) {
      threads.emplace_back(searcher, id);
    }
  }  // join

  MultisearchResult result;
  result.per_searcher = std::move(per_searcher);
  result.merged = merge_results(result.per_searcher, "coll");
  result.merged.wall_seconds = timer.elapsed_seconds();
  result.messages_sent = messages_sent.load();
  result.messages_accepted = messages_accepted.load();
  return result;
}

}  // namespace tsmo
