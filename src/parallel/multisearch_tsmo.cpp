#include "parallel/multisearch_tsmo.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>

#include "core/sequential_tsmo.hpp"
#include "obs/flight_recorder.hpp"
#include "parallel/channel.hpp"
#include "parallel/thread_pool.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace tsmo {

RunResult merge_results(const std::vector<RunResult>& results,
                        std::string algorithm) {
  RunResult merged;
  merged.algorithm = std::move(algorithm);
  for (const RunResult& r : results) {
    merged.evaluations += r.evaluations;
    merged.iterations += r.iterations;
    merged.restarts += r.restarts;
    merged.wall_seconds = std::max(merged.wall_seconds, r.wall_seconds);
    merged.sim_seconds = std::max(merged.sim_seconds, r.sim_seconds);
    merged.introspect.merge(r.introspect);
    for (std::size_t i = 0; i < r.front.size(); ++i) {
      // The weak-dominance check also rejects exact duplicates, so an
      // objective vector reached by several searchers keeps exactly one
      // merged entry — and therefore one attribution row (first searcher
      // wins) — never double-counting a shared point.
      bool dominated = false;
      for (const Objectives& o : merged.front) {
        if (weakly_dominates(o, r.front[i])) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      for (std::size_t j = merged.front.size(); j-- > 0;) {
        if (dominates(r.front[i], merged.front[j])) {
          merged.front.erase(merged.front.begin() +
                             static_cast<std::ptrdiff_t>(j));
          merged.solutions.erase(merged.solutions.begin() +
                                 static_cast<std::ptrdiff_t>(j));
          merged.attribution.erase(merged.attribution.begin() +
                                   static_cast<std::ptrdiff_t>(j));
        }
      }
      merged.front.push_back(r.front[i]);
      merged.solutions.push_back(r.solutions[i]);
      merged.attribution.push_back(i < r.attribution.size()
                                       ? r.attribution[i]
                                       : ArchiveAttribution{});
    }
  }
  merged.archive_fingerprint = archive_fingerprint(merged.front);
  for (const RunResult& r : results) {
    merged.trace_fingerprint ^= r.trace_fingerprint;  // order-independent
  }
  merged.refresh_throughput();
  return merged;
}

MultisearchResult MultisearchTsmo::run() const {
  if (options_.deterministic) return run_deterministic();
  // Re-establish the caller's causal trace on this thread (DESIGN.md §13).
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.coll");
  TSMO_PROFILE_FRAME("run.coll");
  // Searcher threads re-establish the ambient context captured here, so
  // their iteration spans parent under the run.coll span.
  const telemetry::TraceContext searcher_ctx = telemetry::current_trace();
  Timer timer;
  const int procs = std::max(2, processors_);
  const auto n = static_cast<std::size_t>(procs);

  // One mailbox per searcher; solutions are exchanged by value.
  std::vector<std::unique_ptr<Channel<Solution>>> mailboxes;
  mailboxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mailboxes.push_back(std::make_unique<Channel<Solution>>());
    TSMO_TELEMETRY_ONLY(if (telemetry::enabled()) {
      mailboxes.back()->enable_telemetry("mailbox" + std::to_string(i));
    })
  }

  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("coll");
    live = own_introspect.get();
  }

  std::vector<RunResult> per_searcher(n);
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> messages_accepted{0};
  // candidate_k is never perturbed, so every searcher shares one list.
  const auto shared_cands = make_candidate_list(*inst_, params_.candidate_k);

  auto searcher = [&](int id) {
    telemetry::TraceScope searcher_scope(searcher_ctx);
    Timer local_timer;
    TSMO_TELEMETRY_ONLY(if (telemetry::enabled()) {
      telemetry::Registry::instance().set_thread_label(
          "coll searcher " + std::to_string(id));
    })
    Rng rng(params_.seed + static_cast<std::uint64_t>(id) * 0x51ed2701ULL);
    // Searcher 0 keeps the base parameters; others perturb (§III.E).
    TsmoParams p = id == 0 ? params_ : params_.perturbed(rng);
    p.max_evaluations = params_.max_evaluations;  // full budget each
    p.seed = rng.next();

    SearchState state(*inst_, p, Rng(p.seed), shared_cands);
    state.set_trace_id(id);
    if (options_.recorder) state.set_recorder(options_.recorder);
    if (live != nullptr) state.set_introspect(live);
    state.initialize();

    // Random private communication list over the other searchers.
    std::vector<int> comm;
    for (int k = 0; k < procs; ++k) {
      if (k != id) comm.push_back(k);
    }
    for (std::size_t k = comm.size(); k > 1; --k) {
      std::swap(comm[k - 1], comm[rng.below(k)]);
    }

    bool initial_phase = true;
    while (!state.budget_exhausted()) {
      TSMO_SPAN("coll.iteration");
      TSMO_PROFILE_FRAME("coll.iteration");
      // Incorporate peer solutions before the next step.
      while (auto received = mailboxes[static_cast<std::size_t>(id)]
                                 ->try_pop()) {
        TSMO_COUNT("coll.messages_received");
        if (state.receive(*received)) {
          TSMO_COUNT("coll.messages_accepted");
          messages_accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }

      const std::int64_t remaining =
          p.max_evaluations - state.evaluations();
      const int want = static_cast<int>(
          std::min<std::int64_t>(p.neighborhood_size, remaining));
      if (want <= 0) break;
      const auto candidates = state.generate_candidates(want);
      const auto outcome = state.step_with_candidates(candidates);

      if (initial_phase && state.iterations_since_improvement() >=
                               p.restart_after) {
        initial_phase = false;  // stagnated once: start collaborating
      }
      if (!initial_phase && outcome.archive_improved && !comm.empty()) {
        const int target = comm.front();
        std::rotate(comm.begin(), comm.begin() + 1, comm.end());
        state.trace().record_event(
            RunTrace::kTagSend, static_cast<std::uint64_t>(target),
            hash_objectives(state.current()->objectives()));
        mailboxes[static_cast<std::size_t>(target)]->push(*state.current());
        TSMO_COUNT("coll.messages_sent");
        messages_sent.fetch_add(1, std::memory_order_relaxed);
      }
    }
    per_searcher[static_cast<std::size_t>(id)] = collect_result(
        state, "coll[" + std::to_string(id) + "]",
        local_timer.elapsed_seconds());
  };

  obs::flight_engine_start("coll", procs, 0, params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("coll", procs, 0);
  }
  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (int id = 0; id < procs; ++id) {
      threads.emplace_back(searcher, id);
    }
  }  // join

  MultisearchResult result;
  result.per_searcher = std::move(per_searcher);
  result.merged = merge_results(result.per_searcher, "coll");
  result.merged.wall_seconds = timer.elapsed_seconds();
  result.merged.refresh_throughput();
  result.messages_sent = messages_sent.load();
  result.messages_accepted = messages_accepted.load();
  obs::flight_engine_finish("coll", result.merged.iterations, params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_finished(result.merged.iterations);
  }
  return result;
}

MultisearchResult MultisearchTsmo::run_deterministic() const {
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.coll");
  TSMO_PROFILE_FRAME("run.coll");
  // Pool threads re-establish this ambient context per round step.
  const telemetry::TraceContext searcher_ctx = telemetry::current_trace();
  Timer timer;
  const int procs = std::max(2, processors_);
  const auto n = static_cast<std::size_t>(procs);
  const int exec = options_.exec_threads > 0 ? options_.exec_threads : procs;

  // Per-searcher state; each round's step touches only its own slot, so
  // rounds can fan out over any number of threads.
  struct Searcher {
    std::unique_ptr<SearchState> state;
    TsmoParams p;
    std::vector<int> comm;
    std::vector<Solution> inbox;  ///< delivered between rounds
    std::vector<std::pair<int, Solution>> outbox;
    Timer local_timer;
    bool initial_phase = true;
    bool done = false;
    std::int64_t sent = 0;
    std::int64_t accepted = 0;
    RunResult result;
  };
  std::vector<Searcher> searchers(n);
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("coll");
    live = own_introspect.get();
  }
  const auto shared_cands = make_candidate_list(*inst_, params_.candidate_k);
  for (int id = 0; id < procs; ++id) {
    Searcher& s = searchers[static_cast<std::size_t>(id)];
    Rng rng(params_.seed + static_cast<std::uint64_t>(id) * 0x51ed2701ULL);
    s.p = id == 0 ? params_ : params_.perturbed(rng);
    s.p.max_evaluations = params_.max_evaluations;
    s.p.seed = rng.next();
    s.state = std::make_unique<SearchState>(*inst_, s.p, Rng(s.p.seed),
                                            shared_cands);
    s.state->set_trace_id(id);
    if (options_.recorder) s.state->set_recorder(options_.recorder);
    if (live != nullptr) s.state->set_introspect(live);
    for (int k = 0; k < procs; ++k) {
      if (k != id) s.comm.push_back(k);
    }
    for (std::size_t k = s.comm.size(); k > 1; --k) {
      std::swap(s.comm[k - 1], s.comm[rng.below(k)]);
    }
  }

  obs::flight_engine_start("coll", procs, 0, params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("coll", procs, 0);
  }
  ThreadPool pool(static_cast<unsigned>(std::max(1, exec)));
  {
    std::vector<std::future<void>> init;
    init.reserve(n);
    for (Searcher& s : searchers) {
      init.push_back(pool.submit([&s] { s.state->initialize(); }));
    }
    for (auto& f : init) f.get();
  }

  auto step_one = [&](int id) {
    telemetry::TraceScope searcher_scope(searcher_ctx);
    Searcher& s = searchers[static_cast<std::size_t>(id)];
    TSMO_SPAN("coll.iteration");
    TSMO_PROFILE_FRAME("coll.iteration");
    // Deliver peer solutions in the deterministic inter-round order.
    for (const Solution& sol : s.inbox) {
      TSMO_COUNT("coll.messages_received");
      if (s.state->receive(sol)) {
        TSMO_COUNT("coll.messages_accepted");
        ++s.accepted;
      }
    }
    s.inbox.clear();

    const std::int64_t remaining =
        s.p.max_evaluations - s.state->evaluations();
    const int want = static_cast<int>(
        std::min<std::int64_t>(s.p.neighborhood_size, remaining));
    if (s.state->budget_exhausted() || want <= 0) {
      s.done = true;
      s.result = collect_result(*s.state, "coll[" + std::to_string(id) + "]",
                                s.local_timer.elapsed_seconds());
      return;
    }
    const auto candidates = s.state->generate_candidates(want);
    const auto outcome = s.state->step_with_candidates(candidates);

    if (s.initial_phase &&
        s.state->iterations_since_improvement() >= s.p.restart_after) {
      s.initial_phase = false;
    }
    if (!s.initial_phase && outcome.archive_improved && !s.comm.empty()) {
      const int target = s.comm.front();
      std::rotate(s.comm.begin(), s.comm.begin() + 1, s.comm.end());
      s.state->trace().record_event(
          RunTrace::kTagSend, static_cast<std::uint64_t>(target),
          hash_objectives(s.state->current()->objectives()));
      s.outbox.emplace_back(target, *s.state->current());
      TSMO_COUNT("coll.messages_sent");
      ++s.sent;
    }
  };

  for (;;) {
    std::vector<int> alive;
    for (int id = 0; id < procs; ++id) {
      if (!searchers[static_cast<std::size_t>(id)].done) alive.push_back(id);
    }
    if (alive.empty()) break;
    std::vector<std::future<void>> round;
    round.reserve(alive.size());
    for (int id : alive) {
      round.push_back(pool.submit([&step_one, id] { step_one(id); }));
    }
    for (auto& f : round) f.get();
    // Messages sent in round r reach their peer at the start of round
    // r+1, routed in sender-id order; a finished receiver drops them.
    for (Searcher& s : searchers) {
      for (auto& [target, sol] : s.outbox) {
        Searcher& t = searchers[static_cast<std::size_t>(target)];
        if (!t.done) t.inbox.push_back(std::move(sol));
      }
      s.outbox.clear();
    }
  }

  MultisearchResult result;
  result.per_searcher.reserve(n);
  for (Searcher& s : searchers) {
    result.messages_sent += s.sent;
    result.messages_accepted += s.accepted;
    result.per_searcher.push_back(std::move(s.result));
  }
  result.merged = merge_results(result.per_searcher, "coll");
  result.merged.wall_seconds = timer.elapsed_seconds();
  result.merged.refresh_throughput();
  obs::flight_engine_finish("coll", result.merged.iterations, params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_finished(result.merged.iterations);
  }
  return result;
}

}  // namespace tsmo
