#include "parallel/worker_team.hpp"

#include <algorithm>
#include <string>

#include "moo/anytime.hpp"
#include "operators/neighborhood.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo {

WorkerTeam::WorkerTeam(const Instance& inst, int num_workers,
                       std::uint64_t seed,
                       std::shared_ptr<const CandidateList> cands,
                       bool batch_pricing)
    : inst_(&inst),
      cands_(std::move(cands)),
      batch_pricing_(batch_pricing),
      trace_ctx_(telemetry::current_trace()) {
  requests_.enable_telemetry("gen_requests");
  results_.enable_telemetry("gen_results");
  Rng master(seed ^ 0x5eedF00dULL);
  const int n = std::max(1, num_workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i, rng = master.split()]() mutable { worker_loop(i, rng); });
  }
}

WorkerTeam::~WorkerTeam() {
  requests_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  results_.close();
}

void WorkerTeam::enable_heartbeats(ConvergenceRecorder& recorder,
                                   const std::string& prefix) {
  heartbeat_slots_.clear();
  heartbeat_slots_.reserve(threads_.size());
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    heartbeat_slots_.push_back(
        recorder.register_worker(prefix + " " + std::to_string(i)));
  }
  recorder_.store(&recorder, std::memory_order_release);
}

void WorkerTeam::worker_loop(int id, Rng rng) {
  // Worker threads inherit the team's trace context so their spans carry
  // the request's trace id and parent under the engine's run span.
  telemetry::TraceScope trace_scope(trace_ctx_);
  MoveEngine engine(*inst_);
  if (cands_) engine.set_candidate_list(cands_.get());
  // Workers keep the default equal operator weights and local screen (as
  // before); only the sampling mode and pricing mode are configurable.
  NeighborhoodGenerator generator(engine, {1, 1, 1, 1, 1},
                                  FeasibilityScreen::Local, batch_pricing_);
  std::int64_t chunks_done = 0;
#if TSMO_TELEMETRY_ENABLED
  // Per-worker utilization gauges use dynamic names ("worker.3.busy_ns"),
  // so they go through the Registry API instead of the literal-name macros.
  // gauge_add keeps them cumulative across teams sharing a worker id.
  telemetry::GaugeId busy_gauge{};
  telemetry::GaugeId idle_gauge{};
  bool registered = false;
#endif
  for (;;) {
#if TSMO_TELEMETRY_ENABLED
    const bool tel = telemetry::enabled();
    if (tel && !registered) {
      auto& reg = telemetry::Registry::instance();
      const std::string prefix = "worker." + std::to_string(id);
      busy_gauge = reg.gauge(prefix + ".busy_ns");
      idle_gauge = reg.gauge(prefix + ".idle_ns");
      reg.set_thread_label("worker " + std::to_string(id));
      registered = true;
    }
    const std::uint64_t wait_start = tel ? now_ns() : 0;
#endif
    auto request = [this] {
      TSMO_PROFILE_FRAME("channel.wait");
      return requests_.pop();
    }();
#if TSMO_TELEMETRY_ENABLED
    const std::uint64_t work_start = tel ? now_ns() : 0;
    if (tel) {
      auto& reg = telemetry::Registry::instance();
      reg.gauge_add(idle_gauge,
                    static_cast<std::int64_t>(work_start - wait_start));
      TSMO_COUNT_N("workers.idle_ns", work_start - wait_start);
    }
#endif
    if (!request) break;
    GenResult result;
    result.ticket = request->ticket;
    result.worker_id = id;
    {
      TSMO_PROFILE_FRAME("worker.chunk");
      if (request->seeded) {
        Rng task_rng(request->seed);
        result.candidates = make_candidates(generator, request->base,
                                            request->count, task_rng);
      } else {
        result.candidates = make_candidates(generator, request->base,
                                            request->count, rng);
      }
    }
    // Attribution: candidates remember which worker evaluated them.
    for (Candidate& c : result.candidates) {
      c.origin = static_cast<std::int16_t>(id);
    }
    if (ConvergenceRecorder* rec =
            recorder_.load(std::memory_order_acquire)) {
      ++chunks_done;
      rec->worker_heartbeat(heartbeat_slots_[static_cast<std::size_t>(id)],
                            chunks_done);
    }
#if TSMO_TELEMETRY_ENABLED
    if (tel) {
      const std::uint64_t work_end = now_ns();
      auto& reg = telemetry::Registry::instance();
      reg.gauge_add(busy_gauge,
                    static_cast<std::int64_t>(work_end - work_start));
      reg.record_span("worker.chunk", work_start, work_end - work_start,
                      telemetry::current_trace());
      TSMO_COUNT("worker.chunks");
      TSMO_COUNT_N("workers.busy_ns", work_end - work_start);
    }
#endif
    results_.push(std::move(result));
  }
}

}  // namespace tsmo
