#include "parallel/worker_team.hpp"

#include <algorithm>

#include "operators/neighborhood.hpp"

namespace tsmo {

WorkerTeam::WorkerTeam(const Instance& inst, int num_workers,
                       std::uint64_t seed)
    : inst_(&inst) {
  Rng master(seed ^ 0x5eedF00dULL);
  const int n = std::max(1, num_workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i, rng = master.split()]() mutable { worker_loop(i, rng); });
  }
}

WorkerTeam::~WorkerTeam() {
  requests_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  results_.close();
}

void WorkerTeam::worker_loop(int id, Rng rng) {
  MoveEngine engine(*inst_);
  NeighborhoodGenerator generator(engine);
  while (auto request = requests_.pop()) {
    GenResult result;
    result.ticket = request->ticket;
    result.worker_id = id;
    if (request->seeded) {
      Rng task_rng(request->seed);
      result.candidates = make_candidates(generator, request->base,
                                          request->count, task_rng);
    } else {
      result.candidates = make_candidates(generator, request->base,
                                          request->count, rng);
    }
    results_.push(std::move(result));
  }
}

}  // namespace tsmo
