#pragma once

// Collaborative multisearch TSMO (§III.E).
//
// P searchers run concurrently.  Searcher 0 keeps the base parameters; the
// others perturb each parameter with N(0, p/4) noise.  After an initial
// phase (which ends the first time a searcher goes `restart_after`
// iterations without improving its archive), a searcher that adds a
// solution to its Pareto archive sends that solution to exactly one peer —
// the head of its private communication list, which is then rotated.  The
// receiver tries to store it in its M_nondom, from where a restart can pick
// it up ("good solutions find their way to other searchers who can explore
// this region as well").
//
// Budget semantics: every searcher owns a full evaluation budget — the
// paper observes the collaborative variant "performs a sequential
// algorithm with communication between the processors", with runtime
// *growing* in P while quality improves.  The reported front is the merged
// non-dominated union of all archives.

#include <vector>

#include "core/run_result.hpp"
#include "core/search_state.hpp"

namespace tsmo {

struct MultisearchResult {
  RunResult merged;                     ///< non-dominated union
  std::vector<RunResult> per_searcher;  ///< individual archives
  std::int64_t messages_sent = 0;
  std::int64_t messages_accepted = 0;  ///< stored in a receiver's M_nondom
};

struct MultisearchOptions {
  /// Deterministic replay mode (DESIGN.md §7): the searchers advance in
  /// lock-step rounds; solutions sent in round r are delivered at the
  /// start of round r+1, routed in sender-id order.  Each round's
  /// per-searcher iterations touch only that searcher's state, so they
  /// can execute on any number of threads without changing the result —
  /// the same seed fingerprints identically for any `exec_threads`.
  bool deterministic = false;
  /// Threads executing the lock-step rounds; 0 selects one per searcher.
  /// Execution width only — never affects the result.
  int exec_threads = 0;
  /// Anytime convergence recorder (DESIGN.md §9); each searcher attaches
  /// under its searcher id.  Observation only, so deterministic
  /// fingerprints are identical with or without it.  Must outlive the run.
  ConvergenceRecorder* recorder = nullptr;
  /// Live search-introspection hub (DESIGN.md §14); every searcher
  /// registers its own slot.  Observation only.  When null and
  /// params.introspect is set, the run creates its own.  Must outlive
  /// the run.
  LiveIntrospect* introspect = nullptr;
};

class MultisearchTsmo {
 public:
  MultisearchTsmo(const Instance& inst, const TsmoParams& params,
                  int processors, MultisearchOptions options = {})
      : inst_(&inst),
        params_(params),
        processors_(processors),
        options_(options) {}

  MultisearchResult run() const;

 private:
  MultisearchResult run_deterministic() const;

  const Instance* inst_;
  TsmoParams params_;
  int processors_;
  MultisearchOptions options_;
};

/// Non-dominated union of several results (fronts and solutions); counters
/// are summed, wall time is the max (parallel composition).
RunResult merge_results(const std::vector<RunResult>& results,
                        std::string algorithm);

}  // namespace tsmo
