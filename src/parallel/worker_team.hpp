#pragma once

// Persistent neighborhood-generation workers for the master-worker
// algorithms (§III.C, §III.D): each worker owns its MoveEngine (the engine
// has mutable scratch buffers and is not shareable), its generator, and an
// independent RNG stream.  The master hands out GenRequests; workers push
// back GenResults.  Bases travel as shared_ptr<const Solution>, which is
// safe to read concurrently.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/candidate.hpp"
#include "parallel/channel.hpp"
#include "util/telemetry.hpp"
#include "vrptw/candidate_list.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

class ConvergenceRecorder;

struct GenRequest {
  std::shared_ptr<const Solution> base;
  int count = 0;
  std::uint64_t ticket = 0;  ///< echoed back; lets the master age results
  /// Deterministic mode: when `seeded`, the worker draws from a fresh
  /// Rng(seed) instead of its persistent per-thread stream, making the
  /// result a pure function of (seed, base, count) — independent of which
  /// worker runs it and of how many workers exist.
  std::uint64_t seed = 0;
  bool seeded = false;
};

struct GenResult {
  std::vector<Candidate> candidates;
  std::uint64_t ticket = 0;
  int worker_id = -1;
};

class WorkerTeam {
 public:
  /// Spawns `num_workers` threads; RNG streams are derived from `seed` by
  /// repeated jumps, so results are deterministic per (seed, num_workers)
  /// up to arrival order.  `cands` (optional) switches every worker's
  /// engine to candidate-list pruned sampling; the immutable list is
  /// shared read-only across the team and with the master's SearchState.
  /// `batch_pricing` selects the workers' pricing mode (bitwise-identical
  /// results either way).
  WorkerTeam(const Instance& inst, int num_workers, std::uint64_t seed,
             std::shared_ptr<const CandidateList> cands = nullptr,
             bool batch_pricing = true);

  /// Closes the request channel and joins the workers.
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  int num_workers() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Registers one heartbeat slot per worker ("<prefix> N") on the
  /// recorder's board; workers then beat after every finished chunk, with
  /// their chunk count as the progress gauge.  Call before the first
  /// submit(); the recorder must outlive the team.
  void enable_heartbeats(ConvergenceRecorder& recorder,
                         const std::string& prefix);

  /// Hands a generation request to the next free worker (requests are
  /// pulled from a shared channel, so any idle worker picks it up).
  void submit(GenRequest request) { requests_.push(std::move(request)); }

  /// Non-blocking collection of one finished result.
  std::optional<GenResult> try_collect() { return results_.try_pop(); }

  /// Blocks up to `timeout` for a result.
  template <typename Rep, typename Period>
  std::optional<GenResult> collect_for(
      std::chrono::duration<Rep, Period> timeout) {
    return results_.pop_for(timeout);
  }

  /// Blocks until a result arrives (only valid while requests are
  /// outstanding; otherwise it would block until destruction).
  std::optional<GenResult> collect() { return results_.pop(); }

 private:
  void worker_loop(int id, Rng rng);

  const Instance* inst_;
  std::shared_ptr<const CandidateList> cands_;  ///< outlives the workers
  bool batch_pricing_ = true;
  /// The spawning thread's ambient trace context, captured before the
  /// worker threads start so each worker_loop can re-establish it — worker
  /// spans then parent under the engine's run span (DESIGN.md §13).
  telemetry::TraceContext trace_ctx_;
  Channel<GenRequest> requests_;
  Channel<GenResult> results_;
  /// Heartbeat wiring (set once by enable_heartbeats before any request
  /// flows; workers only read it while processing a request).
  std::atomic<ConvergenceRecorder*> recorder_{nullptr};
  std::vector<int> heartbeat_slots_;
  std::vector<std::thread> threads_;
};

}  // namespace tsmo
