#pragma once

// Asynchronous master-worker TSMO (§III.D, Algorithm 2).
//
// The master distributes neighborhood chunks but "does not wait in all
// cases for the workers to continue": after finishing its own chunk it
// consults a decision function and proceeds to selection with whatever has
// been evaluated so far.  Straggler results join the candidate pool of a
// later iteration, so the search "can select solutions that were neighbors
// of a previous solution" — the dynamics illustrated in the paper's Fig. 1.
//
// Decision function (Algorithm 2) — continue when any of:
//   c1  at least one worker is idle (finished its chunk)
//   c2  some collected neighbor dominates the current solution
//   c3  the master has waited too long
//   c4  the evaluation budget is exhausted

#include "core/run_result.hpp"
#include "core/search_state.hpp"

namespace tsmo {

struct AsyncOptions {
  /// c3 threshold: how long the master keeps waiting for worker results
  /// before proceeding with the partial pool.
  double wait_too_long_ms = 2.0;

  /// Deterministic replay mode (DESIGN.md §7).  The wall-clock decision
  /// function is replaced by a seeded logical schedule: every iteration
  /// dispatches the full `processors`-way chunk set with schedule-derived
  /// seeds, reassembles the results in ticket order, and a seeded
  /// straggler model defers a random subset of non-leading chunks to the
  /// next iteration's pool — reproducing the paper's "neighbors of a
  /// previous solution" dynamics (Fig. 1) without arrival-order
  /// dependence.  The same seed then fingerprints identically for any
  /// `exec_threads`.
  bool deterministic = false;
  /// Worker threads in deterministic mode; 0 selects `processors - 1`.
  /// Execution width only — never affects the result.
  int exec_threads = 0;
  /// Deterministic straggler model: probability that a non-leading chunk
  /// arrives one iteration late.
  double defer_probability = 0.25;
  /// Anytime convergence recorder (DESIGN.md §9); observation only, so
  /// deterministic fingerprints are identical with or without it.  Must
  /// outlive the run.
  ConvergenceRecorder* recorder = nullptr;
  /// Live search-introspection hub (DESIGN.md §14); observation only.
  /// When null and params.introspect is set, the run creates its own.
  /// Must outlive the run.
  LiveIntrospect* introspect = nullptr;
  /// Opt-in stall reaction: when the recorder's watchdog flags the master
  /// searcher, route the verdict into the existing diversification path
  /// (restart from the memories on the next step).  Ignored without a
  /// recorder or in deterministic mode; off by default because it makes
  /// the search wall-clock dependent.
  bool stall_restart = false;
};

class AsyncTsmo {
 public:
  AsyncTsmo(const Instance& inst, const TsmoParams& params, int processors,
            AsyncOptions options = {})
      : inst_(&inst),
        params_(params),
        processors_(processors),
        options_(options) {}

  RunResult run() const;

 private:
  RunResult run_deterministic() const;

  const Instance* inst_;
  TsmoParams params_;
  int processors_;
  AsyncOptions options_;
};

}  // namespace tsmo
