#pragma once

// Minimal fixed-size thread pool over Channel<task>.  General-purpose
// substrate (tests, examples); the master-worker algorithms use the more
// specialized WorkerTeam, which keeps per-worker RNG streams and engines.

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "parallel/channel.hpp"

namespace tsmo {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);

  /// Joins all workers after draining outstanding tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Schedules a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    tasks_.push([task] { (*task)(); });
    return fut;
  }

 private:
  Channel<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
};

}  // namespace tsmo
