#pragma once

// Threaded hybrid of the paper's §V future work: islands of asynchronous
// master-worker groups (§III.D) that exchange improving solutions like the
// collaborative multisearch (§III.E).  The deterministic virtual-clock
// counterpart is run_sim_hybrid() in src/sim.
//
// Topology: `islands` master threads, each driving `procs_per_island - 1`
// generation workers (total processors = islands * procs_per_island).
// Every island owns a full evaluation budget, perturbs its parameters like
// a multisearch searcher (island 0 keeps the base), and after its initial
// phase sends archive improvements to one peer island at a time through a
// rotating communication list.

#include "core/run_result.hpp"
#include "core/search_state.hpp"
#include "parallel/multisearch_tsmo.hpp"

namespace tsmo {

struct HybridOptions {
  /// Deterministic replay mode (DESIGN.md §7): islands advance in
  /// lock-step rounds (messages sent in round r arrive in round r+1,
  /// sender-ordered) and each island runs the deterministic async chunk
  /// schedule — seeded chunk RNGs plus a seeded straggler model — with
  /// the chunks evaluated inline on the island's thread.  The same seed
  /// fingerprints identically for any `exec_threads`.
  bool deterministic = false;
  /// Threads executing island rounds; 0 selects one per island.
  /// Execution width only — never affects the result.
  int exec_threads = 0;
  /// Straggler model within each island (see AsyncOptions).
  double defer_probability = 0.25;
  /// Anytime convergence recorder (DESIGN.md §9); each island attaches
  /// under its island id and its generation workers get heartbeat gauges.
  /// Observation only, so deterministic fingerprints are identical with or
  /// without it.  Must outlive the run.
  ConvergenceRecorder* recorder = nullptr;
  /// Live search-introspection hub (DESIGN.md §14); every island's
  /// searcher registers its own slot.  Observation only.  When null and
  /// params.introspect is set, the run creates its own.  Must outlive
  /// the run.
  LiveIntrospect* introspect = nullptr;
  /// Opt-in stall reaction: a watchdog-flagged island searcher restarts
  /// from its memories on its next step (the engine's existing
  /// diversification path).  Ignored without a recorder or in
  /// deterministic mode; off by default (wall-clock dependent).
  bool stall_restart = false;
};

class HybridTsmo {
 public:
  HybridTsmo(const Instance& inst, const TsmoParams& params, int islands,
             int procs_per_island, HybridOptions options = {})
      : inst_(&inst),
        params_(params),
        islands_(islands),
        procs_per_island_(procs_per_island),
        options_(options) {}

  MultisearchResult run() const;

 private:
  MultisearchResult run_deterministic() const;

  const Instance* inst_;
  TsmoParams params_;
  int islands_;
  int procs_per_island_;
  HybridOptions options_;
};

}  // namespace tsmo
