#pragma once

// Threaded hybrid of the paper's §V future work: islands of asynchronous
// master-worker groups (§III.D) that exchange improving solutions like the
// collaborative multisearch (§III.E).  The deterministic virtual-clock
// counterpart is run_sim_hybrid() in src/sim.
//
// Topology: `islands` master threads, each driving `procs_per_island - 1`
// generation workers (total processors = islands * procs_per_island).
// Every island owns a full evaluation budget, perturbs its parameters like
// a multisearch searcher (island 0 keeps the base), and after its initial
// phase sends archive improvements to one peer island at a time through a
// rotating communication list.

#include "core/run_result.hpp"
#include "core/search_state.hpp"
#include "parallel/multisearch_tsmo.hpp"

namespace tsmo {

class HybridTsmo {
 public:
  HybridTsmo(const Instance& inst, const TsmoParams& params, int islands,
             int procs_per_island)
      : inst_(&inst),
        params_(params),
        islands_(islands),
        procs_per_island_(procs_per_island) {}

  MultisearchResult run() const;

 private:
  const Instance* inst_;
  TsmoParams params_;
  int islands_;
  int procs_per_island_;
};

}  // namespace tsmo
