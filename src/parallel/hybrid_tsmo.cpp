#include "parallel/hybrid_tsmo.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "core/sequential_tsmo.hpp"
#include "obs/flight_recorder.hpp"
#include "parallel/channel.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/worker_team.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace tsmo {

MultisearchResult HybridTsmo::run() const {
  if (options_.deterministic) return run_deterministic();
  // Re-establish the caller's causal trace on this thread (DESIGN.md §13).
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.hybrid");
  TSMO_PROFILE_FRAME("run.hybrid");
  // Island threads re-establish the ambient context captured here, so
  // their iteration and worker spans parent under the run.hybrid span.
  const telemetry::TraceContext island_ctx = telemetry::current_trace();
  Timer timer;
  const int k = std::max(2, islands_);
  const int procs = std::max(2, procs_per_island_);
  const auto n = static_cast<std::size_t>(k);

  std::vector<std::unique_ptr<Channel<Solution>>> mailboxes;
  mailboxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mailboxes.push_back(std::make_unique<Channel<Solution>>());
    TSMO_TELEMETRY_ONLY(if (telemetry::enabled()) {
      mailboxes.back()->enable_telemetry("island" + std::to_string(i));
    })
  }
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("hybrid");
    live = own_introspect.get();
  }
  std::vector<RunResult> per_island(n);
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> messages_accepted{0};

  // Stall-action registry: islands sign their SearchState in while it is
  // alive; the watchdog action (running under the recorder lock) routes a
  // flagged island id to a restart request through this table.
  std::mutex stall_mutex;
  std::vector<SearchState*> stall_reg(n, nullptr);
  // candidate_k is never perturbed, so every island shares one list.
  const auto shared_cands = make_candidate_list(*inst_, params_.candidate_k);
  obs::flight_engine_start("hybrid", k, k * (procs - 1), params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("hybrid", k, k * (procs - 1));
    if (options_.stall_restart) {
      options_.recorder->set_stall_action([&stall_mutex, &stall_reg](int id) {
        std::lock_guard<std::mutex> lock(stall_mutex);
        if (id >= 0 && id < static_cast<int>(stall_reg.size()) &&
            stall_reg[static_cast<std::size_t>(id)]) {
          stall_reg[static_cast<std::size_t>(id)]->request_restart();
        }
      });
    }
  }

  auto island = [&](int id) {
    telemetry::TraceScope island_scope(island_ctx);
    Timer local_timer;
    TSMO_TELEMETRY_ONLY(if (telemetry::enabled()) {
      telemetry::Registry::instance().set_thread_label(
          "hybrid island " + std::to_string(id));
    })
    Rng rng(params_.seed + static_cast<std::uint64_t>(id) * 0x9d2c5680ULL);
    TsmoParams p = id == 0 ? params_ : params_.perturbed(rng);
    p.max_evaluations = params_.max_evaluations;
    p.seed = rng.next();

    SearchState state(*inst_, p, Rng(p.seed), shared_cands);
    state.set_trace_id(id);
    WorkerTeam team(*inst_, procs - 1, p.seed, shared_cands,
                    p.batch_pricing);
    if (options_.recorder) {
      state.set_recorder(options_.recorder);
      team.enable_heartbeats(*options_.recorder,
                             "island " + std::to_string(id) + " worker");
      std::lock_guard<std::mutex> lock(stall_mutex);
      stall_reg[static_cast<std::size_t>(id)] = &state;
    }
    if (live != nullptr) state.set_introspect(live);
    state.initialize();

    std::vector<int> comm;
    for (int j = 0; j < k; ++j) {
      if (j != id) comm.push_back(j);
    }
    for (std::size_t j = comm.size(); j > 1; --j) {
      std::swap(comm[j - 1], comm[rng.below(j)]);
    }

    // Asynchronous master loop (as in AsyncTsmo) + island exchange.
    const int chunk = std::max(1, p.neighborhood_size / procs);
    std::vector<bool> busy(static_cast<std::size_t>(team.num_workers()),
                           false);
    std::int64_t inflight = 0;
    std::vector<Candidate> pool;
    std::uint64_t ticket = 0;
    bool initial_phase = true;

    auto drain = [&](std::optional<GenResult> result) {
      while (result) {
        busy[static_cast<std::size_t>(result->worker_id)] = false;
        inflight -= chunk;
        state.charge_evaluations(
            static_cast<std::int64_t>(result->candidates.size()));
        pool.insert(pool.end(),
                    std::make_move_iterator(result->candidates.begin()),
                    std::make_move_iterator(result->candidates.end()));
        result = team.try_collect();
      }
    };

    while (!state.budget_exhausted()) {
      TSMO_SPAN("hybrid.iteration");
      TSMO_PROFILE_FRAME("hybrid.iteration");
      while (auto incoming = mailboxes[static_cast<std::size_t>(id)]
                                 ->try_pop()) {
        TSMO_COUNT("hybrid.messages_received");
        if (state.receive(*incoming)) {
          TSMO_COUNT("hybrid.messages_accepted");
          messages_accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }

      for (int w = 0; w < team.num_workers(); ++w) {
        const std::int64_t headroom =
            p.max_evaluations - state.evaluations() - inflight;
        if (busy[static_cast<std::size_t>(w)] || headroom < chunk) {
          continue;
        }
        team.submit(GenRequest{state.current(), chunk, ++ticket});
        busy[static_cast<std::size_t>(w)] = true;
        inflight += chunk;
        TSMO_COUNT("hybrid.chunks_dispatched");
      }
      const std::int64_t remaining =
          p.max_evaluations - state.evaluations();
      const int master_chunk =
          static_cast<int>(std::min<std::int64_t>(chunk, remaining));
      if (master_chunk > 0) {
        auto mine = state.generate_candidates(master_chunk);
        pool.insert(pool.end(), std::make_move_iterator(mine.begin()),
                    std::make_move_iterator(mine.end()));
      }
      drain(team.try_collect());

      {
        TSMO_SPAN_TIMED("hybrid.wait", "hybrid.wait_ns");
        TSMO_PROFILE_FRAME("channel.wait");
        const Timer wait_timer;
        for (;;) {
          const bool c1 = std::any_of(busy.begin(), busy.end(),
                                      [](bool b) { return !b; });
          const bool c2 = std::any_of(
              pool.begin(), pool.end(), [&](const Candidate& c) {
                return dominates(c.obj, state.current()->objectives());
              });
          const bool c3 = wait_timer.elapsed_ms() >= 2.0;
          if (c1 || c2 || c3 || state.budget_exhausted()) break;
          drain(team.collect_for(std::chrono::microseconds(200)));
        }
      }

      if (pool.empty() && state.budget_exhausted()) break;
      const auto outcome = state.step_with_candidates(pool);
      pool.clear();

      if (initial_phase &&
          state.iterations_since_improvement() >= p.restart_after) {
        initial_phase = false;
      }
      if (!initial_phase && outcome.archive_improved && !comm.empty()) {
        const int target = comm.front();
        std::rotate(comm.begin(), comm.begin() + 1, comm.end());
        state.trace().record_event(
            RunTrace::kTagSend, static_cast<std::uint64_t>(target),
            hash_objectives(state.current()->objectives()));
        mailboxes[static_cast<std::size_t>(target)]->push(
            *state.current());
        TSMO_COUNT("hybrid.messages_sent");
        messages_sent.fetch_add(1, std::memory_order_relaxed);
      }
    }
    per_island[static_cast<std::size_t>(id)] = collect_result(
        state, "hybrid[" + std::to_string(id) + "]",
        local_timer.elapsed_seconds());
    if (options_.recorder) {
      // Sign out before `state` dies; a concurrent watchdog action then
      // finds nullptr instead of a dangling pointer.
      std::lock_guard<std::mutex> lock(stall_mutex);
      stall_reg[static_cast<std::size_t>(id)] = nullptr;
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (int id = 0; id < k; ++id) threads.emplace_back(island, id);
  }  // join

  MultisearchResult result;
  result.per_searcher = std::move(per_island);
  result.merged = merge_results(result.per_searcher, "hybrid");
  result.merged.wall_seconds = timer.elapsed_seconds();
  result.merged.refresh_throughput();
  result.messages_sent = messages_sent.load();
  result.messages_accepted = messages_accepted.load();
  obs::flight_engine_finish("hybrid", result.merged.iterations, params_.trace_id);
  if (options_.recorder) {
    options_.recorder->set_stall_action(nullptr);
    options_.recorder->engine_finished(result.merged.iterations);
  }
  return result;
}

MultisearchResult HybridTsmo::run_deterministic() const {
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.hybrid");
  TSMO_PROFILE_FRAME("run.hybrid");
  // Pool threads re-establish this ambient context per round step.
  const telemetry::TraceContext island_ctx = telemetry::current_trace();
  Timer timer;
  const int k = std::max(2, islands_);
  const int procs = std::max(2, procs_per_island_);
  const auto n = static_cast<std::size_t>(k);
  const int exec = options_.exec_threads > 0 ? options_.exec_threads : k;

  // One lock-step island per slot; each round an island performs one
  // deterministic-async iteration (seeded chunk schedule + straggler
  // model, chunks evaluated inline) and exchanges solutions afterwards.
  struct Island {
    std::unique_ptr<SearchState> state;
    std::unique_ptr<MoveEngine> engine;  // chunk generation, worker-style
    std::unique_ptr<NeighborhoodGenerator> generator;
    TsmoParams p;
    Rng schedule{0};
    std::vector<Candidate> deferred;
    std::vector<int> comm;
    std::vector<Solution> inbox;
    std::vector<std::pair<int, Solution>> outbox;
    Timer local_timer;
    bool initial_phase = true;
    bool done = false;
    std::int64_t sent = 0;
    std::int64_t accepted = 0;
    RunResult result;
  };
  std::vector<Island> islands(n);
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = options_.introspect;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("hybrid");
    live = own_introspect.get();
  }
  const auto shared_cands = make_candidate_list(*inst_, params_.candidate_k);
  for (int id = 0; id < k; ++id) {
    Island& is = islands[static_cast<std::size_t>(id)];
    Rng rng(params_.seed + static_cast<std::uint64_t>(id) * 0x9d2c5680ULL);
    is.p = id == 0 ? params_ : params_.perturbed(rng);
    is.p.max_evaluations = params_.max_evaluations;
    is.p.seed = rng.next();
    is.state = std::make_unique<SearchState>(*inst_, is.p, Rng(is.p.seed),
                                             shared_cands);
    is.state->set_trace_id(id);
    if (options_.recorder) is.state->set_recorder(options_.recorder);
    if (live != nullptr) is.state->set_introspect(live);
    is.engine = std::make_unique<MoveEngine>(*inst_);
    if (shared_cands) is.engine->set_candidate_list(shared_cands.get());
    is.generator = std::make_unique<NeighborhoodGenerator>(
        *is.engine, std::array<double, kNumMoveTypes>{1, 1, 1, 1, 1},
        FeasibilityScreen::Local, is.p.batch_pricing);
    is.schedule = Rng(is.p.seed ^ 0xa57c5eedULL);
    for (int j = 0; j < k; ++j) {
      if (j != id) is.comm.push_back(j);
    }
    for (std::size_t j = is.comm.size(); j > 1; --j) {
      std::swap(is.comm[j - 1], is.comm[rng.below(j)]);
    }
  }

  obs::flight_engine_start("hybrid", k, 0, params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_started("hybrid", k, 0);
  }
  ThreadPool pool(static_cast<unsigned>(std::max(1, exec)));
  {
    std::vector<std::future<void>> init;
    init.reserve(n);
    for (Island& is : islands) {
      init.push_back(pool.submit([&is] { is.state->initialize(); }));
    }
    for (auto& f : init) f.get();
  }

  auto step_one = [&](int id) {
    telemetry::TraceScope island_scope(island_ctx);
    Island& is = islands[static_cast<std::size_t>(id)];
    TSMO_SPAN("hybrid.iteration");
    TSMO_PROFILE_FRAME("hybrid.iteration");
    for (const Solution& sol : is.inbox) {
      TSMO_COUNT("hybrid.messages_received");
      if (is.state->receive(sol)) {
        TSMO_COUNT("hybrid.messages_accepted");
        ++is.accepted;
      }
    }
    is.inbox.clear();

    if (is.state->budget_exhausted()) {
      is.done = true;
      is.result =
          collect_result(*is.state, "hybrid[" + std::to_string(id) + "]",
                         is.local_timer.elapsed_seconds());
      return;
    }
    // Deterministic async iteration: seeded chunk schedule within the
    // remaining budget, straggler chunks one iteration late.
    const int chunk = std::max(1, is.p.neighborhood_size / procs);
    std::int64_t total = std::min<std::int64_t>(
        static_cast<std::int64_t>(procs) * chunk,
        is.p.max_evaluations - is.state->evaluations());
    std::vector<Candidate> pool_candidates = std::move(is.deferred);
    is.deferred.clear();
    bool leading = true;
    while (total > 0) {
      const int count = static_cast<int>(std::min<std::int64_t>(chunk, total));
      total -= count;
      Rng task_rng(is.schedule.next());
      std::vector<Candidate> cands = make_candidates(
          *is.generator, is.state->current(), count, task_rng);
      is.state->charge_evaluations(static_cast<std::int64_t>(cands.size()));
      TSMO_COUNT("hybrid.chunks_dispatched");
      const bool defer =
          !leading && is.schedule.chance(options_.defer_probability);
      is.state->trace().record_event(RunTrace::kTagDefer,
                                     static_cast<std::uint64_t>(count),
                                     defer ? 1 : 0);
      if (defer) TSMO_COUNT("hybrid.chunks_deferred");
      auto& sink = defer ? is.deferred : pool_candidates;
      sink.insert(sink.end(), std::make_move_iterator(cands.begin()),
                  std::make_move_iterator(cands.end()));
      leading = false;
    }
    const auto outcome = is.state->step_with_candidates(pool_candidates);

    if (is.initial_phase &&
        is.state->iterations_since_improvement() >= is.p.restart_after) {
      is.initial_phase = false;
    }
    if (!is.initial_phase && outcome.archive_improved && !is.comm.empty()) {
      const int target = is.comm.front();
      std::rotate(is.comm.begin(), is.comm.begin() + 1, is.comm.end());
      is.state->trace().record_event(
          RunTrace::kTagSend, static_cast<std::uint64_t>(target),
          hash_objectives(is.state->current()->objectives()));
      is.outbox.emplace_back(target, *is.state->current());
      TSMO_COUNT("hybrid.messages_sent");
      ++is.sent;
    }
  };

  for (;;) {
    std::vector<int> alive;
    for (int id = 0; id < k; ++id) {
      if (!islands[static_cast<std::size_t>(id)].done) alive.push_back(id);
    }
    if (alive.empty()) break;
    std::vector<std::future<void>> round;
    round.reserve(alive.size());
    for (int id : alive) {
      round.push_back(pool.submit([&step_one, id] { step_one(id); }));
    }
    for (auto& f : round) f.get();
    for (Island& is : islands) {
      for (auto& [target, sol] : is.outbox) {
        Island& t = islands[static_cast<std::size_t>(target)];
        if (!t.done) t.inbox.push_back(std::move(sol));
      }
      is.outbox.clear();
    }
  }

  MultisearchResult result;
  result.per_searcher.reserve(n);
  for (Island& is : islands) {
    result.messages_sent += is.sent;
    result.messages_accepted += is.accepted;
    result.per_searcher.push_back(std::move(is.result));
  }
  result.merged = merge_results(result.per_searcher, "hybrid");
  result.merged.wall_seconds = timer.elapsed_seconds();
  result.merged.refresh_throughput();
  obs::flight_engine_finish("hybrid", result.merged.iterations, params_.trace_id);
  if (options_.recorder) {
    options_.recorder->engine_finished(result.merged.iterations);
  }
  return result;
}

}  // namespace tsmo
