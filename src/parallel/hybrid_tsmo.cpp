#include "parallel/hybrid_tsmo.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/sequential_tsmo.hpp"
#include "parallel/channel.hpp"
#include "parallel/worker_team.hpp"
#include "util/timer.hpp"

namespace tsmo {

MultisearchResult HybridTsmo::run() const {
  Timer timer;
  const int k = std::max(2, islands_);
  const int procs = std::max(2, procs_per_island_);
  const auto n = static_cast<std::size_t>(k);

  std::vector<std::unique_ptr<Channel<Solution>>> mailboxes;
  mailboxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mailboxes.push_back(std::make_unique<Channel<Solution>>());
  }
  std::vector<RunResult> per_island(n);
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> messages_accepted{0};

  auto island = [&](int id) {
    Timer local_timer;
    Rng rng(params_.seed + static_cast<std::uint64_t>(id) * 0x9d2c5680ULL);
    TsmoParams p = id == 0 ? params_ : params_.perturbed(rng);
    p.max_evaluations = params_.max_evaluations;
    p.seed = rng.next();

    SearchState state(*inst_, p, Rng(p.seed));
    state.initialize();
    WorkerTeam team(*inst_, procs - 1, p.seed);

    std::vector<int> comm;
    for (int j = 0; j < k; ++j) {
      if (j != id) comm.push_back(j);
    }
    for (std::size_t j = comm.size(); j > 1; --j) {
      std::swap(comm[j - 1], comm[rng.below(j)]);
    }

    // Asynchronous master loop (as in AsyncTsmo) + island exchange.
    const int chunk = std::max(1, p.neighborhood_size / procs);
    std::vector<bool> busy(static_cast<std::size_t>(team.num_workers()),
                           false);
    std::int64_t inflight = 0;
    std::vector<Candidate> pool;
    std::uint64_t ticket = 0;
    bool initial_phase = true;

    auto drain = [&](std::optional<GenResult> result) {
      while (result) {
        busy[static_cast<std::size_t>(result->worker_id)] = false;
        inflight -= chunk;
        state.charge_evaluations(
            static_cast<std::int64_t>(result->candidates.size()));
        pool.insert(pool.end(),
                    std::make_move_iterator(result->candidates.begin()),
                    std::make_move_iterator(result->candidates.end()));
        result = team.try_collect();
      }
    };

    while (!state.budget_exhausted()) {
      while (auto incoming = mailboxes[static_cast<std::size_t>(id)]
                                 ->try_pop()) {
        if (state.receive(*incoming)) {
          messages_accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }

      for (int w = 0; w < team.num_workers(); ++w) {
        const std::int64_t headroom =
            p.max_evaluations - state.evaluations() - inflight;
        if (busy[static_cast<std::size_t>(w)] || headroom < chunk) {
          continue;
        }
        team.submit(GenRequest{state.current(), chunk, ++ticket});
        busy[static_cast<std::size_t>(w)] = true;
        inflight += chunk;
      }
      const std::int64_t remaining =
          p.max_evaluations - state.evaluations();
      const int master_chunk =
          static_cast<int>(std::min<std::int64_t>(chunk, remaining));
      if (master_chunk > 0) {
        auto mine = state.generate_candidates(master_chunk);
        pool.insert(pool.end(), std::make_move_iterator(mine.begin()),
                    std::make_move_iterator(mine.end()));
      }
      drain(team.try_collect());

      const auto wait_started = std::chrono::steady_clock::now();
      for (;;) {
        const bool c1 = std::any_of(busy.begin(), busy.end(),
                                    [](bool b) { return !b; });
        const bool c2 = std::any_of(
            pool.begin(), pool.end(), [&](const Candidate& c) {
              return dominates(c.obj, state.current()->objectives());
            });
        const bool c3 = std::chrono::steady_clock::now() - wait_started >=
                        std::chrono::milliseconds(2);
        if (c1 || c2 || c3 || state.budget_exhausted()) break;
        drain(team.collect_for(std::chrono::microseconds(200)));
      }

      if (pool.empty() && state.budget_exhausted()) break;
      const auto outcome = state.step_with_candidates(pool);
      pool.clear();

      if (initial_phase &&
          state.iterations_since_improvement() >= p.restart_after) {
        initial_phase = false;
      }
      if (!initial_phase && outcome.archive_improved && !comm.empty()) {
        const int target = comm.front();
        std::rotate(comm.begin(), comm.begin() + 1, comm.end());
        mailboxes[static_cast<std::size_t>(target)]->push(
            *state.current());
        messages_sent.fetch_add(1, std::memory_order_relaxed);
      }
    }
    per_island[static_cast<std::size_t>(id)] = collect_result(
        state, "hybrid[" + std::to_string(id) + "]",
        local_timer.elapsed_seconds());
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (int id = 0; id < k; ++id) threads.emplace_back(island, id);
  }  // join

  MultisearchResult result;
  result.per_searcher = std::move(per_island);
  result.merged = merge_results(result.per_searcher, "hybrid");
  result.merged.wall_seconds = timer.elapsed_seconds();
  result.messages_sent = messages_sent.load();
  result.messages_accepted = messages_accepted.load();
  return result;
}

}  // namespace tsmo
