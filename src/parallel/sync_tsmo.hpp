#pragma once

// Synchronous master-worker TSMO (§III.C).
//
// "A very simple parallelization of the GenerateNeighborhood() and
// Evaluate() functions using a master process that distributes the work
// among himself and several worker processes. ... It is synchronized in
// that the master selects the current individual, distributes the work and
// waits to collect all the results."
//
// Behaviour is identical to the sequential algorithm given the combined
// neighborhood — only wall-clock changes — which is why the paper finds
// "the behavior of the synchronous algorithm does not differ from the
// sequential one" and no significant quality difference.

#include "core/run_result.hpp"
#include "core/search_state.hpp"

namespace tsmo {

struct SyncOptions {
  /// Deterministic replay mode (DESIGN.md §7): the neighborhood is split
  /// into a fixed `processors`-way logical partition whose chunks carry
  /// schedule-derived RNG seeds, and results are reassembled in ticket
  /// order.  The run is then a pure function of (params, processors) —
  /// the same seed fingerprints identically for any `exec_threads`.
  bool deterministic = false;
  /// Worker threads evaluating the logical chunks in deterministic mode;
  /// 0 selects `processors - 1`.  Execution width only — never affects
  /// the result.
  int exec_threads = 0;
  /// Anytime convergence recorder (DESIGN.md §9); observation only, so
  /// deterministic fingerprints are identical with or without it.  Must
  /// outlive the run.
  ConvergenceRecorder* recorder = nullptr;
  /// Live search-introspection hub (DESIGN.md §14); observation only.
  /// When null and params.introspect is set, the run creates its own.
  /// Must outlive the run.
  LiveIntrospect* introspect = nullptr;
};

class SyncTsmo {
 public:
  /// `processors` counts the master plus its workers (paper: 3, 6, 12).
  SyncTsmo(const Instance& inst, const TsmoParams& params, int processors,
           SyncOptions options = {})
      : inst_(&inst),
        params_(params),
        processors_(processors),
        options_(options) {}

  RunResult run() const;

 private:
  RunResult run_deterministic() const;

  const Instance* inst_;
  TsmoParams params_;
  int processors_;
  SyncOptions options_;
};

}  // namespace tsmo
