#pragma once

// Synchronous master-worker TSMO (§III.C).
//
// "A very simple parallelization of the GenerateNeighborhood() and
// Evaluate() functions using a master process that distributes the work
// among himself and several worker processes. ... It is synchronized in
// that the master selects the current individual, distributes the work and
// waits to collect all the results."
//
// Behaviour is identical to the sequential algorithm given the combined
// neighborhood — only wall-clock changes — which is why the paper finds
// "the behavior of the synchronous algorithm does not differ from the
// sequential one" and no significant quality difference.

#include "core/run_result.hpp"
#include "core/search_state.hpp"

namespace tsmo {

class SyncTsmo {
 public:
  /// `processors` counts the master plus its workers (paper: 3, 6, 12).
  SyncTsmo(const Instance& inst, const TsmoParams& params, int processors)
      : inst_(&inst), params_(params), processors_(processors) {}

  RunResult run() const;

 private:
  const Instance* inst_;
  TsmoParams params_;
  int processors_;
};

}  // namespace tsmo
