#include "vrptw/candidate_list.hpp"

#include <algorithm>

namespace tsmo {

CandidateList::CandidateList(const Instance& inst, int k)
    : k_(std::max(k, 0)) {
  const int S = inst.num_sites();
  const int N = inst.num_customers();
  offsets_.assign(static_cast<std::size_t>(S) + 1, 0);
  if (k_ == 0 || N == 0) return;

  flat_.reserve(static_cast<std::size_t>(S) *
                static_cast<std::size_t>(std::min(k_, N)));
  std::vector<std::int32_t> pool;
  pool.reserve(static_cast<std::size_t>(N));
  for (int s = 0; s < S; ++s) {
    pool.clear();
    for (int c = 1; c <= N; ++c) {
      if (c == s) continue;
      // Keep the pair unless it is unreachable in *both* directions; such
      // a pair can never pass the local feasibility screen as a junction.
      if (tw_reachable(inst, s, c) || tw_reachable(inst, c, s)) {
        pool.push_back(static_cast<std::int32_t>(c));
        ++pairs_kept_;
      } else {
        ++pairs_tw_pruned_;
      }
    }
    const auto take =
        std::min(static_cast<std::size_t>(k_), pool.size());
    const auto by_distance = [&](std::int32_t a, std::int32_t b) {
      const double da = inst.distance(s, a);
      const double db = inst.distance(s, b);
      if (da != db) return da < db;
      return a < b;  // deterministic tie-break
    };
    std::partial_sort(pool.begin(),
                      pool.begin() + static_cast<std::ptrdiff_t>(take),
                      pool.end(), by_distance);
    flat_.insert(flat_.end(), pool.begin(),
                 pool.begin() + static_cast<std::ptrdiff_t>(take));
    offsets_[static_cast<std::size_t>(s) + 1] =
        static_cast<std::int32_t>(flat_.size());
  }
}

std::shared_ptr<const CandidateList> make_candidate_list(const Instance& inst,
                                                         int k) {
  if (k <= 0) return nullptr;
  return std::make_shared<const CandidateList>(inst, k);
}

}  // namespace tsmo
