#include "vrptw/schedule.hpp"

#include <algorithm>
#include <cassert>

#include "vrptw/solution.hpp"

namespace tsmo {

namespace {

// Shared forward/backward passes; `arc(p, prev, c)` supplies the length of
// the arc into position p (p == n is the depot return).
template <typename ArcFn>
RouteSchedule compute_impl(const Instance& inst, std::span<const int> route,
                           ArcFn&& arc) {
  RouteSchedule s;
  const std::size_t n = route.size();
  s.arrival.reserve(n);
  s.begin.reserve(n);
  s.departure.reserve(n);
  s.lateness.reserve(n);

  int prev = 0;
  double time = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    const int c = route[p];
    const Site& site = inst.site(c);
    const double arr = time + arc(p, prev, c);
    const double beg = std::max(arr, site.ready);
    s.arrival.push_back(arr);
    s.begin.push_back(beg);
    s.departure.push_back(beg + site.service);
    s.lateness.push_back(std::max(arr - site.due, 0.0));
    s.total_tardiness += s.lateness.back();
    time = beg + site.service;
    prev = c;
  }
  s.depot_return = time + arc(n, prev, 0);
  s.depot_lateness = std::max(s.depot_return - inst.depot().due, 0.0);
  s.total_tardiness += s.depot_lateness;

  // Backward pass: forward_slack[j] = min(room at j, waiting at j + slack
  // downstream).  Index n is the depot return.
  s.forward_slack.assign(n + 1, 0.0);
  s.forward_slack[n] = std::max(inst.depot().due - s.depot_return, 0.0);
  for (std::size_t j = n; j-- > 0;) {
    const Site& site = inst.site(route[j]);
    const double room = std::max(site.due - s.arrival[j], 0.0);
    const double wait = s.begin[j] - s.arrival[j];
    s.forward_slack[j] = std::min(room, wait + s.forward_slack[j + 1]);
  }
  return s;
}

}  // namespace

RouteSchedule RouteSchedule::compute(const Instance& inst,
                                     std::span<const int> route) {
  return compute_impl(inst, route, [&](std::size_t, int prev, int c) {
    return inst.distance(prev, c);
  });
}

RouteSchedule RouteSchedule::compute(const Solution& sol, int r) {
  const std::vector<int>& route = sol.route(r);
  // Empty routes have no cached arcs (the depot-return arc is implicit).
  if (!sol.is_evaluated() || route.empty()) {
    return compute(sol.instance(), route);
  }
  const RouteCache& cache = sol.route_cache(r);
  return compute_impl(sol.instance(), route,
                      [&](std::size_t p, int, int) {
                        return cache.arc(static_cast<int>(p));
                      });
}

bool insertion_keeps_schedule(const Instance& inst,
                              std::span<const int> route,
                              const RouteSchedule& schedule, int c,
                              std::size_t position) {
  assert(position <= route.size());
  assert(schedule.size() == route.size());
  const Site& site = inst.site(c);

  const int pred = position > 0 ? route[position - 1] : 0;
  const double depart_pred =
      position > 0 ? schedule.departure[position - 1] : 0.0;
  const double arrival_c = depart_pred + inst.distance(pred, c);
  if (arrival_c > site.due) return false;  // the insert itself is late
  const double departure_c =
      std::max(arrival_c, site.ready) + site.service;

  if (position == route.size()) {
    const double new_return = departure_c + inst.distance(c, 0);
    const double delay = new_return - schedule.depot_return;
    return delay <= schedule.forward_slack[position];
  }
  const int succ = route[position];
  const double new_arrival_succ = departure_c + inst.distance(c, succ);
  const double delay = new_arrival_succ - schedule.arrival[position];
  return delay <= schedule.forward_slack[position];
}

}  // namespace tsmo
