#pragma once

// CVRPTW problem instance (§II of the paper).
//
// Sites S = {0..N}: index 0 is the depot, customers are 1..N.  Travel costs
// are Euclidean distances held in a dense matrix T.  The fleet is
// homogeneous: every vehicle has capacity m; at most R vehicles exist.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/flat_matrix.hpp"

namespace tsmo {

/// One site: the depot (index 0) or a customer.
struct Site {
  double x = 0.0;
  double y = 0.0;
  double demand = 0.0;   ///< d_i (0 for the depot)
  double ready = 0.0;    ///< a_i: earliest service start
  double due = 0.0;      ///< b_i: latest arrival without tardiness
  double service = 0.0;  ///< c_i: service duration
};

/// Structure-of-arrays mirror of the site table: one contiguous array per
/// field, indexed by site.  The pricing hot loop (IncrementalRouteEval)
/// reads only ready/due/service per visit; the SoA layout turns those reads
/// into dense streams instead of strided Site loads, which is what lets the
/// batch pricing pass stay in cache (DESIGN.md §11).
struct SiteSoA {
  std::vector<double> x, y, demand, ready, due, service;
};

class Instance {
 public:
  /// `sites[0]` must be the depot.  Throws std::invalid_argument on
  /// structurally invalid input (no depot, nonpositive capacity/fleet).
  Instance(std::string name, std::vector<Site> sites, int max_vehicles,
           double capacity);

  const std::string& name() const noexcept { return name_; }

  /// N: number of customers (excludes the depot).
  int num_customers() const noexcept {
    return static_cast<int>(sites_.size()) - 1;
  }

  /// Total number of sites, N + 1.
  int num_sites() const noexcept { return static_cast<int>(sites_.size()); }

  /// R: size of the available fleet.
  int max_vehicles() const noexcept { return max_vehicles_; }

  /// m: homogeneous vehicle capacity.
  double capacity() const noexcept { return capacity_; }

  const Site& site(int i) const noexcept {
    return sites_[static_cast<std::size_t>(i)];
  }
  const Site& depot() const noexcept { return sites_[0]; }
  const std::vector<Site>& sites() const noexcept { return sites_; }

  /// SoA mirror of sites(), built once at construction; field i of entry j
  /// is bitwise equal to the corresponding site(j) field.
  const SiteSoA& soa() const noexcept { return soa_; }

  /// t_{i,j}: Euclidean travel cost (== travel time; unit speed).
  double distance(int i, int j) const noexcept {
    return dist_(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  }

  /// Sum of all customer demands; a lower bound on fleet usage is
  /// ceil(total_demand / capacity).
  double total_demand() const noexcept { return total_demand_; }

  /// Smallest number of vehicles that can carry the total demand.
  /// total_demand_ is an accumulated sum, so when the true total is an
  /// exact multiple of the capacity the quotient may land a few ulp above
  /// the integer and a bare ceil would report one spurious vehicle; a
  /// quotient within relative epsilon of an integer snaps to it.
  int min_vehicles_by_capacity() const noexcept {
    const double q = total_demand_ / capacity_;
    const double r = std::round(q);
    if (std::abs(q - r) <= 1e-9 * std::max(1.0, std::abs(r))) {
      return static_cast<int>(r);
    }
    return static_cast<int>(std::ceil(q));
  }

  /// Planning horizon: the depot's due date.
  double horizon() const noexcept { return sites_[0].due; }

  /// Checks instance plausibility (windows ordered, demands within
  /// capacity, fleet can carry total demand); throws std::invalid_argument
  /// with a diagnostic message on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Site> sites_;
  int max_vehicles_ = 0;
  double capacity_ = 0.0;
  double total_demand_ = 0.0;
  FlatMatrix<double> dist_;
  SiteSoA soa_;
};

}  // namespace tsmo
