#pragma once

// CVRPTW problem instance (§II of the paper).
//
// Sites S = {0..N}: index 0 is the depot, customers are 1..N.  Travel costs
// are Euclidean distances held in a dense matrix T.  The fleet is
// homogeneous: every vehicle has capacity m; at most R vehicles exist.

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/flat_matrix.hpp"

namespace tsmo {

/// One site: the depot (index 0) or a customer.
struct Site {
  double x = 0.0;
  double y = 0.0;
  double demand = 0.0;   ///< d_i (0 for the depot)
  double ready = 0.0;    ///< a_i: earliest service start
  double due = 0.0;      ///< b_i: latest arrival without tardiness
  double service = 0.0;  ///< c_i: service duration
};

class Instance {
 public:
  /// `sites[0]` must be the depot.  Throws std::invalid_argument on
  /// structurally invalid input (no depot, nonpositive capacity/fleet).
  Instance(std::string name, std::vector<Site> sites, int max_vehicles,
           double capacity);

  const std::string& name() const noexcept { return name_; }

  /// N: number of customers (excludes the depot).
  int num_customers() const noexcept {
    return static_cast<int>(sites_.size()) - 1;
  }

  /// Total number of sites, N + 1.
  int num_sites() const noexcept { return static_cast<int>(sites_.size()); }

  /// R: size of the available fleet.
  int max_vehicles() const noexcept { return max_vehicles_; }

  /// m: homogeneous vehicle capacity.
  double capacity() const noexcept { return capacity_; }

  const Site& site(int i) const noexcept {
    return sites_[static_cast<std::size_t>(i)];
  }
  const Site& depot() const noexcept { return sites_[0]; }
  const std::vector<Site>& sites() const noexcept { return sites_; }

  /// t_{i,j}: Euclidean travel cost (== travel time; unit speed).
  double distance(int i, int j) const noexcept {
    return dist_(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  }

  /// Sum of all customer demands; a lower bound on fleet usage is
  /// ceil(total_demand / capacity).
  double total_demand() const noexcept { return total_demand_; }

  /// Smallest number of vehicles that can carry the total demand.
  int min_vehicles_by_capacity() const noexcept {
    return static_cast<int>(std::ceil(total_demand_ / capacity_));
  }

  /// Planning horizon: the depot's due date.
  double horizon() const noexcept { return sites_[0].due; }

  /// Checks instance plausibility (windows ordered, demands within
  /// capacity, fleet can carry total demand); throws std::invalid_argument
  /// with a diagnostic message on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Site> sites_;
  int max_vehicles_ = 0;
  double capacity_ = 0.0;
  double total_demand_ = 0.0;
  FlatMatrix<double> dist_;
};

}  // namespace tsmo
