#include "vrptw/objectives.hpp"

#include <cstdio>

namespace tsmo {

std::string to_string(const Objectives& o) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "f1=%.2f, f2=%d, f3=%.2f", o.distance,
                o.vehicles, o.tardiness);
  return buf;
}

}  // namespace tsmo
