#include "vrptw/evaluation.hpp"

#include <algorithm>
#include <cassert>

namespace tsmo {

RouteStats evaluate_route(const Instance& inst, std::span<const int> route) {
  RouteStats stats;
  if (route.empty()) return stats;

  int prev = 0;       // depot
  double time = 0.0;  // departure time from `prev`
  for (int c : route) {
    const Site& s = inst.site(c);
    const double arrival = time + inst.distance(prev, c);
    stats.distance += inst.distance(prev, c);
    stats.load += s.demand;
    stats.tardiness += std::max(arrival - s.due, 0.0);
    time = std::max(arrival, s.ready) + s.service;
    prev = c;
  }
  const double back = time + inst.distance(prev, 0);
  stats.distance += inst.distance(prev, 0);
  stats.tardiness += std::max(back - inst.depot().due, 0.0);
  stats.completion = back;
  return stats;
}

double arrival_time_at(const Instance& inst, std::span<const int> route,
                       std::size_t position) {
  assert(position < route.size());
  int prev = 0;
  double time = 0.0;
  for (std::size_t i = 0; i <= position; ++i) {
    const int c = route[i];
    const Site& s = inst.site(c);
    const double arrival = time + inst.distance(prev, c);
    if (i == position) return arrival;
    time = std::max(arrival, s.ready) + s.service;
    prev = c;
  }
  return 0.0;  // unreachable
}

}  // namespace tsmo
