#include "vrptw/evaluation.hpp"

#include <algorithm>
#include <cassert>

#include "vrptw/solution.hpp"

namespace tsmo {

RouteStats evaluate_route(const Instance& inst, std::span<const int> route) {
  RouteStats stats;
  if (route.empty()) return stats;

  int prev = 0;       // depot
  double time = 0.0;  // departure time from `prev`
  for (int c : route) {
    const Site& s = inst.site(c);
    const double arrival = time + inst.distance(prev, c);
    stats.distance += inst.distance(prev, c);
    stats.load += s.demand;
    stats.tardiness += std::max(arrival - s.due, 0.0);
    time = std::max(arrival, s.ready) + s.service;
    prev = c;
  }
  const double back = time + inst.distance(prev, 0);
  stats.distance += inst.distance(prev, 0);
  stats.tardiness += std::max(back - inst.depot().due, 0.0);
  stats.completion = back;
  return stats;
}

RouteStats evaluate_route_cached(const Instance& inst,
                                 std::span<const int> route,
                                 RouteCache& cache) {
  RouteStats stats;
  const int n = static_cast<int>(route.size());
  cache.n_ = n;
  cache.last_late_ = -1;
  if (n == 0) {
    cache.data_.clear();
    return stats;
  }
  cache.data_.resize(static_cast<std::size_t>(5 * n + 1));
  double* const arc = cache.data_.data();
  double* const cum_dist = arc + n + 1;
  double* const cum_load = cum_dist + n;
  double* const depart = cum_load + n;
  double* const cum_tard = depart + n;

  int prev = 0;
  double time = 0.0;
  for (int p = 0; p < n; ++p) {
    const int c = route[static_cast<std::size_t>(p)];
    const Site& s = inst.site(c);
    const double d = inst.distance(prev, c);
    const double arrival = time + d;
    const double late = std::max(arrival - s.due, 0.0);
    stats.distance += d;
    stats.load += s.demand;
    stats.tardiness += late;
    time = std::max(arrival, s.ready) + s.service;
    prev = c;
    arc[p] = d;
    cum_dist[p] = stats.distance;
    cum_load[p] = stats.load;
    depart[p] = time;
    cum_tard[p] = stats.tardiness;
    if (late > 0.0) cache.last_late_ = p;
  }
  const double d_back = inst.distance(prev, 0);
  const double back = time + d_back;
  const double depot_late = std::max(back - inst.depot().due, 0.0);
  stats.distance += d_back;
  stats.tardiness += depot_late;
  stats.completion = back;
  arc[n] = d_back;
  if (depot_late > 0.0) cache.last_late_ = n;
  return stats;
}

void IncrementalRouteEval::finish_with_tail(std::span<const int> route,
                                            const RouteCache::View& v,
                                            int from) noexcept {
  assert(v.n == static_cast<int>(route.size()));
  const int n = v.n;
  for (int q = from; q < n; ++q) {
    const int c = route[static_cast<std::size_t>(q)];
    const auto ci = static_cast<std::size_t>(c);
    // The arc into the first tail visit is a new junction; every later arc
    // is the route's own cached arc.
    const double d = q == from ? inst_->distance(prev_, c) : v.arc[q];
    const double arrival = time_ + d;
    dist_ += d;
    tard_ += std::max(arrival - due_[ci], 0.0);
    time_ = std::max(arrival, ready_[ci]) + service_[ci];
    prev_ = c;
    ++visits_;
    if (time_ <= v.depart[q] && v.last_late <= q) {
      // The new departure is no later than the cached one, so by
      // induction every remaining arrival is no later than its cached
      // arrival; with no lateness left in the cached tail every remaining
      // arrival stays within its due time, making the remaining tardiness
      // terms exact +0.0 (adding them would not change tard_).  Only the
      // cached arc lengths remain, accumulated in evaluate_route's order.
      visits_ += n - 1 - q;
      for (int p = q + 1; p <= n; ++p) dist_ += v.arc[p];
      return;
    }
  }
  finish();
}

double arrival_time_at(const Instance& inst, std::span<const int> route,
                       std::size_t position) {
  assert(position < route.size());
  int prev = 0;
  double time = 0.0;
  for (std::size_t i = 0; i <= position; ++i) {
    const int c = route[i];
    const Site& s = inst.site(c);
    const double arrival = time + inst.distance(prev, c);
    if (i == position) return arrival;
    time = std::max(arrival, s.ready) + s.service;
    prev = c;
  }
  return 0.0;  // unreachable
}

double arrival_time_at(const Solution& s, int route, std::size_t position) {
  if (s.is_evaluated()) {
    const RouteCache& cache = s.route_cache(route);
    const int p = static_cast<int>(position);
    assert(p < cache.size());
    // Same arithmetic as the walk: arrival = departure(pred) + arc in.
    return (p > 0 ? cache.depart(p - 1) : 0.0) + cache.arc(p);
  }
  return arrival_time_at(s.instance(), s.route(route), position);
}

}  // namespace tsmo
