#pragma once

// Detailed route schedule analytics: per-visit arrival / service-begin /
// departure times, per-visit tardiness, and Savelsbergh-style forward time
// slack (how far the whole suffix of the route can be delayed without
// creating new tardiness).  Used by the exact feasibility screen, the
// diagnostics in instance_tool, and tests.

#include <span>
#include <vector>

#include "vrptw/instance.hpp"

namespace tsmo {

class Solution;

struct RouteSchedule {
  std::vector<double> arrival;    ///< arrival time at each position
  std::vector<double> begin;      ///< service start (>= ready)
  std::vector<double> departure;  ///< begin + service
  std::vector<double> lateness;   ///< max(arrival - due, 0) per position
  /// forward_slack[i] (size = route size + 1): the largest delay of the
  /// *arrival* at position i that creates no new lateness at i or any
  /// later visit; index size() refers to the depot return.  Waiting time
  /// absorbs delay (Savelsbergh's forward time slack, generalized to
  /// soft windows: already-late visits tolerate zero additional delay).
  std::vector<double> forward_slack;
  double depot_return = 0.0;      ///< arrival back at the depot
  double depot_lateness = 0.0;    ///< lateness of the depot return
  double total_tardiness = 0.0;   ///< sum of all lateness incl. depot

  std::size_t size() const noexcept { return arrival.size(); }

  /// Computes the full schedule of a route (customer indices, depot
  /// endpoints implicit).  Empty route yields an empty schedule.
  static RouteSchedule compute(const Instance& inst,
                               std::span<const int> route);

  /// Same schedule for route `r` of an evaluated Solution, reading arc
  /// lengths from its RouteCache instead of the distance matrix (bitwise
  /// identical values); falls back to the span walk on dirty solutions.
  static RouteSchedule compute(const Solution& s, int r);
};

/// True when inserting customer `c` at `position` of `route` keeps the
/// route free of (additional) tardiness — the exact counterpart of the
/// paper's local criterion, O(route length) via the precomputed slack.
/// `schedule` must be compute()'d from the same route.
bool insertion_keeps_schedule(const Instance& inst,
                              std::span<const int> route,
                              const RouteSchedule& schedule, int c,
                              std::size_t position);

}  // namespace tsmo
