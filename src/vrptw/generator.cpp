#include "vrptw/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace tsmo {

namespace {

struct ClassParams {
  double service_time;
  double tight_width_lo;   // tight time-window width range
  double tight_width_hi;
  double fill_fraction;    // seed-route capacity fill target
};

ClassParams class_params(SpatialClass spatial, HorizonClass horizon) {
  // Solomon conventions: clustered instances have long (90) service times,
  // random ones short (10).  Type-2 widths are an order of magnitude wider.
  const double service = spatial == SpatialClass::Clustered ? 90.0 : 10.0;
  if (horizon == HorizonClass::Short) {
    return ClassParams{service, 3.0 * service, 8.0 * service, 0.9};
  }
  return ClassParams{service, 20.0 * service, 50.0 * service, 0.9};
}

/// Customer coordinates per spatial class on a [0, side]^2 field.
std::vector<std::pair<double, double>> make_positions(int n, double side,
                                                      SpatialClass spatial,
                                                      Rng& rng) {
  std::vector<std::pair<double, double>> pos;
  pos.reserve(static_cast<std::size_t>(n));
  auto uniform_point = [&] {
    return std::pair<double, double>{rng.uniform(0.0, side),
                                     rng.uniform(0.0, side)};
  };
  const int clustered =
      spatial == SpatialClass::Clustered ? n
      : spatial == SpatialClass::Mixed   ? n / 2
                                         : 0;
  if (clustered > 0) {
    const int num_clusters = std::max(2, n / 50);
    std::vector<std::pair<double, double>> centers;
    centers.reserve(static_cast<std::size_t>(num_clusters));
    for (int k = 0; k < num_clusters; ++k) {
      centers.push_back({rng.uniform(0.1 * side, 0.9 * side),
                         rng.uniform(0.1 * side, 0.9 * side)});
    }
    const double spread = side / 25.0;
    for (int i = 0; i < clustered; ++i) {
      const auto& c =
          centers[rng.below(static_cast<std::uint64_t>(num_clusters))];
      const double x =
          std::clamp(c.first + rng.normal(0.0, spread), 0.0, side);
      const double y =
          std::clamp(c.second + rng.normal(0.0, spread), 0.0, side);
      pos.push_back({x, y});
    }
  }
  for (int i = clustered; i < n; ++i) pos.push_back(uniform_point());
  return pos;
}

}  // namespace

Instance generate_instance(const GeneratorConfig& config) {
  if (config.num_customers < 1) {
    throw std::invalid_argument("generate_instance: num_customers < 1");
  }
  if (config.tw_density < 0.0 || config.tw_density > 1.0) {
    throw std::invalid_argument(
        "generate_instance: tw_density outside [0,1]");
  }
  const int n = config.num_customers;
  const double capacity =
      config.capacity > 0.0
          ? config.capacity
          : (config.horizon == HorizonClass::Short ? 200.0 : 700.0);
  const int fleet = config.max_vehicles > 0 ? config.max_vehicles
                                            : std::max(2, n / 4);
  const ClassParams cp = class_params(config.spatial, config.horizon);

  Rng rng(config.seed);

  // Constant customer density: the classic 100-city Solomon field is
  // roughly [0,100]^2, so the side grows with sqrt(N/100).
  const double side = 100.0 * std::sqrt(static_cast<double>(n) / 100.0);
  const auto positions = make_positions(n, side, config.spatial, rng);

  std::vector<Site> sites(static_cast<std::size_t>(n) + 1);
  sites[0] = Site{side / 2.0, side / 2.0, 0.0, 0.0, 0.0, 0.0};
  for (int i = 1; i <= n; ++i) {
    auto& s = sites[static_cast<std::size_t>(i)];
    s.x = positions[static_cast<std::size_t>(i - 1)].first;
    s.y = positions[static_cast<std::size_t>(i - 1)].second;
    s.demand = static_cast<double>(rng.uniform_int(5, 40));
    s.service = cp.service_time;
  }

  // --- Seed routes: angular sweep around the depot, cut by capacity. ---
  // Their arrival times anchor the time windows, guaranteeing that at
  // least one zero-tardiness solution exists.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 1);
  const double cx = sites[0].x, cy = sites[0].y;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& sa = sites[static_cast<std::size_t>(a)];
    const auto& sb = sites[static_cast<std::size_t>(b)];
    return std::atan2(sa.y - cy, sa.x - cx) <
           std::atan2(sb.y - cy, sb.x - cx);
  });

  auto dist = [&](int i, int j) {
    const auto& a = sites[static_cast<std::size_t>(i)];
    const auto& b = sites[static_cast<std::size_t>(j)];
    return std::hypot(a.x - b.x, a.y - b.y);
  };

  std::vector<double> arrival(static_cast<std::size_t>(n) + 1, 0.0);
  double max_completion = 0.0;
  {
    double load = 0.0, time = 0.0;
    int prev = 0;
    const double fill_target = cp.fill_fraction * capacity;
    for (int c : order) {
      const auto& s = sites[static_cast<std::size_t>(c)];
      if (load + s.demand > fill_target) {
        max_completion = std::max(max_completion, time + dist(prev, 0));
        load = 0.0;
        time = 0.0;
        prev = 0;
      }
      const double arr = time + dist(prev, c);
      arrival[static_cast<std::size_t>(c)] = arr;
      time = arr + s.service;
      load += s.demand;
      prev = c;
    }
    max_completion = std::max(max_completion, time + dist(prev, 0));
  }

  // Horizon: generous slack over the seed schedule so type-2 searches can
  // merge routes without hitting the depot deadline.
  const double horizon_slack =
      config.horizon == HorizonClass::Short ? 1.5 : 4.0;
  const double horizon = horizon_slack * (max_completion + side);
  sites[0].due = horizon;

  for (int c = 1; c <= n; ++c) {
    auto& s = sites[static_cast<std::size_t>(c)];
    const double latest_feasible_due = horizon - dist(c, 0) - s.service;
    if (rng.chance(config.tw_density)) {
      const double width = rng.uniform(cp.tight_width_lo, cp.tight_width_hi);
      const double center = arrival[static_cast<std::size_t>(c)];
      // The window must contain the seed arrival so the seed schedule has
      // zero tardiness; split the width randomly around it.
      const double before = rng.uniform(0.0, width);
      s.ready = std::max(0.0, center - before);
      s.due = center + (width - before);
    } else {
      s.ready = 0.0;
      s.due = latest_feasible_due;
    }
    s.due = std::clamp(s.due, s.ready, latest_feasible_due);
    if (s.due < arrival[static_cast<std::size_t>(c)]) {
      // Clamping against the horizon squeezed the window past the seed
      // arrival; widen back to keep the seed schedule feasible.
      s.due = arrival[static_cast<std::size_t>(c)];
    }
  }

  std::string name = config.name;
  if (name.empty()) {
    char buf[64];
    const char* sc = config.spatial == SpatialClass::Random      ? "R"
                     : config.spatial == SpatialClass::Clustered ? "C"
                                                                 : "RC";
    std::snprintf(buf, sizeof(buf), "%s%d_%d_s%llu", sc,
                  config.horizon == HorizonClass::Short ? 1 : 2, n,
                  static_cast<unsigned long long>(config.seed));
    name = buf;
  }

  Instance inst(std::move(name), std::move(sites), fleet, capacity);
  inst.validate();
  return inst;
}

GeneratorConfig parse_instance_name(const std::string& name) {
  GeneratorConfig cfg;
  std::size_t pos = 0;
  if (name.size() >= 2 && (name[0] == 'R' || name[0] == 'r') &&
      (name[1] == 'C' || name[1] == 'c')) {
    cfg.spatial = SpatialClass::Mixed;
    pos = 2;
  } else if (!name.empty() && (name[0] == 'R' || name[0] == 'r')) {
    cfg.spatial = SpatialClass::Random;
    pos = 1;
  } else if (!name.empty() && (name[0] == 'C' || name[0] == 'c')) {
    cfg.spatial = SpatialClass::Clustered;
    pos = 1;
  } else {
    throw std::invalid_argument("parse_instance_name: bad class in " + name);
  }
  if (pos >= name.size() || (name[pos] != '1' && name[pos] != '2')) {
    throw std::invalid_argument("parse_instance_name: bad type in " + name);
  }
  cfg.horizon = name[pos] == '1' ? HorizonClass::Short : HorizonClass::Long;
  ++pos;
  if (pos >= name.size() || name[pos] != '_') {
    throw std::invalid_argument("parse_instance_name: expected '_' in " +
                                name);
  }
  ++pos;
  std::size_t used = 0;
  int hundreds = 0, ordinal = 0;
  try {
    hundreds = std::stoi(name.substr(pos), &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_instance_name: bad size in " + name);
  }
  pos += used;
  if (pos >= name.size() || name[pos] != '_') {
    throw std::invalid_argument("parse_instance_name: expected ordinal in " +
                                name);
  }
  ++pos;
  try {
    ordinal = std::stoi(name.substr(pos));
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_instance_name: bad ordinal in " +
                                name);
  }
  if (hundreds < 1 || ordinal < 1) {
    throw std::invalid_argument("parse_instance_name: nonpositive fields in " +
                                name);
  }
  cfg.num_customers = 100 * hundreds;
  // Ordinal feeds the seed so R1_4_1 != R1_4_2; class/type/size mix in to
  // decorrelate same-ordinal instances across classes.
  cfg.seed = static_cast<std::uint64_t>(ordinal) * 0x9e3779b9ULL +
             static_cast<std::uint64_t>(cfg.num_customers) * 131ULL +
             (cfg.horizon == HorizonClass::Long ? 7ULL : 0ULL) +
             (cfg.spatial == SpatialClass::Clustered  ? 100003ULL
              : cfg.spatial == SpatialClass::Mixed    ? 200003ULL
                                                      : 0ULL);
  // Density cycles over {1.0, 0.75, 0.5, 0.25} like the Solomon sub-series.
  static constexpr double kDensities[4] = {1.0, 0.75, 0.5, 0.25};
  cfg.tw_density = kDensities[(ordinal - 1) % 4];
  cfg.name = name;
  return cfg;
}

Instance generate_named(const std::string& name) {
  return generate_instance(parse_instance_name(name));
}

}  // namespace tsmo
