#include "vrptw/solomon_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tsmo {

namespace {

/// True when every whitespace-separated token in the line parses as a
/// number (the data rows; headers contain words).
bool numeric_row(const std::string& line, std::vector<double>& out) {
  out.clear();
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(tok, &used);
    } catch (const std::exception&) {
      return false;
    }
    if (used != tok.size()) return false;
    out.push_back(v);
  }
  return !out.empty();
}

}  // namespace

Instance read_solomon(std::istream& is) {
  std::string name;
  std::string line;
  std::vector<double> nums;

  // First non-empty line is the instance name.
  while (std::getline(is, line)) {
    std::istringstream iss(line);
    std::string tok;
    if (iss >> tok) {
      name = tok;
      break;
    }
  }
  if (name.empty()) {
    throw std::runtime_error("read_solomon: missing instance name");
  }

  // First 2-number row is "<vehicles> <capacity>".
  int max_vehicles = -1;
  double capacity = -1.0;
  while (std::getline(is, line)) {
    if (numeric_row(line, nums) && nums.size() == 2) {
      max_vehicles = static_cast<int>(nums[0]);
      capacity = nums[1];
      break;
    }
  }
  if (max_vehicles < 0) {
    throw std::runtime_error("read_solomon: missing VEHICLE row");
  }

  // Remaining 7-number rows are customers (first must be the depot, id 0).
  std::vector<Site> sites;
  while (std::getline(is, line)) {
    if (!numeric_row(line, nums)) continue;
    if (nums.size() != 7) {
      throw std::runtime_error(
          "read_solomon: customer row must have 7 fields, got line: " + line);
    }
    const int id = static_cast<int>(nums[0]);
    if (id != static_cast<int>(sites.size())) {
      throw std::runtime_error(
          "read_solomon: customer ids must be consecutive from 0");
    }
    sites.push_back(Site{nums[1], nums[2], nums[3], nums[4], nums[5],
                         nums[6]});
  }
  if (sites.empty()) {
    throw std::runtime_error("read_solomon: no customer rows");
  }
  return Instance(name, std::move(sites), max_vehicles, capacity);
}

Instance read_solomon_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("read_solomon_file: cannot open " + path);
  }
  return read_solomon(f);
}

void write_solomon(std::ostream& os, const Instance& inst) {
  os << inst.name() << "\n\nVEHICLE\nNUMBER     CAPACITY\n";
  os << "  " << inst.max_vehicles() << "        " << inst.capacity()
     << "\n\nCUSTOMER\n"
     << "CUST NO.  XCOORD.   YCOORD.   DEMAND    READY TIME  DUE DATE"
     << "   SERVICE TIME\n\n";
  char buf[200];
  for (int i = 0; i < inst.num_sites(); ++i) {
    const Site& s = inst.site(i);
    std::snprintf(buf, sizeof(buf),
                  "%5d %10.2f %10.2f %10.2f %12.2f %10.2f %10.2f\n", i, s.x,
                  s.y, s.demand, s.ready, s.due, s.service);
    os << buf;
  }
}

void write_solomon_file(const std::string& path, const Instance& inst) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("write_solomon_file: cannot open " + path);
  }
  write_solomon(f, inst);
}

}  // namespace tsmo
