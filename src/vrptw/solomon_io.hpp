#pragma once

// Reader/writer for the standard Solomon / Homberger instance text format:
//
//   <NAME>
//
//   VEHICLE
//   NUMBER     CAPACITY
//      25         200
//
//   CUSTOMER
//   CUST NO.  XCOORD.  YCOORD.  DEMAND  READY TIME  DUE DATE  SERVICE TIME
//       0       40       50       0         0        1236         0
//       1       45       68      10       912         967        90
//       ...
//
// Customer number 0 is the depot.  This is the format the Homberger
// extended Solomon benchmark (used in the paper's §IV) is distributed in.

#include <iosfwd>
#include <string>

#include "vrptw/instance.hpp"

namespace tsmo {

/// Parses an instance from a stream.  Throws std::runtime_error with a
/// line-oriented diagnostic on malformed input.
Instance read_solomon(std::istream& is);

/// Parses an instance from a file path.
Instance read_solomon_file(const std::string& path);

/// Writes an instance in the same format (coordinates and times with up to
/// two decimals, which round-trips the generator's output exactly enough
/// for distance matrices to agree to 1e-2).
void write_solomon(std::ostream& os, const Instance& inst);

void write_solomon_file(const std::string& path, const Instance& inst);

}  // namespace tsmo
