#include "vrptw/solution.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tsmo {

Solution::Solution(const Instance& inst)
    : inst_(&inst),
      routes_(static_cast<std::size_t>(inst.max_vehicles())),
      stats_(static_cast<std::size_t>(inst.max_vehicles())),
      caches_(static_cast<std::size_t>(inst.max_vehicles())),
      customer_route_(static_cast<std::size_t>(inst.num_sites()), -1),
      customer_pos_(static_cast<std::size_t>(inst.num_sites()), -1) {
  evaluated_ = true;  // all-empty fleet trivially evaluates to zero
}

Solution Solution::from_routes(const Instance& inst,
                               std::vector<std::vector<int>> routes) {
  if (static_cast<int>(routes.size()) > inst.max_vehicles()) {
    throw std::invalid_argument(
        "Solution::from_routes: more routes than vehicles");
  }
  Solution s(inst);
  for (std::size_t r = 0; r < routes.size(); ++r) {
    s.routes_[r] = std::move(routes[r]);
  }
  s.evaluated_ = false;
  s.dirty_.clear();
  s.evaluate();
  return s;
}

Solution Solution::from_permutation(const Instance& inst,
                                    std::span<const int> perm) {
  std::vector<std::vector<int>> routes;
  std::vector<int> current;
  for (int v : perm) {
    if (v < 0 || v > inst.num_customers()) {
      throw std::invalid_argument(
          "Solution::from_permutation: site index out of range");
    }
    if (v == 0) {
      if (!current.empty()) {
        routes.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(v);
    }
  }
  if (!current.empty()) routes.push_back(std::move(current));
  return from_routes(inst, std::move(routes));
}

std::vector<int>& Solution::mutable_route(int r) {
  if (std::find(dirty_.begin(), dirty_.end(), r) == dirty_.end()) {
    dirty_.push_back(r);
  }
  return routes_[static_cast<std::size_t>(r)];
}

void Solution::evaluate() {
  if (!evaluated_) {
    for (std::size_t r = 0; r < routes_.size(); ++r) {
      stats_[r] = evaluate_route_cached(*inst_, routes_[r], caches_[r]);
    }
    evaluated_ = true;
  } else {
    for (int r : dirty_) {
      const auto ur = static_cast<std::size_t>(r);
      stats_[ur] = evaluate_route_cached(*inst_, routes_[ur], caches_[ur]);
    }
  }
  dirty_.clear();
  recompute_totals();
  rebuild_index();
}

void Solution::recompute_totals() {
  // Empty routes contribute exact +0.0 distance and tardiness, and a +0.0
  // addition never changes a non-negative accumulator — so summing only
  // the non-empty routes (in index order) is bitwise identical to summing
  // all of them.  The running sums are recorded as prefix arrays so
  // MoveEngine::evaluate can seed its total at the first modified route
  // instead of replaying the whole chain.
  active_routes_.clear();
  active_rank_.clear();
  prefix_dist_.clear();
  prefix_tard_.clear();
  active_dist_.clear();
  active_tard_.clear();
  prefix_dist_.push_back(0.0);
  prefix_tard_.push_back(0.0);
  objectives_ = Objectives{};
  for (std::size_t r = 0; r < routes_.size(); ++r) {
    active_rank_.push_back(static_cast<int>(active_routes_.size()));
    if (routes_[r].empty()) continue;
    active_routes_.push_back(static_cast<int>(r));
    objectives_.distance += stats_[r].distance;
    objectives_.tardiness += stats_[r].tardiness;
    ++objectives_.vehicles;
    prefix_dist_.push_back(objectives_.distance);
    prefix_tard_.push_back(objectives_.tardiness);
    active_dist_.push_back(stats_[r].distance);
    active_tard_.push_back(stats_[r].tardiness);
  }
  active_rank_.push_back(static_cast<int>(active_routes_.size()));
}

void Solution::rebuild_index() {
  std::fill(customer_route_.begin(), customer_route_.end(), -1);
  std::fill(customer_pos_.begin(), customer_pos_.end(), -1);
  for (std::size_t r = 0; r < routes_.size(); ++r) {
    const auto& route = routes_[r];
    for (std::size_t p = 0; p < route.size(); ++p) {
      customer_route_[static_cast<std::size_t>(route[p])] =
          static_cast<int>(r);
      customer_pos_[static_cast<std::size_t>(route[p])] =
          static_cast<int>(p);
    }
  }
}

int Solution::vehicles_used() const noexcept {
  int used = 0;
  for (const auto& r : routes_) {
    if (!r.empty()) ++used;
  }
  return used;
}

double Solution::capacity_violation() const noexcept {
  double v = 0.0;
  for (const auto& st : stats_) {
    v += std::max(st.load - inst_->capacity(), 0.0);
  }
  return v;
}

std::vector<int> Solution::to_permutation() const {
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(inst_->num_customers() +
                                        inst_->max_vehicles() + 1));
  perm.push_back(0);
  int unused = 0;
  for (const auto& route : routes_) {
    if (route.empty()) {
      ++unused;
      continue;
    }
    for (int c : route) perm.push_back(c);
    perm.push_back(0);
  }
  for (int i = 0; i < unused; ++i) perm.push_back(0);
  return perm;
}

std::uint64_t Solution::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  auto mix = [&h](int v) {
    auto u = static_cast<std::uint32_t>(v);
    for (int b = 0; b < 4; ++b) {
      h ^= (u >> (8 * b)) & 0xffU;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  };
  mix(0);
  for (const auto& route : routes_) {
    if (route.empty()) continue;
    for (int c : route) mix(c);
    mix(0);
  }
  return h;
}

void Solution::validate() const {
  std::vector<int> seen(static_cast<std::size_t>(inst_->num_sites()), 0);
  for (const auto& route : routes_) {
    for (int c : route) {
      if (c <= 0 || c > inst_->num_customers()) {
        throw std::logic_error("Solution: customer index out of range");
      }
      ++seen[static_cast<std::size_t>(c)];
    }
  }
  char msg[96];
  for (int c = 1; c <= inst_->num_customers(); ++c) {
    const int count = seen[static_cast<std::size_t>(c)];
    if (count != 1) {
      std::snprintf(msg, sizeof(msg),
                    "Solution: customer %d appears %d times", c, count);
      throw std::logic_error(msg);
    }
  }
}

}  // namespace tsmo
