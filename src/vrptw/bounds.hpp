#pragma once

// Cheap lower bounds for gap reporting.  Neither bound is tight for the
// CVRPTW, but both are valid for any feasible (and any tardy) solution,
// so "distance / bound" gives an honest upper bound on the optimality gap
// in the benches' reports.

#include "vrptw/instance.hpp"

namespace tsmo {

/// Minimum-spanning-tree lower bound on the total travel distance: every
/// solution's route edges connect all sites into a spanning structure, so
/// f1 >= MST over all sites (Prim, O(N^2)).
double mst_distance_lower_bound(const Instance& inst);

/// Lower bound on f1 that additionally accounts for depot legs: each of
/// the at-least-`ceil(demand/capacity)` vehicles must leave and re-enter
/// the depot, paying at least the two smallest depot distances.
/// Takes the max with the MST bound.
double distance_lower_bound(const Instance& inst);

}  // namespace tsmo
