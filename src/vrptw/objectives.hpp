#pragma once

// The three objectives of the paper's multiobjective CVRPTW formulation
// (§II.A), all minimized:
//   f1  total travel distance (Euclidean, including depot legs)
//   f2  number of vehicles actually deployed (non-empty tours)
//   f3  total tardiness — sum of max(arrival - due, 0) over all sites
//       (soft time windows: lateness is penalized, not forbidden)

#include <compare>
#include <cstdint>
#include <string>

namespace tsmo {

struct Objectives {
  double distance = 0.0;   ///< f1: total tour length
  int vehicles = 0;        ///< f2: deployed vehicles
  double tardiness = 0.0;  ///< f3: summed time-window violation

  friend bool operator==(const Objectives&, const Objectives&) = default;
};

/// Pareto dominance for minimization: `a` dominates `b` when a is no worse
/// in every objective and strictly better in at least one.
inline bool dominates(const Objectives& a, const Objectives& b) noexcept {
  if (a.distance > b.distance || a.vehicles > b.vehicles ||
      a.tardiness > b.tardiness) {
    return false;
  }
  return a.distance < b.distance || a.vehicles < b.vehicles ||
         a.tardiness < b.tardiness;
}

/// Weak dominance: no worse in every objective (used by the set-coverage
/// metric, which Zitzler defines with weak dominance).
inline bool weakly_dominates(const Objectives& a,
                             const Objectives& b) noexcept {
  return a.distance <= b.distance && a.vehicles <= b.vehicles &&
         a.tardiness <= b.tardiness;
}

/// True when neither solution dominates the other.
inline bool incomparable(const Objectives& a, const Objectives& b) noexcept {
  return !dominates(a, b) && !dominates(b, a);
}

/// Weighted-sum scalarization used by the single-objective TS baseline
/// (§II.C discusses the weighted single-criteria alternative).
struct ScalarWeights {
  double distance = 1.0;
  double vehicles = 0.0;
  double tardiness = 100.0;
};

inline double scalarize(const Objectives& o,
                        const ScalarWeights& w) noexcept {
  return w.distance * o.distance +
         w.vehicles * static_cast<double>(o.vehicles) +
         w.tardiness * o.tardiness;
}

/// Human-readable "f1=..., f2=..., f3=..." string.
std::string to_string(const Objectives& o);

}  // namespace tsmo
