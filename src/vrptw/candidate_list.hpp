#pragma once

// Spatial candidate lists (DESIGN.md §11): for every site, the k nearest
// customers that are time-window compatible.  The pruned neighborhood
// sampling mode (MoveEngine / NeighborhoodGenerator, candidate_k > 0) draws
// move endpoints from these lists instead of uniformly, so the vast
// majority of hopeless long-distance moves are never proposed — and never
// priced.
//
// A pair (i, j) is kept when it is time-window *reachable in at least one
// direction*: serving j directly after i can start within j's window under
// the earliest possible departure from i (a_i + c_i + t_ij <= b_j), or the
// symmetric condition with the roles swapped.  Pairs unreachable in both
// directions can never form a junction edge that passes the paper's local
// feasibility criterion, so pruning them loses nothing.  Reachability in
// only one direction is kept because several operators (Exchange, 2-opt)
// can use the partner on either side of a junction.
//
// Lists are sorted by (distance, site index) — a total order independent of
// construction order — and stored in one flat CSR allocation, so the layer
// is deterministic and cheap to share read-only across searchers and
// worker threads.  Built once per Instance per run (O(N^2) with a partial
// sort; ~milliseconds at 1000 customers).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "vrptw/instance.hpp"

namespace tsmo {

/// Directed time-window reachability of the junction edge from -> to:
/// leaving `from` at its earliest possible departure still meets `to`'s
/// due date.  Identical arithmetic to MoveEngine's local screen (edge_ok).
inline bool tw_reachable(const Instance& inst, int from, int to) noexcept {
  const Site& a = inst.site(from);
  return a.ready + a.service + inst.distance(from, to) <= inst.site(to).due;
}

class CandidateList {
 public:
  /// Builds the k-nearest-customer lists for every site of `inst` (the
  /// depot included — its list is the customers reachable from the route
  /// start).  k <= 0 yields empty lists everywhere.
  CandidateList(const Instance& inst, int k);

  /// Requested list length (actual lists may be shorter after the TW
  /// filter, or on tiny instances).
  int k() const noexcept { return k_; }

  int num_sites() const noexcept {
    return static_cast<int>(offsets_.size()) - 1;
  }

  /// Candidate partners of `site`, nearest first; customers only, never
  /// `site` itself or the depot.
  std::span<const std::int32_t> neighbors(int site) const noexcept {
    const auto s = static_cast<std::size_t>(site);
    return {flat_.data() + offsets_[s],
            static_cast<std::size_t>(offsets_[s + 1] - offsets_[s])};
  }

  /// Build statistics: ordered (site, customer) pairs kept / discarded by
  /// the both-directions TW filter before the k-truncation.
  std::uint64_t pairs_kept() const noexcept { return pairs_kept_; }
  std::uint64_t pairs_tw_pruned() const noexcept { return pairs_tw_pruned_; }

 private:
  std::vector<std::int32_t> flat_;
  std::vector<std::int32_t> offsets_;
  int k_ = 0;
  std::uint64_t pairs_kept_ = 0;
  std::uint64_t pairs_tw_pruned_ = 0;
};

/// Shared list for one engine run, or nullptr when k <= 0 (legacy uniform
/// sampling).  All searchers and workers of a run share one immutable list.
std::shared_ptr<const CandidateList> make_candidate_list(const Instance& inst,
                                                         int k);

}  // namespace tsmo
