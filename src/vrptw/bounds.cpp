#include "vrptw/bounds.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace tsmo {

double mst_distance_lower_bound(const Instance& inst) {
  const int n = inst.num_sites();
  if (n <= 1) return 0.0;
  std::vector<double> key(static_cast<std::size_t>(n),
                          std::numeric_limits<double>::infinity());
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
  key[0] = 0.0;
  double total = 0.0;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_key = std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      if (!in_tree[static_cast<std::size_t>(v)] &&
          key[static_cast<std::size_t>(v)] < best_key) {
        best_key = key[static_cast<std::size_t>(v)];
        best = v;
      }
    }
    in_tree[static_cast<std::size_t>(best)] = true;
    total += best_key;
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      key[static_cast<std::size_t>(v)] =
          std::min(key[static_cast<std::size_t>(v)],
                   inst.distance(best, v));
    }
  }
  return total;
}

double distance_lower_bound(const Instance& inst) {
  const double mst = mst_distance_lower_bound(inst);
  // Depot-leg bound: k vehicles pay at least the 2k cheapest depot legs
  // plus, for each customer, nothing further that's valid in general.
  const int k = inst.min_vehicles_by_capacity();
  std::vector<double> depot_legs;
  depot_legs.reserve(static_cast<std::size_t>(inst.num_customers()));
  for (int c = 1; c <= inst.num_customers(); ++c) {
    depot_legs.push_back(inst.distance(0, c));
  }
  std::sort(depot_legs.begin(), depot_legs.end());
  double legs = 0.0;
  for (int i = 0; i < 2 * k && i < static_cast<int>(depot_legs.size());
       ++i) {
    legs += depot_legs[static_cast<std::size_t>(i)];
  }
  return std::max(mst, legs);
}

}  // namespace tsmo
