#include "vrptw/instance.hpp"

#include <cmath>
#include <cstdio>

namespace tsmo {

Instance::Instance(std::string name, std::vector<Site> sites,
                   int max_vehicles, double capacity)
    : name_(std::move(name)),
      sites_(std::move(sites)),
      max_vehicles_(max_vehicles),
      capacity_(capacity) {
  if (sites_.empty()) {
    throw std::invalid_argument("Instance: needs at least the depot site");
  }
  if (max_vehicles_ <= 0) {
    throw std::invalid_argument("Instance: max_vehicles must be positive");
  }
  if (capacity_ <= 0.0) {
    throw std::invalid_argument("Instance: capacity must be positive");
  }
  const std::size_t n = sites_.size();
  dist_ = FlatMatrix<double>(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = sites_[i].x - sites_[j].x;
      const double dy = sites_[i].y - sites_[j].y;
      const double d = std::sqrt(dx * dx + dy * dy);
      dist_(i, j) = d;
      dist_(j, i) = d;
    }
  }
  total_demand_ = 0.0;
  for (std::size_t i = 1; i < n; ++i) total_demand_ += sites_[i].demand;
  soa_.x.reserve(n);
  soa_.y.reserve(n);
  soa_.demand.reserve(n);
  soa_.ready.reserve(n);
  soa_.due.reserve(n);
  soa_.service.reserve(n);
  for (const Site& s : sites_) {
    soa_.x.push_back(s.x);
    soa_.y.push_back(s.y);
    soa_.demand.push_back(s.demand);
    soa_.ready.push_back(s.ready);
    soa_.due.push_back(s.due);
    soa_.service.push_back(s.service);
  }
}

void Instance::validate() const {
  char msg[160];
  if (sites_[0].demand != 0.0) {
    throw std::invalid_argument("Instance: depot must have zero demand");
  }
  for (int i = 0; i < num_sites(); ++i) {
    const Site& s = site(i);
    if (s.ready > s.due) {
      std::snprintf(msg, sizeof(msg),
                    "Instance: site %d has ready %.2f > due %.2f", i, s.ready,
                    s.due);
      throw std::invalid_argument(msg);
    }
    if (s.demand < 0.0 || s.service < 0.0) {
      std::snprintf(msg, sizeof(msg),
                    "Instance: site %d has negative demand or service", i);
      throw std::invalid_argument(msg);
    }
    if (i > 0 && s.demand > capacity_) {
      std::snprintf(msg, sizeof(msg),
                    "Instance: customer %d demand %.2f exceeds capacity %.2f",
                    i, s.demand, capacity_);
      throw std::invalid_argument(msg);
    }
  }
  if (total_demand_ > capacity_ * static_cast<double>(max_vehicles_)) {
    std::snprintf(msg, sizeof(msg),
                  "Instance: total demand %.2f exceeds fleet capacity %.2f",
                  total_demand_,
                  capacity_ * static_cast<double>(max_vehicles_));
    throw std::invalid_argument(msg);
  }
}

}  // namespace tsmo
