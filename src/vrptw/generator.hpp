#pragma once

// Synthetic generator for Homberger-style extended Solomon instances.
//
// The paper evaluates on Joerg Homberger's 400- and 600-city extension of
// the Solomon set (classes C1/C2/R1/R2/RC1/RC2).  The original files were
// distributed from a university URL that no longer resolves; this module
// generates statistically equivalent instances instead (see DESIGN.md §4):
//
//   * spatial structure   — R: uniform, C: Gaussian clusters, RC: mixed
//   * constant density    — field side scales with sqrt(N)
//   * type 1 ("small TW") — tight windows, capacity 200 -> many vehicles
//   * type 2 ("large TW") — wide windows, capacity 700 -> few vehicles
//   * guaranteed feasibility — windows are placed around the arrival times
//     of greedy seed routes, so a zero-tardiness solution always exists
//
// Generation is fully deterministic in (config, seed).

#include <cstdint>
#include <string>

#include "vrptw/instance.hpp"

namespace tsmo {

/// Spatial distribution of customers (Solomon's R / C / RC).
enum class SpatialClass { Random, Clustered, Mixed };

/// Scheduling horizon/window type (Solomon's 1 / 2).
enum class HorizonClass { Short, Long };

struct GeneratorConfig {
  int num_customers = 100;
  SpatialClass spatial = SpatialClass::Random;
  HorizonClass horizon = HorizonClass::Short;

  /// Fraction of customers receiving a tight window centered on a seed
  /// arrival; the rest get the full horizon.  Solomon varies this 25-100%
  /// across instances within a class.
  double tw_density = 1.0;

  /// Fleet size; <= 0 selects the paper's convention R = N/4
  /// (25 vehicles for 100 cities, 100 for 400 cities).
  int max_vehicles = 0;

  /// Vehicle capacity; <= 0 selects 200 (Short) / 700 (Long).
  double capacity = 0.0;

  std::uint64_t seed = 1;

  /// Instance name; empty selects an auto-generated "<class>_<n>_s<seed>".
  std::string name;
};

/// Generates one instance.  Throws std::invalid_argument on nonsensical
/// configs (num_customers < 1, tw_density outside [0,1]).
Instance generate_instance(const GeneratorConfig& config);

/// Convenience: builds the config for a Homberger-style instance name such
/// as "R1_4_3" (class R, type 1, 400 customers, 3rd instance — the ordinal
/// seeds the generator) and generates it.
Instance generate_named(const std::string& name);

/// Parses "<C|R|RC><1|2>_<hundreds>_<ordinal>" into a config.
/// Throws std::invalid_argument on malformed names.
GeneratorConfig parse_instance_name(const std::string& name);

}  // namespace tsmo
