#pragma once

// Route-level evaluation of the CVRPTW objectives.
//
// A vehicle leaves the depot at time 0.  Arriving before a customer's ready
// time means waiting; arriving after the due date accrues tardiness (soft
// time windows, §II).  Travel time equals Euclidean distance (unit speed).

#include <span>

#include "vrptw/instance.hpp"

namespace tsmo {

/// Aggregated per-route quantities.  A Solution caches one RouteStats per
/// route so that moves touching one or two routes re-evaluate only those.
struct RouteStats {
  double distance = 0.0;   ///< depot -> c1 -> ... -> ck -> depot
  double load = 0.0;       ///< summed customer demand
  double tardiness = 0.0;  ///< sum over visits (and depot return) of lateness
  double completion = 0.0; ///< time the vehicle is back at the depot

  friend bool operator==(const RouteStats&, const RouteStats&) = default;
};

/// Evaluates a single route given as a sequence of customer indices
/// (excluding the depot endpoints).  An empty route yields all-zero stats.
RouteStats evaluate_route(const Instance& inst, std::span<const int> route);

/// Arrival time at the customer occupying `position` within the route
/// (0-based).  Exposed for tests and for diagnostic reporting.
double arrival_time_at(const Instance& inst, std::span<const int> route,
                       std::size_t position);

}  // namespace tsmo
