#pragma once

// Route-level evaluation of the CVRPTW objectives.
//
// A vehicle leaves the depot at time 0.  Arriving before a customer's ready
// time means waiting; arriving after the due date accrues tardiness (soft
// time windows, §II).  Travel time equals Euclidean distance (unit speed).
//
// Besides the from-scratch evaluate_route, this module provides the
// incremental-evaluation substrate used by MoveEngine: per-route segment
// summaries (RouteCache) plus a resumable accumulator (IncrementalRouteEval)
// that replays evaluate_route's exact arithmetic from a cached prefix, so
// candidate moves are costed without materializing modified routes while
// remaining bitwise identical to a full re-evaluation (see DESIGN.md,
// "Incremental evaluation").

#include <algorithm>
#include <span>
#include <vector>

#include "vrptw/instance.hpp"

namespace tsmo {

class Solution;

/// Aggregated per-route quantities.  A Solution caches one RouteStats per
/// route so that moves touching one or two routes re-evaluate only those.
struct RouteStats {
  double distance = 0.0;   ///< depot -> c1 -> ... -> ck -> depot
  double load = 0.0;       ///< summed customer demand
  double tardiness = 0.0;  ///< sum over visits (and depot return) of lateness
  double completion = 0.0; ///< time the vehicle is back at the depot

  friend bool operator==(const RouteStats&, const RouteStats&) = default;
};

/// Forward prefix summaries of one route, all accumulated left to right in
/// the same order as evaluate_route — so any prefix value equals, bitwise,
/// the accumulator state of a from-scratch evaluation after that visit.
/// Built by evaluate_route_cached; owned per route by Solution.
///
/// Storage is one flat allocation (5n+1 doubles) to keep Solution copies at
/// one extra allocation per route.
class RouteCache {
 public:
  /// Borrowed raw pointers into the cache's flat storage, resolved once so
  /// batch pricing loops read prefix data without per-access index
  /// arithmetic (DESIGN.md §11).  Valid until the cache is rebuilt; all
  /// pointers are null for an empty route (n == 0).
  struct View {
    const double* arc = nullptr;       ///< n+1 entries (incl. return arc)
    const double* cum_dist = nullptr;  ///< n entries
    const double* cum_load = nullptr;  ///< n entries
    const double* depart = nullptr;    ///< n entries
    const double* cum_tard = nullptr;  ///< n entries
    int n = 0;
    int last_late = -1;
  };

  View view() const noexcept {
    View v;
    v.n = n_;
    v.last_late = last_late_;
    if (n_ > 0) {
      const double* base = data_.data();
      v.arc = base;
      v.cum_dist = base + n_ + 1;
      v.cum_load = v.cum_dist + n_;
      v.depart = v.cum_load + n_;
      v.cum_tard = v.depart + n_;
    }
    return v;
  }

  bool route_empty() const noexcept { return n_ == 0; }
  int size() const noexcept { return n_; }

  /// Arc length into position p: distance(route[p-1], route[p]) with the
  /// depot as route[-1]; index n is the closing arc distance(route[n-1], 0).
  double arc(int p) const noexcept {
    return data_[static_cast<std::size_t>(p)];
  }
  /// Distance accumulated through the arc into position p (excludes the
  /// depot-return arc).
  double cum_dist(int p) const noexcept {
    return data_[static_cast<std::size_t>(n_ + 1 + p)];
  }
  /// Demand accumulated through position p.
  double cum_load(int p) const noexcept {
    return data_[static_cast<std::size_t>(2 * n_ + 1 + p)];
  }
  /// Departure time from position p (service completed).
  double depart(int p) const noexcept {
    return data_[static_cast<std::size_t>(3 * n_ + 1 + p)];
  }
  /// Tardiness accumulated through position p (excludes the depot return).
  double cum_tard(int p) const noexcept {
    return data_[static_cast<std::size_t>(4 * n_ + 1 + p)];
  }
  /// Largest position with strictly positive lateness; size() denotes the
  /// depot return, -1 a fully punctual route.  Lets suffix re-propagation
  /// stop adding tardiness terms once the tail is known to contribute only
  /// exact zeros.
  int last_late() const noexcept { return last_late_; }

 private:
  friend RouteStats evaluate_route_cached(const Instance& inst,
                                          std::span<const int> route,
                                          RouteCache& cache);

  std::vector<double> data_;
  int n_ = 0;
  int last_late_ = -1;
};

/// Evaluates a single route given as a sequence of customer indices
/// (excluding the depot endpoints).  An empty route yields all-zero stats.
RouteStats evaluate_route(const Instance& inst, std::span<const int> route);

/// evaluate_route plus a rebuild of `cache` in the same pass.  The returned
/// stats and every cached prefix are bitwise identical to what
/// evaluate_route computes (the differential tests assert this).
RouteStats evaluate_route_cached(const Instance& inst,
                                 std::span<const int> route,
                                 RouteCache& cache);

/// Resumable route evaluation: seed the accumulator with a cached prefix,
/// push the spliced-in visits one by one, then close with a cached tail.
/// Every arithmetic step mirrors evaluate_route exactly, so the final
/// (distance, tardiness) are bitwise what a from-scratch evaluation of the
/// modified route would produce — the invariant MoveEngine::evaluate and
/// archive duplicate detection rely on.
///
/// finish_with_tail terminates early: once the running departure time
/// rejoins the cached schedule (waiting at a visit absorbs the shift, the
/// time-slack cutoff), the remaining schedule is known to replay the cached
/// one, and when the cached tail carries no lateness the remaining
/// tardiness terms are exact zeros and only the cached arc lengths remain
/// to be summed.
class IncrementalRouteEval {
 public:
  /// The SoA field pointers are resolved once here, so the per-visit hot
  /// path below is pure pointer arithmetic over three dense double arrays
  /// (bitwise the same values as the Site loads they replace).
  explicit IncrementalRouteEval(const Instance& inst) noexcept
      : inst_(&inst),
        ready_(inst.soa().ready.data()),
        due_(inst.soa().due.data()),
        service_(inst.soa().service.data()) {}

  /// Resets to the depot (empty route prefix).
  void reset() noexcept {
    prev_ = 0;
    time_ = 0.0;
    dist_ = 0.0;
    tard_ = 0.0;
    visits_ = 0;
  }

  /// Adopts the cached state after the first `len` visits of `route`.
  void seed_prefix(std::span<const int> route, const RouteCache& cache,
                   int len) noexcept {
    seed_prefix(route, cache.view(), len);
  }

  /// View-based variant: batch pricing resolves each cache's view once and
  /// reuses it across the moves touching that route.
  void seed_prefix(std::span<const int> route, const RouteCache::View& v,
                   int len) noexcept {
    if (len <= 0) {
      reset();
      return;
    }
    prev_ = route[static_cast<std::size_t>(len - 1)];
    time_ = v.depart[len - 1];
    dist_ = v.cum_dist[len - 1];
    tard_ = v.cum_tard[len - 1];
    visits_ = len;
  }

  /// Visits customer `c` next (exact evaluate_route arithmetic).
  void push(int c) noexcept {
    const auto ci = static_cast<std::size_t>(c);
    const double d = inst_->distance(prev_, c);
    const double arrival = time_ + d;
    dist_ += d;
    tard_ += std::max(arrival - due_[ci], 0.0);
    time_ = std::max(arrival, ready_[ci]) + service_[ci];
    prev_ = c;
    ++visits_;
  }

  /// Visits route[from..to) in order.
  void push_range(std::span<const int> route, int from, int to) noexcept {
    for (int p = from; p < to; ++p) {
      push(route[static_cast<std::size_t>(p)]);
    }
  }

  /// Visits route[from..to) in reverse order (2-opt segment reversal).
  void push_reversed(std::span<const int> route, int from, int to) noexcept {
    for (int p = to - 1; p >= from; --p) {
      push(route[static_cast<std::size_t>(p)]);
    }
  }

  /// Closes the tour with the depot-return arc.  No-op for an empty route
  /// (evaluate_route's empty-route convention).
  void finish() noexcept {
    if (visits_ == 0) return;
    const double d = inst_->distance(prev_, 0);
    const double back = time_ + d;
    dist_ += d;
    tard_ += std::max(back - inst_->depot().due, 0.0);
  }

  /// Closes the tour with the tail route[from..] of a cached route,
  /// early-terminating once the departure time rejoins the cached schedule.
  void finish_with_tail(std::span<const int> route, const RouteCache& cache,
                        int from) noexcept {
    finish_with_tail(route, cache.view(), from);
  }

  /// View-based variant (same arithmetic; see seed_prefix above).
  void finish_with_tail(std::span<const int> route,
                        const RouteCache::View& v, int from) noexcept;

  double distance() const noexcept { return dist_; }
  double tardiness() const noexcept { return tard_; }
  bool route_empty() const noexcept { return visits_ == 0; }

 private:
  const Instance* inst_;
  const double* ready_;    ///< SoA field pointers (see ctor)
  const double* due_;
  const double* service_;
  int prev_ = 0;
  double time_ = 0.0;
  double dist_ = 0.0;
  double tard_ = 0.0;
  int visits_ = 0;
};

/// Arrival time at the customer occupying `position` within the route
/// (0-based).  Exposed for tests and for diagnostic reporting.
double arrival_time_at(const Instance& inst, std::span<const int> route,
                       std::size_t position);

/// O(1) variant reading the cached departure prefix of an evaluated
/// Solution; falls back to the O(position) walk when the solution has
/// pending dirty routes.
double arrival_time_at(const Solution& s, int route, std::size_t position);

}  // namespace tsmo
