#pragma once

// Candidate solution: a fixed fleet of R routes (some possibly empty) over
// the instance's customers, with cached per-route evaluation.
//
// The paper encodes solutions as one permutation string with 0-separators
// (§II.A): every tour starts/ends at the depot, tours are concatenated with
// consecutive zeros collapsed, and one trailing 0 is appended per unused
// vehicle, giving |P| = N + R + 1.  Solution stores routes directly and
// provides a lossless codec to and from that string.

#include <cstdint>
#include <span>
#include <vector>

#include "vrptw/evaluation.hpp"
#include "vrptw/instance.hpp"
#include "vrptw/objectives.hpp"

namespace tsmo {

class Solution {
 public:
  /// All R routes empty.  Evaluated state: zero objectives.
  explicit Solution(const Instance& inst);

  /// Builds from explicit routes (customer indices, depot excluded).
  /// Fewer than R routes are padded with empty ones; more than R throw.
  /// The result is fully evaluated.
  static Solution from_routes(const Instance& inst,
                              std::vector<std::vector<int>> routes);

  /// Decodes the paper's permutation representation.  Throws
  /// std::invalid_argument when the string is malformed (wrong length is
  /// accepted as long as tours fit the fleet; indices must be valid).
  static Solution from_permutation(const Instance& inst,
                                   std::span<const int> perm);

  const Instance& instance() const noexcept { return *inst_; }

  /// Fleet size R == number of route slots (including empty ones).
  int num_routes() const noexcept { return static_cast<int>(routes_.size()); }

  const std::vector<int>& route(int r) const noexcept {
    return routes_[static_cast<std::size_t>(r)];
  }

  /// Grants mutable access to a route and marks it dirty; the next
  /// evaluate() re-evaluates exactly the dirty routes.
  std::vector<int>& mutable_route(int r);

  /// Re-evaluates dirty routes (or everything on first call) and refreshes
  /// the cached objectives.  Idempotent when nothing is dirty.
  void evaluate();

  bool is_evaluated() const noexcept { return evaluated_ && dirty_.empty(); }

  /// Cached objectives; callers must evaluate() after mutation.
  const Objectives& objectives() const noexcept { return objectives_; }

  const RouteStats& route_stats(int r) const noexcept {
    return stats_[static_cast<std::size_t>(r)];
  }

  /// Segment summaries of route r (prefix distance / load / departure /
  /// tardiness arrays), rebuilt by evaluate() alongside route_stats.
  /// MoveEngine's delta evaluation reads these; only valid while
  /// is_evaluated() holds.
  const RouteCache& route_cache(int r) const noexcept {
    return caches_[static_cast<std::size_t>(r)];
  }

  /// f2: number of non-empty routes.
  int vehicles_used() const noexcept;

  /// Indices of the non-empty routes, ascending.  Rebuilt by evaluate();
  /// only valid while is_evaluated() holds.  Because empty routes
  /// contribute exact +0.0 terms, the objective totals summed over just
  /// these routes are bitwise identical to the sum over all routes.
  std::span<const int> active_routes() const noexcept {
    return active_routes_;
  }

  /// Left-to-right running sums of route distance / tardiness over the
  /// first k active routes (k in [0, active_routes().size()]).  Each entry
  /// equals, bitwise, the accumulator state of recompute_totals after that
  /// route — MoveEngine::evaluate seeds its total from here instead of
  /// replaying the whole chain.  Only valid while is_evaluated() holds.
  double prefix_distance(int k) const noexcept {
    return prefix_dist_[static_cast<std::size_t>(k)];
  }
  double prefix_tardiness(int k) const noexcept {
    return prefix_tard_[static_cast<std::size_t>(k)];
  }

  /// Number of non-empty routes with index < r — i.e. the position of
  /// route r in active_routes() when r is non-empty, and the position a
  /// newly filled route r would take when it is empty.  r may equal
  /// num_routes().  Only valid while is_evaluated() holds.
  int active_rank(int r) const noexcept {
    return active_rank_[static_cast<std::size_t>(r)];
  }

  /// Distance / tardiness of the k-th active route, stored contiguously so
  /// summation loops stay load-and-add only.  Bitwise equal to
  /// route_stats(active_routes()[k]).  Only valid while is_evaluated().
  double active_distance(int k) const noexcept {
    return active_dist_[static_cast<std::size_t>(k)];
  }
  double active_tardiness(int k) const noexcept {
    return active_tard_[static_cast<std::size_t>(k)];
  }

  /// Summed load excess over capacity across routes (0 when the operators'
  /// invariant holds).
  double capacity_violation() const noexcept;

  /// True when the solution violates neither time windows nor capacity.
  /// Tables I-IV only admit feasible solutions into the reported fronts.
  bool feasible() const noexcept {
    return objectives_.tardiness == 0.0 && capacity_violation() == 0.0;
  }

  /// Encodes the paper's permutation string, e.g. (0,4,2,0,3,0,1,0,0,0).
  std::vector<int> to_permutation() const;

  /// FNV-1a hash over the canonical permutation (route order preserved).
  std::uint64_t hash() const noexcept;

  /// Index of the route containing customer c, or -1.  O(1) via the
  /// customer->route index maintained alongside the routes.
  int route_of(int customer) const noexcept {
    return customer_route_[static_cast<std::size_t>(customer)];
  }

  /// Position of customer c within its route, or -1.  Kept consistent by
  /// rebuild during evaluate(); after raw route mutation call evaluate()
  /// before relying on it.
  int position_of(int customer) const noexcept {
    return customer_pos_[static_cast<std::size_t>(customer)];
  }

  /// Checks the structural invariant: every customer appears exactly once
  /// across all routes.  Throws std::logic_error with diagnostics.
  void validate() const;

 private:
  void rebuild_index();
  void recompute_totals();

  const Instance* inst_;
  std::vector<std::vector<int>> routes_;
  std::vector<RouteStats> stats_;
  std::vector<RouteCache> caches_;
  Objectives objectives_;
  std::vector<int> active_routes_;
  std::vector<int> active_rank_;
  std::vector<double> prefix_dist_;
  std::vector<double> prefix_tard_;
  std::vector<double> active_dist_;
  std::vector<double> active_tard_;
  std::vector<int> dirty_;
  bool evaluated_ = false;
  std::vector<int> customer_route_;  // size N+1; [0] unused
  std::vector<int> customer_pos_;
};

}  // namespace tsmo
