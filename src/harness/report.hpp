#pragma once

// Machine-readable export of run results (JSON) for external analysis and
// plotting pipelines.

#include <iosfwd>

#include "core/run_result.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

/// Writes one run as a JSON document: instance metadata, counters, and
/// the full archive (objectives, feasibility, routes per solution when
/// `include_routes`).
void write_run_json(std::ostream& os, const Instance& inst,
                    const RunResult& result, bool include_routes = true);

}  // namespace tsmo
