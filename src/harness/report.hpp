#pragma once

// Machine-readable export of run results (JSON) for external analysis and
// plotting pipelines, plus the human-readable per-phase telemetry table.

#include <iosfwd>

#include "core/run_result.hpp"
#include "util/telemetry.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

/// Writes one run as a JSON document: instance metadata, counters, and
/// the full archive (objectives, feasibility, routes per solution when
/// `include_routes`).
void write_run_json(std::ostream& os, const Instance& inst,
                    const RunResult& result, bool include_routes = true);

/// Renders every latency histogram of the snapshot as a "phase breakdown"
/// table (count, mean, p50/p90/p99, total time), sorted by total time so
/// the dominant phase tops the list.  No-op when the snapshot has no
/// histograms (telemetry off or compiled out).
void print_phase_breakdown(std::ostream& os,
                           const telemetry::Snapshot& snap);

}  // namespace tsmo
