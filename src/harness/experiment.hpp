#pragma once

// Experiment harness for regenerating the paper's Tables I-IV.
//
// One table = one problem set (e.g. the 400-city C1+R1 classes) evaluated
// with the sequential TSMO and the three parallel variants at 3/6/12
// processors.  Reported per algorithm, following the paper's conventions:
//   distance  mean ± sd over runs of the per-run SUM over instances of the
//             average feasible-front distance  (the paper's 6-digit values
//             are sums over the whole problem set)
//   vehicles  same aggregation for the vehicle objective
//   runtime   mean virtual runtime in seconds (DES cost model; see
//             DESIGN.md §4)
//   coverage  Zitzler set coverage, averaged over all run pairs and
//             problems against all other algorithms, both directions
//   speedup   (Ts/Tp - 1) as a percentage, like the paper's speedup column
//   p-value   paired t-test of per-run summed distance vs. the sequential
//             algorithm (the paper's significance analysis, §IV)
//
// Scale is controlled by TSMO_BENCH_SCALE (ci | small | paper) with
// TSMO_RUNS / TSMO_EVALS / TSMO_INSTANCES overrides, so the default bench
// invocation finishes on a laptop while `paper` reruns the full grid.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/run_result.hpp"
#include "sim/cost_model.hpp"

namespace tsmo {

struct ExperimentScale {
  int runs = 3;
  int instances_per_class = 2;
  std::int64_t max_evaluations = 10000;
  int neighborhood_size = 200;

  /// Reads TSMO_BENCH_SCALE (default "small") and the numeric overrides.
  static ExperimentScale from_env();
};

enum class AlgoKind { Sequential, Sync, Async, Coll, Hybrid };

struct AlgoConfig {
  std::string name;       ///< row label, e.g. "TSMO async."
  AlgoKind kind = AlgoKind::Sequential;
  int processors = 1;     ///< total processors (hybrid: islands x workers)
  int islands = 0;        ///< hybrid only
};

/// The standard grid of the paper: sequential + {sync, async, coll} at
/// {3, 6, 12} processors.
std::vector<AlgoConfig> paper_algorithm_grid();

struct TableSpec {
  std::string title;
  /// Class prefixes, e.g. {"C1_4", "R1_4"}; instances are generated as
  /// <prefix>_<ordinal> for ordinal in 1..instances_per_class.
  std::vector<std::string> class_prefixes;
  ExperimentScale scale;
  std::vector<AlgoConfig> algorithms = paper_algorithm_grid();
  std::uint64_t base_seed = 20070326;  // IPPS 2007
  /// Forwarded into TsmoParams::telemetry for every run (observation only;
  /// fingerprints and fronts are unaffected — see DESIGN.md §8).
  bool telemetry = false;
};

/// One table row after aggregation.
struct TableRow {
  std::string name;
  double distance_mean = 0.0, distance_sd = 0.0;
  double vehicles_mean = 0.0, vehicles_sd = 0.0;
  double runtime_mean = 0.0, runtime_sd = 0.0;
  double coverage_fwd = 0.0;  ///< this algorithm dominating the others
  double coverage_rev = 0.0;  ///< the others dominating this algorithm
  double speedup_pct = 0.0;   ///< vs sequential; 0 for the sequential row
  double p_value = 1.0;       ///< paired t-test vs sequential distance
  /// Robustness companions (CSV only; the printed table keeps the paper's
  /// columns): Mann-Whitney U p-value of the same comparison, and the mean
  /// additive epsilon indicator of this algorithm's fronts against the
  /// sequential fronts of the same problem/run.
  double mw_p_value = 1.0;
  double epsilon_vs_seq = 0.0;
};

struct TableResult {
  TableSpec spec;
  std::vector<TableRow> rows;
  /// feasible fronts[algo][problem][run] kept for metric recomputation.
  std::vector<std::vector<std::vector<std::vector<Objectives>>>> fronts;
};

/// Runs the full grid on the DES substrate.  Progress lines go to `log`
/// when non-null.
TableResult run_table(const TableSpec& spec, std::ostream* log = nullptr);

/// Renders the result in the paper's table layout.
void print_table(std::ostream& os, const TableResult& result);

/// Appends rows to a CSV file (one line per algorithm).
void write_table_csv(const std::string& path, const TableResult& result);

/// Executes one algorithm configuration on one instance (exposed for the
/// ablation benches and tests).
RunResult run_algorithm(const AlgoConfig& algo, const Instance& inst,
                        const TsmoParams& params, const CostModel& cost);

}  // namespace tsmo
