#pragma once

// SVG rendering of solutions: routes as colored polylines over the
// customer layout.  Dependency-free; output opens in any browser.

#include <iosfwd>

#include "vrptw/solution.hpp"

namespace tsmo {

struct SvgOptions {
  int width = 800;
  int height = 800;
  bool show_customer_ids = false;
  std::string title;  ///< rendered above the plot when non-empty
};

/// Writes a standalone SVG document visualizing the solution's routes.
void write_solution_svg(std::ostream& os, const Solution& solution,
                        const SvgOptions& options = {});

}  // namespace tsmo
