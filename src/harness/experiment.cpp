#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "moo/metrics.hpp"
#include "sim/sim_tsmo.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "vrptw/generator.hpp"

namespace tsmo {

ExperimentScale ExperimentScale::from_env() {
  ExperimentScale s;
  const std::string scale = env_string("TSMO_BENCH_SCALE").value_or("small");
  if (scale == "ci") {
    s.runs = 2;
    s.instances_per_class = 1;
    s.max_evaluations = 2000;
  } else if (scale == "paper") {
    s.runs = 30;
    s.instances_per_class = 10;
    s.max_evaluations = 100000;
  } else {  // "small" and anything else
    s.runs = 3;
    s.instances_per_class = 2;
    s.max_evaluations = 8000;
  }
  s.runs = static_cast<int>(env_int("TSMO_RUNS", s.runs));
  s.instances_per_class = static_cast<int>(
      env_int("TSMO_INSTANCES", s.instances_per_class));
  s.max_evaluations = env_int("TSMO_EVALS", s.max_evaluations);
  s.neighborhood_size =
      static_cast<int>(env_int("TSMO_NEIGHBORHOOD", s.neighborhood_size));
  return s;
}

std::vector<AlgoConfig> paper_algorithm_grid() {
  std::vector<AlgoConfig> grid;
  grid.push_back({"Sequential TSMO", AlgoKind::Sequential, 1, 0});
  for (int p : {3, 6, 12}) {
    grid.push_back({"TSMO sync. " + std::to_string(p) + "p",
                    AlgoKind::Sync, p, 0});
    grid.push_back({"TSMO async. " + std::to_string(p) + "p",
                    AlgoKind::Async, p, 0});
    grid.push_back({"TSMO coll. " + std::to_string(p) + "p",
                    AlgoKind::Coll, p, 0});
  }
  return grid;
}

RunResult run_algorithm(const AlgoConfig& algo, const Instance& inst,
                        const TsmoParams& params, const CostModel& cost) {
  switch (algo.kind) {
    case AlgoKind::Sequential:
      return run_sim_sequential(inst, params, cost);
    case AlgoKind::Sync:
      return run_sim_sync(inst, params, algo.processors, cost);
    case AlgoKind::Async:
      return run_sim_async(inst, params, algo.processors, cost);
    case AlgoKind::Coll: {
      MultisearchResult r =
          run_sim_multisearch(inst, params, algo.processors, cost);
      // Runtime of the parallel composition: the last searcher to finish.
      double finish = 0.0;
      for (const RunResult& s : r.per_searcher) {
        finish = std::max(finish, s.sim_seconds);
      }
      r.merged.sim_seconds = finish;
      return std::move(r.merged);
    }
    case AlgoKind::Hybrid: {
      const int islands = algo.islands > 0 ? algo.islands : 2;
      const int per_island =
          std::max(2, algo.processors / std::max(islands, 1));
      MultisearchResult r =
          run_sim_hybrid(inst, params, islands, per_island, cost);
      double finish = 0.0;
      for (const RunResult& s : r.per_searcher) {
        finish = std::max(finish, s.sim_seconds);
      }
      r.merged.sim_seconds = finish;
      return std::move(r.merged);
    }
  }
  throw std::logic_error("run_algorithm: unknown algorithm kind");
}

namespace {

double mean_front_distance(const std::vector<Objectives>& front) {
  if (front.empty()) return 0.0;
  double s = 0.0;
  for (const Objectives& o : front) s += o.distance;
  return s / static_cast<double>(front.size());
}

double mean_front_vehicles(const std::vector<Objectives>& front) {
  if (front.empty()) return 0.0;
  double s = 0.0;
  for (const Objectives& o : front) s += static_cast<double>(o.vehicles);
  return s / static_cast<double>(front.size());
}

}  // namespace

TableResult run_table(const TableSpec& spec, std::ostream* log) {
  TableResult result;
  result.spec = spec;

  // --- Generate the problem set. ---
  std::vector<Instance> instances;
  for (const std::string& prefix : spec.class_prefixes) {
    for (int k = 1; k <= spec.scale.instances_per_class; ++k) {
      instances.push_back(
          generate_named(prefix + "_" + std::to_string(k)));
    }
  }
  const std::size_t num_problems = instances.size();
  const std::size_t num_algos = spec.algorithms.size();
  const auto runs = static_cast<std::size_t>(spec.scale.runs);

  // fronts[algo][problem][run] = feasible front of that run.
  result.fronts.assign(
      num_algos,
      std::vector<std::vector<std::vector<Objectives>>>(
          num_problems, std::vector<std::vector<Objectives>>(runs)));

  // Per-run aggregates for the distance / vehicles / runtime columns.
  std::vector<std::vector<double>> dist_sum(num_algos,
                                            std::vector<double>(runs, 0.0));
  std::vector<std::vector<double>> veh_sum(num_algos,
                                           std::vector<double>(runs, 0.0));
  std::vector<std::vector<double>> runtime(num_algos,
                                           std::vector<double>(runs, 0.0));

  for (std::size_t p = 0; p < num_problems; ++p) {
    const CostModel cost = CostModel::for_instance(instances[p]);
    for (std::size_t a = 0; a < num_algos; ++a) {
      for (std::size_t r = 0; r < runs; ++r) {
        TsmoParams params;
        params.max_evaluations = spec.scale.max_evaluations;
        params.neighborhood_size = spec.scale.neighborhood_size;
        // The paper's restart threshold (100 unimproving iterations) is
        // tuned for 500-iteration runs; scale it down with the budget so
        // the reduced grids still exercise restarts and the collaborative
        // exchange phase.
        const std::int64_t iterations =
            spec.scale.max_evaluations /
            std::max(spec.scale.neighborhood_size, 1);
        params.restart_after = static_cast<int>(std::clamp<std::int64_t>(
            iterations / 5, 5, 100));
        params.seed = spec.base_seed + 1000003ULL * p + 131ULL * a + r;
        params.telemetry = spec.telemetry;
        const RunResult run = [&] {
          TSMO_SPAN_TIMED("table.run", "harness.run_ns");
          return run_algorithm(spec.algorithms[a], instances[p], params,
                               cost);
        }();
        const auto front = run.feasible_front();
        result.fronts[a][p][r] = front;
        dist_sum[a][r] += mean_front_distance(front);
        veh_sum[a][r] += mean_front_vehicles(front);
        runtime[a][r] += run.sim_seconds /
                         static_cast<double>(num_problems);
        if (log) {
          *log << "  " << instances[p].name() << " / "
               << spec.algorithms[a].name << " run " << (r + 1) << "/"
               << runs << ": front=" << front.size()
               << " dist=" << fmt_double(mean_front_distance(front))
               << " veh=" << fmt_double(mean_front_vehicles(front), 1)
               << " T=" << fmt_double(run.sim_seconds, 1) << "s\n";
        }
      }
    }
  }

  // --- Coverage: average over problems, run pairs, and other algorithms.
  auto coverage_between = [&](std::size_t a, std::size_t b) {
    RunningStats acc;
    for (std::size_t p = 0; p < num_problems; ++p) {
      for (std::size_t i = 0; i < runs; ++i) {
        for (std::size_t j = 0; j < runs; ++j) {
          acc.add(set_coverage(result.fronts[a][p][i],
                               result.fronts[b][p][j]));
        }
      }
    }
    return acc.mean();
  };

  // --- Assemble rows. ---
  const double seq_runtime = mean_of(runtime[0]);
  for (std::size_t a = 0; a < num_algos; ++a) {
    TableRow row;
    row.name = spec.algorithms[a].name;
    row.distance_mean = mean_of(dist_sum[a]);
    row.distance_sd = stddev_of(dist_sum[a]);
    row.vehicles_mean = mean_of(veh_sum[a]);
    row.vehicles_sd = stddev_of(veh_sum[a]);
    row.runtime_mean = mean_of(runtime[a]);
    row.runtime_sd = stddev_of(runtime[a]);
    RunningStats fwd, rev;
    for (std::size_t b = 0; b < num_algos; ++b) {
      if (b == a) continue;
      fwd.add(coverage_between(a, b));
      rev.add(coverage_between(b, a));
    }
    row.coverage_fwd = fwd.mean();
    row.coverage_rev = rev.mean();
    if (a > 0) {
      row.speedup_pct =
          row.runtime_mean > 0.0
              ? (seq_runtime / row.runtime_mean - 1.0) * 100.0
              : 0.0;
      row.p_value = paired_t_test(dist_sum[a], dist_sum[0]).p_value;
      row.mw_p_value = mann_whitney_u(dist_sum[a], dist_sum[0]).p_value;
      RunningStats eps;
      for (std::size_t p = 0; p < num_problems; ++p) {
        for (std::size_t r = 0; r < runs; ++r) {
          const double e = epsilon_indicator(result.fronts[a][p][r],
                                             result.fronts[0][p][r]);
          if (std::isfinite(e)) eps.add(e);
        }
      }
      row.epsilon_vs_seq = eps.mean();
    }
    result.rows.push_back(row);
  }
  return result;
}

void print_table(std::ostream& os, const TableResult& result) {
  TextTable table({"Algorithm", "distance", "vehicles", "runtime [s]",
                   "coverage", "speedup", "p vs seq"});
  int last_procs = -1;
  for (std::size_t a = 0; a < result.rows.size(); ++a) {
    const TableRow& row = result.rows[a];
    const int procs = result.spec.algorithms[a].processors;
    if (a > 0 && procs != last_procs) table.add_separator();
    last_procs = procs;
    std::vector<std::string> cells;
    cells.push_back(row.name);
    cells.push_back(format_mean_sd(row.distance_mean, row.distance_sd));
    cells.push_back(format_mean_sd(row.vehicles_mean, row.vehicles_sd));
    cells.push_back(format_mean_sd(row.runtime_mean, row.runtime_sd));
    cells.push_back(fmt_percent(row.coverage_fwd) + " <-> " +
                    fmt_percent(row.coverage_rev));
    cells.push_back(a == 0 ? "-" : fmt_percent(row.speedup_pct / 100.0));
    cells.push_back(a == 0 ? "-" : fmt_double(row.p_value, 4));
    table.add_row(std::move(cells));
  }
  table.print(os, result.spec.title);
}

void write_table_csv(const std::string& path, const TableResult& result) {
  std::ofstream f(path);
  if (!f) return;
  std::vector<std::vector<std::string>> rows;
  for (const TableRow& r : result.rows) {
    rows.push_back({r.name, fmt_double(r.distance_mean),
                    fmt_double(r.distance_sd), fmt_double(r.vehicles_mean),
                    fmt_double(r.vehicles_sd), fmt_double(r.runtime_mean),
                    fmt_double(r.runtime_sd), fmt_double(r.coverage_fwd, 4),
                    fmt_double(r.coverage_rev, 4),
                    fmt_double(r.speedup_pct, 2), fmt_double(r.p_value, 6),
                    fmt_double(r.mw_p_value, 6),
                    fmt_double(r.epsilon_vs_seq, 4)});
  }
  write_csv(f,
            {"algorithm", "distance_mean", "distance_sd", "vehicles_mean",
             "vehicles_sd", "runtime_mean_s", "runtime_sd_s",
             "coverage_fwd", "coverage_rev", "speedup_pct", "p_value",
             "mann_whitney_p", "epsilon_vs_seq"},
            rows);
}

}  // namespace tsmo
