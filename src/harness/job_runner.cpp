#include "harness/job_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/sequential_tsmo.hpp"
#include "harness/report.hpp"
#include "moo/anytime.hpp"
#include "moo/introspect.hpp"
#include "parallel/async_tsmo.hpp"
#include "parallel/hybrid_tsmo.hpp"
#include "parallel/multisearch_tsmo.hpp"
#include "parallel/sync_tsmo.hpp"
#include "util/json.hpp"
#include "vrptw/generator.hpp"
#include "vrptw/solomon_io.hpp"

namespace tsmo {

namespace {

/// Applies the "params" object onto paper-default TsmoParams.
TsmoParams parse_params(const JsonValue* node) {
  TsmoParams p;
  p.trace = true;  // fingerprints are part of the job contract
  if (node == nullptr || !node->is_object()) return p;
  if (const JsonValue* v = node->find("evaluations")) {
    p.max_evaluations = v->as_int64(p.max_evaluations);
  }
  if (const JsonValue* v = node->find("neighborhood")) {
    p.neighborhood_size = static_cast<int>(v->as_int64(p.neighborhood_size));
  }
  if (const JsonValue* v = node->find("tenure")) {
    p.tabu_tenure = static_cast<int>(v->as_int64(p.tabu_tenure));
  }
  if (const JsonValue* v = node->find("candidate_k")) {
    p.candidate_k = static_cast<int>(v->as_int64(p.candidate_k));
  }
  if (const JsonValue* v = node->find("archive")) {
    p.archive_capacity = static_cast<int>(v->as_int64(p.archive_capacity));
  }
  if (const JsonValue* v = node->find("restart_after")) {
    p.restart_after = static_cast<int>(v->as_int64(p.restart_after));
  }
  if (const JsonValue* v = node->find("seed")) {
    p.seed = static_cast<std::uint64_t>(v->as_int64(1));
  }
  if (const JsonValue* v = node->find("trace")) {
    p.trace = v->as_bool(true);
  }
  if (const JsonValue* v = node->find("telemetry")) {
    p.telemetry = v->as_bool(p.telemetry);
  }
  if (const JsonValue* v = node->find("introspect")) {
    p.introspect = v->as_bool(p.introspect);
  }
  if (const JsonValue* v = node->find("profile_hz")) {
    p.profile_hz = static_cast<int>(v->as_int64(p.profile_hz));
  }
  if (const JsonValue* v = node->find("screen"); v && v->is_string()) {
    const std::string& s = v->as_string();
    if (s == "capacity") {
      p.feasibility_screen = FeasibilityScreen::CapacityOnly;
    } else if (s == "exact") {
      p.feasibility_screen = FeasibilityScreen::Exact;
    } else if (s == "local") {
      p.feasibility_screen = FeasibilityScreen::Local;
    } else {
      throw std::invalid_argument("unknown screen: " + s);
    }
  }
  p.clamp();
  return p;
}

RunResult run_engine(const std::string& algorithm, const Instance& inst,
                     const TsmoParams& params, int processors,
                     ConvergenceRecorder* recorder,
                     LiveIntrospect* introspect) {
  if (algorithm == "seq") {
    SequentialTsmo seq(inst, params);
    seq.set_introspect(introspect);
    return seq.run();
  }
  if (algorithm == "sync") {
    SyncOptions so;
    so.deterministic = true;
    so.recorder = recorder;
    so.introspect = introspect;
    return SyncTsmo(inst, params, processors, so).run();
  }
  if (algorithm == "async") {
    AsyncOptions ao;
    ao.deterministic = true;
    ao.recorder = recorder;
    ao.introspect = introspect;
    return AsyncTsmo(inst, params, processors, ao).run();
  }
  if (algorithm == "coll") {
    MultisearchOptions mo;
    mo.deterministic = true;
    mo.recorder = recorder;
    mo.introspect = introspect;
    MultisearchResult r = MultisearchTsmo(inst, params, processors, mo).run();
    return std::move(r.merged);
  }
  if (algorithm == "hybrid") {
    HybridOptions ho;
    ho.deterministic = true;
    ho.recorder = recorder;
    ho.introspect = introspect;
    const int per_island = std::max(2, processors / 2);
    MultisearchResult r = HybridTsmo(inst, params, 2, per_island, ho).run();
    return std::move(r.merged);
  }
  throw std::invalid_argument(
      "unknown algorithm: " + algorithm +
      " (job plane runs: seq | sync | async | coll | hybrid)");
}

}  // namespace

obs::JobOutcome run_job_body(const std::string& body,
                             const obs::JobContext& ctx) {
  obs::JobOutcome out;
  try {
    std::string parse_error;
    const std::unique_ptr<JsonValue> doc = json_parse(body, &parse_error);
    if (!doc || !doc->is_object()) {
      out.error = "invalid job body: " + parse_error;
      return out;
    }

    Instance inst = [&] {
      if (const JsonValue* s = doc->find("solomon");
          s != nullptr && s->is_string()) {
        std::istringstream is(s->as_string());
        return read_solomon(is);
      }
      const JsonValue* name = doc->find("instance");
      if (name == nullptr || !name->is_string()) {
        throw std::invalid_argument(
            "job needs an \"instance\" or \"solomon\" string field");
      }
      return generate_named(name->as_string());
    }();

    TsmoParams params = parse_params(doc->find("params"));
    params.stop = ctx.cancel;
    // Causal trace plumbing (DESIGN.md §13): engine and worker spans
    // parent under the manager's "job.run" span.  Pure observability —
    // engines never branch on these ids.
    params.trace_id = ctx.trace.trace_id;
    params.trace_parent_span = ctx.trace.span_id;

    std::string algorithm = "seq";
    if (const JsonValue* a = doc->find("algorithm");
        a != nullptr && a->is_string()) {
      algorithm = a->as_string();
    }
    int processors = 3;
    if (const JsonValue* p = doc->find("processors")) {
      processors = std::max(1, static_cast<int>(p->as_int64(processors)));
    }
    bool include_routes = false;
    if (const JsonValue* r = doc->find("include_routes")) {
      include_routes = r->as_bool(false);
    }

    // Per-job recorder: the live anytime front GET /jobs/<id> serves.
    // Observation only — fingerprints are identical with or without it.
    ConvergenceConfig cc;
    cc.reference = convergence_reference(inst);
    cc.sample_every_iters = params.convergence_sample_iters;
    cc.sample_every_ms = params.convergence_sample_ms;
    ConvergenceRecorder recorder(cc);
    // Per-job introspection hub (DESIGN.md §14) when the body opted in;
    // shared by every searcher of this job and served live on
    // GET /jobs/<id>/introspect.
    std::unique_ptr<LiveIntrospect> introspect;
    if (params.introspect) {
      char label[24];
      std::snprintf(label, sizeof(label), "job-%016llx",
                    static_cast<unsigned long long>(ctx.trace.trace_id));
      introspect = std::make_unique<LiveIntrospect>(label);
    }
    // Declared after the recorder/hub so it retracts the published
    // pointers *before* they die — on every exit path, including engine
    // exceptions unwinding past this scope.
    struct PublishGuard {
      const obs::JobContext* ctx;
      ~PublishGuard() {
        if (ctx->publish) ctx->publish(nullptr);
        if (ctx->publish_introspect) ctx->publish_introspect(nullptr);
      }
    } guard{&ctx};
    if (ctx.publish) ctx.publish(&recorder);
    if (introspect != nullptr && ctx.publish_introspect) {
      ctx.publish_introspect(introspect.get());
    }

    RunResult result = run_engine(algorithm, inst, params, processors,
                                  &recorder, introspect.get());

    recorder.finalize(result.front);
    if (introspect != nullptr) {
      out.introspect_json = introspect->to_json();
      out.introspect_json += '\n';
    }

    std::ostringstream os;
    write_run_json(os, inst, result, include_routes);
    out.result_json = os.str();
    out.algorithm = result.algorithm;
    out.instance = inst.name();
    out.trace_fingerprint = result.trace_fingerprint;
    out.archive_fingerprint = result.archive_fingerprint;
    out.front_size = result.front.size();
    out.evaluations = result.evaluations;
    out.wall_seconds = result.wall_seconds;
    out.stopped_early = result.stopped_early;
    // SLO feed: insertion clocks are relative to recorder construction,
    // which brackets the whole engine run, so the first event's t_ns is
    // the runner-side submit-to-first-front latency.
    if (!recorder.insertions().empty()) {
      out.first_front_ns = recorder.insertions().front().t_ns;
    }
    out.stalls_flagged =
        static_cast<std::uint64_t>(recorder.stalls_flagged());
    out.ok = true;
  } catch (const std::exception& e) {
    out = obs::JobOutcome{};
    out.error = e.what();
  }
  return out;
}

obs::JobRunner make_job_runner() {
  return [](const std::string& body, const obs::JobContext& ctx) {
    return run_job_body(body, ctx);
  };
}

}  // namespace tsmo
