#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <vector>

#include "obs/buildinfo.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace tsmo {

namespace {

/// Fingerprints travel as "0x%016x" hex strings: JSON numbers are doubles
/// to most consumers, which would silently round above 2^53.
std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

void write_run_json(std::ostream& os, const Instance& inst,
                    const RunResult& result, bool include_routes) {
  JsonWriter w(os);
  w.begin_object();
  w.key("algorithm").value(result.algorithm);
  // Build provenance: every result is traceable to the binary that made
  // it (see EXPERIMENTS.md, "Result schema").
  const obs::BuildInfo& build = obs::build_info();
  w.key("build").begin_object();
  w.key("git_sha").value(build.git_sha);
  w.key("compiler").value(build.compiler);
  w.key("flags").value(build.flags);
  w.end_object();
  w.key("instance").begin_object();
  w.key("name").value(inst.name());
  w.key("customers").value(inst.num_customers());
  w.key("max_vehicles").value(inst.max_vehicles());
  w.key("capacity").value(inst.capacity());
  w.end_object();
  w.key("evaluations").value(result.evaluations);
  w.key("iterations").value(result.iterations);
  w.key("restarts").value(result.restarts);
  w.key("wall_seconds").value(result.wall_seconds);
  w.key("sim_seconds").value(result.sim_seconds);
  w.key("iterations_per_second").value(result.iterations_per_second);
  w.key("archive_fingerprint").value(hex64(result.archive_fingerprint));
  if (result.trace_fingerprint != 0) {
    w.key("trace_fingerprint").value(hex64(result.trace_fingerprint));
  }
  if (!result.telemetry_path.empty()) {
    w.key("telemetry_path").value(result.telemetry_path);
  }
  if (result.stopped_early) w.key("stopped_early").value(true);
  if (!result.postmortem_path.empty()) {
    w.key("postmortem_path").value(result.postmortem_path);
  }
  // Search-introspection summary (DESIGN.md §14): the run's cumulative
  // operator funnel and tabu/archive pressure.  Omitted for runs that
  // recorded no steps (e.g. merged placeholders).
  if (result.introspect.steps > 0) {
    const IntrospectStats& is = result.introspect;
    w.key("introspect").begin_object();
    w.key("operators").begin_object();
    for (int m = 0; m < kNumMoveTypes; ++m) {
      const auto idx = static_cast<std::size_t>(m);
      w.key(to_string(static_cast<MoveType>(m))).begin_object();
      w.key("proposed")
          .value(static_cast<std::int64_t>(is.proposed[idx]));
      w.key("accepted")
          .value(static_cast<std::int64_t>(is.accepted[idx]));
      w.key("improving")
          .value(static_cast<std::int64_t>(is.improving[idx]));
      w.end_object();
    }
    w.end_object();
    w.key("steps").value(static_cast<std::int64_t>(is.steps));
    w.key("restarts").value(static_cast<std::int64_t>(is.restarts));
    w.key("tabu").begin_object();
    w.key("checked").value(static_cast<std::int64_t>(is.tabu_checked));
    w.key("hits").value(static_cast<std::int64_t>(is.tabu_hits));
    w.key("aspirations")
        .value(static_cast<std::int64_t>(is.tabu_aspirations));
    w.end_object();
    w.key("archive").begin_object();
    w.key("inserts").value(static_cast<std::int64_t>(is.archive_inserts));
    w.key("evictions")
        .value(static_cast<std::int64_t>(is.archive_evictions));
    w.key("dominated_rejects")
        .value(static_cast<std::int64_t>(is.archive_dominated_rejects));
    w.key("duplicate_rejects")
        .value(static_cast<std::int64_t>(is.archive_duplicate_rejects));
    w.key("crowded_rejects")
        .value(static_cast<std::int64_t>(is.archive_crowded_rejects));
    w.end_object();
    w.end_object();
  }

  w.key("front").begin_array();
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    const Objectives& o = result.front[i];
    w.begin_object();
    w.key("distance").value(o.distance);
    w.key("vehicles").value(o.vehicles);
    w.key("tardiness").value(o.tardiness);
    if (i < result.solutions.size()) {
      const Solution& s = result.solutions[i];
      w.key("feasible").value(s.feasible());
      if (include_routes) {
        w.key("routes").begin_array();
        for (int r = 0; r < s.num_routes(); ++r) {
          if (s.route(r).empty()) continue;
          w.begin_array();
          for (int c : s.route(r)) w.value(c);
          w.end_array();
        }
        w.end_array();
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void print_phase_breakdown(std::ostream& os,
                           const telemetry::Snapshot& snap) {
  std::vector<const telemetry::HistogramSnap*> rows;
  for (const telemetry::HistogramSnap& h : snap.histograms) {
    if (h.count > 0) rows.push_back(&h);
  }
  if (rows.empty()) return;
  std::sort(rows.begin(), rows.end(),
            [](const telemetry::HistogramSnap* a,
               const telemetry::HistogramSnap* b) {
              return a->sum_ns > b->sum_ns;
            });
  TextTable table({"phase", "count", "mean [us]", "p50 [us]", "p90 [us]",
                   "p99 [us]", "total [ms]"});
  for (const telemetry::HistogramSnap* h : rows) {
    table.add_row({h->name, std::to_string(h->count),
                   fmt_double(h->mean_ns() * 1e-3, 1),
                   fmt_double(h->quantile_ns(0.5) * 1e-3, 1),
                   fmt_double(h->quantile_ns(0.9) * 1e-3, 1),
                   fmt_double(h->quantile_ns(0.99) * 1e-3, 1),
                   fmt_double(static_cast<double>(h->sum_ns) * 1e-6, 1)});
  }
  table.print(os, "Telemetry phase breakdown");
}

}  // namespace tsmo
