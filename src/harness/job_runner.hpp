#pragma once

// The standard JobRunner of the job plane (DESIGN.md §12): turns one
// submitted JSON body into an engine run and a serialized RunResult.
//
// Body schema (all fields except the instance source optional):
//
//   {
//     "instance":  "R1_1_1",          // generator spec, XOR
//     "solomon":   "<instance text>", // Solomon-format instance
//     "algorithm": "seq",             // seq | sync | async | coll | hybrid
//     "processors": 3,
//     "include_routes": false,        // routes in the result document
//     "params": {                     // TsmoParams subset
//       "evaluations": 20000, "neighborhood": 200, "tenure": 20,
//       "candidate_k": 0, "archive": 20, "restart_after": 100,
//       "seed": 1, "screen": "local", "trace": true
//     }
//   }
//
// The parallel engines always run in deterministic mode here: a job's
// result is a pure function of (instance, params, processors), never of
// execution width, queue interleaving or concurrent load — which is what
// makes the per-job golden-seed fingerprint guard meaningful.  Tracing
// defaults on so trace fingerprints are filled.
//
// This lives in the harness (not src/obs) because it links the whole
// engine stack; obs::JobManager only sees it as an injected callback.

#include <string>

#include "obs/job_manager.hpp"

namespace tsmo {

/// Runs one job body to completion (honoring ctx.cancel as the per-run
/// stop flag, publishing a live convergence recorder through
/// ctx.publish).  Never throws: malformed bodies and engine errors come
/// back as ok=false.  Exposed directly so tests can run the exact same
/// code path in-process and compare fingerprints against service runs.
obs::JobOutcome run_job_body(const std::string& body,
                             const obs::JobContext& ctx);

/// run_job_body as a bindable obs::JobRunner.
obs::JobRunner make_job_runner();

}  // namespace tsmo
