#include "harness/plot.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace tsmo {

namespace {

/// Qualitative palette (ColorBrewer-like), cycled over routes.
constexpr const char* kPalette[] = {
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e", "#e6ab02",
    "#a6761d", "#666666", "#1f78b4", "#b2df8a", "#fb9a99", "#cab2d6",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

}  // namespace

void write_solution_svg(std::ostream& os, const Solution& solution,
                        const SvgOptions& options) {
  const Instance& inst = solution.instance();

  double lo_x = 1e300, hi_x = -1e300, lo_y = 1e300, hi_y = -1e300;
  for (int i = 0; i < inst.num_sites(); ++i) {
    lo_x = std::min(lo_x, inst.site(i).x);
    hi_x = std::max(hi_x, inst.site(i).x);
    lo_y = std::min(lo_y, inst.site(i).y);
    hi_y = std::max(hi_y, inst.site(i).y);
  }
  const double margin = 30.0;
  const double top = options.title.empty() ? margin : margin + 24.0;
  const double sx =
      (options.width - 2 * margin) / std::max(hi_x - lo_x, 1e-9);
  const double sy =
      (options.height - margin - top) / std::max(hi_y - lo_y, 1e-9);
  const double scale = std::min(sx, sy);
  auto px = [&](double x) { return margin + (x - lo_x) * scale; };
  auto py = [&](double y) {
    // SVG y grows downward; flip so north stays up.
    return options.height - margin - (y - lo_y) * scale;
  };

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << options.width << "\" height=\"" << options.height
     << "\" viewBox=\"0 0 " << options.width << ' ' << options.height
     << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    os << "<text x=\"" << margin << "\" y=\"" << margin
       << "\" font-family=\"sans-serif\" font-size=\"16\">"
       << options.title << "</text>\n";
  }

  char buf[128];
  // Routes as polylines depot -> customers -> depot.
  int color = 0;
  for (int r = 0; r < solution.num_routes(); ++r) {
    const auto& route = solution.route(r);
    if (route.empty()) continue;
    os << "<polyline fill=\"none\" stroke=\""
       << kPalette[static_cast<std::size_t>(color++) % kPaletteSize]
       << "\" stroke-width=\"1.5\" points=\"";
    std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", px(inst.depot().x),
                  py(inst.depot().y));
    os << buf;
    for (int c : route) {
      std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", px(inst.site(c).x),
                    py(inst.site(c).y));
      os << buf;
    }
    std::snprintf(buf, sizeof(buf), "%.1f,%.1f", px(inst.depot().x),
                  py(inst.depot().y));
    os << buf << "\"/>\n";
  }

  // Customers as dots (optionally labeled), depot as a black square.
  for (int i = 1; i < inst.num_sites(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" "
                  "fill=\"#333333\"/>\n",
                  px(inst.site(i).x), py(inst.site(i).y));
    os << buf;
    if (options.show_customer_ids) {
      std::snprintf(buf, sizeof(buf),
                    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"8\" "
                    "font-family=\"sans-serif\">%d</text>\n",
                    px(inst.site(i).x) + 3.0, py(inst.site(i).y) - 3.0, i);
      os << buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" "
                "fill=\"black\"/>\n",
                px(inst.depot().x) - 5.0, py(inst.depot().y) - 5.0);
  os << buf;
  os << "</svg>\n";
}

}  // namespace tsmo
