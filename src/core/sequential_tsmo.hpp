#pragma once

// The sequential TSMO algorithm — Algorithm 1 of the paper.  This is the
// baseline row of Tables I-IV and the behavioural reference for the
// synchronous parallelization (which must match it in solution quality).

#include <functional>

#include "core/run_result.hpp"
#include "core/search_state.hpp"

namespace tsmo {

/// Per-iteration event delivered to observers; used by the Fig. 1
/// trajectory bench and by tests that assert loop invariants.
struct IterationEvent {
  std::int64_t iteration = 0;
  std::int64_t evaluations = 0;
  Objectives current;                        ///< objectives after the step
  const std::vector<Candidate>* candidates;  ///< this step's neighborhood
  bool restarted = false;
  bool archive_improved = false;
};

using IterationObserver = std::function<void(const IterationEvent&)>;

class SequentialTsmo {
 public:
  SequentialTsmo(const Instance& inst, const TsmoParams& params)
      : inst_(&inst), params_(params) {}

  /// Runs Algorithm 1 until the evaluation budget is exhausted.
  RunResult run(const IterationObserver& observer = {}) const;

  /// Optional live introspection hub (DESIGN.md §14) the searcher
  /// publishes into each step; overrides the self-created hub that
  /// params.introspect would otherwise provide.  Observation only.
  void set_introspect(LiveIntrospect* live) noexcept { introspect_ = live; }

 private:
  const Instance* inst_;
  TsmoParams params_;
  LiveIntrospect* introspect_ = nullptr;
};

/// Copies the archive of a finished searcher into a RunResult.
RunResult collect_result(const SearchState& state, std::string algorithm,
                         double wall_seconds);

}  // namespace tsmo
