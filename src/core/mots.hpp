#pragma once

// MOTS — Hansen's multiobjective Tabu Search (MCDM 1997), the prior MO
// tabu search the paper discusses in §III.A ("An investigation of Tabu
// Search for MO optimisation resulted in the MOTS algorithm").  Provided
// as a comparator for the TSMO family.
//
// Simplified but faithful core: a set of concurrent "current" solutions,
// each optimizing a weighted scalarization with its own tabu list; the
// weight vectors are re-derived every iteration so that each point is
// pushed hardest on the objectives where its peers beat it — drifting the
// set apart along the front.  All non-dominated solutions feed a shared
// archive, which is the reported result.

#include "core/params.hpp"
#include "core/run_result.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

struct MotsParams {
  std::int64_t max_evaluations = 100000;
  int num_searchers = 8;         ///< concurrent current solutions
  int neighborhood_size = 25;    ///< samples per searcher per iteration
  int tabu_tenure = 20;
  int archive_capacity = 40;
  FeasibilityScreen feasibility_screen = FeasibilityScreen::Local;
  std::uint64_t seed = 1;
};

class Mots {
 public:
  Mots(const Instance& inst, const MotsParams& params)
      : inst_(&inst), params_(params) {}

  RunResult run() const;

 private:
  const Instance* inst_;
  MotsParams params_;
};

}  // namespace tsmo
