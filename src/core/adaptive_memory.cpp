#include "core/adaptive_memory.hpp"

#include <algorithm>
#include <cmath>

#include "construct/i1_insertion.hpp"
#include "construct/insertion_utils.hpp"
#include "core/search_state.hpp"
#include "moo/archive.hpp"
#include "util/timer.hpp"

namespace tsmo {

namespace {

/// One remembered route with the quality of the solution it came from
/// (lower is better; tardiness is penalized heavily so the pool prefers
/// parts of feasible solutions).
struct PooledRoute {
  std::vector<int> route;
  double parent_quality = 0.0;
};

double solution_quality(const Objectives& o) {
  return o.distance + 1000.0 * o.tardiness +
         50.0 * static_cast<double>(o.vehicles);
}

}  // namespace

RunResult AdaptiveMemoryTsmo::run() const {
  Timer timer;
  Rng rng(params_.seed);
  ParetoArchive<Solution> global(
      static_cast<std::size_t>(std::max(params_.inner.archive_capacity, 2)));
  std::vector<PooledRoute> pool;

  std::int64_t evaluations = 0;
  std::int64_t cycles = 0;
  std::int64_t restarts = 0;

  while (evaluations < params_.max_evaluations) {
    // --- (1) Assemble a starting solution from the memory. ---
    Solution start(*inst_);
    if (pool.empty()) {
      // Counted by the burst's initialize_with below.
      start = construct_i1_random(*inst_, rng);
    } else {
      std::vector<bool> used(
          static_cast<std::size_t>(inst_->num_sites()), false);
      std::vector<std::vector<int>> routes;
      // Biased draws without replacement: the pool is kept sorted by
      // parent quality, so u^bias concentrates picks near the front.
      std::vector<std::size_t> order(pool.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      while (!order.empty() &&
             static_cast<int>(routes.size()) < inst_->max_vehicles()) {
        const double u = rng.uniform();
        const auto pick = static_cast<std::size_t>(
            std::pow(u, params_.selection_bias) *
            static_cast<double>(order.size()));
        const std::size_t idx = order[std::min(pick, order.size() - 1)];
        order.erase(std::find(order.begin(), order.end(), idx));
        const auto& candidate = pool[idx].route;
        bool overlaps = false;
        for (int c : candidate) {
          if (used[static_cast<std::size_t>(c)]) {
            overlaps = true;
            break;
          }
        }
        if (overlaps) continue;
        for (int c : candidate) used[static_cast<std::size_t>(c)] = true;
        routes.push_back(candidate);
      }
      start = Solution::from_routes(*inst_, std::move(routes));
      // Leftover customers: best-cost insertion (shared with BCRC).
      for (int c = 1; c <= inst_->num_customers(); ++c) {
        if (!used[static_cast<std::size_t>(c)]) {
          best_cost_insert(start, c, rng);
        }
      }
    }

    // --- (2) Improvement burst with the shared TSMO machinery. ---
    TsmoParams inner = params_.inner;
    inner.max_evaluations = std::min<std::int64_t>(
        params_.cycle_evaluations, params_.max_evaluations - evaluations);
    if (inner.max_evaluations < inner.neighborhood_size) {
      inner.max_evaluations = std::max<std::int64_t>(
          inner.max_evaluations, 1);
    }
    inner.seed = rng.next();
    SearchState state(*inst_, inner, Rng(inner.seed));
    state.initialize_with(std::move(start));
    while (!state.budget_exhausted()) {
      const std::int64_t remaining =
          inner.max_evaluations - state.evaluations();
      const int want = static_cast<int>(std::min<std::int64_t>(
          inner.neighborhood_size, remaining));
      if (want <= 0) break;
      state.step_with_candidates(state.generate_candidates(want));
    }
    evaluations += state.evaluations();
    restarts += state.restarts();

    // --- (3) Harvest: archive and route pool. ---
    for (const auto& entry : state.archive().entries()) {
      global.try_add(entry.obj, entry.value);
      const double quality = solution_quality(entry.obj);
      for (int r = 0; r < entry.value.num_routes(); ++r) {
        if (entry.value.route(r).empty()) continue;
        pool.push_back(PooledRoute{entry.value.route(r), quality});
      }
    }
    std::sort(pool.begin(), pool.end(),
              [](const PooledRoute& a, const PooledRoute& b) {
                return a.parent_quality < b.parent_quality;
              });
    if (pool.size() > static_cast<std::size_t>(params_.pool_capacity)) {
      pool.resize(static_cast<std::size_t>(params_.pool_capacity));
    }
    ++cycles;
  }

  RunResult result;
  result.algorithm = "adaptive-memory";
  for (const auto& entry : global.entries()) {
    result.front.push_back(entry.obj);
    result.solutions.push_back(entry.value);
  }
  result.evaluations = evaluations;
  result.iterations = cycles;
  result.restarts = restarts;
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace tsmo
