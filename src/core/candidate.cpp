#include "core/candidate.hpp"

namespace tsmo {

std::vector<Candidate> make_candidates(
    const NeighborhoodGenerator& generator,
    std::shared_ptr<const Solution> base, int count, Rng& rng) {
  const std::vector<Neighbor> neighbors =
      generator.generate(*base, count, rng);
  std::vector<Candidate> out;
  out.reserve(neighbors.size());
  for (const Neighbor& n : neighbors) {
    out.push_back(Candidate{n.obj, n.move, n.creates, n.destroys, base});
  }
  return out;
}

Solution materialize(const MoveEngine& engine, const Candidate& c) {
  Solution s = *c.base;
  engine.apply(s, c.move);
  return s;
}

std::vector<std::size_t> nondominated_indices(
    const std::vector<Candidate>& candidates) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < candidates.size() && keep; ++j) {
      if (j == i) continue;
      if (dominates(candidates[j].obj, candidates[i].obj)) keep = false;
      if (j < i && candidates[j].obj == candidates[i].obj) keep = false;
    }
    if (keep) out.push_back(i);
  }
  return out;
}

}  // namespace tsmo
