#include "core/mots.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "construct/i1_insertion.hpp"
#include "core/tabu_list.hpp"
#include "moo/archive.hpp"
#include "operators/neighborhood.hpp"
#include "util/timer.hpp"

namespace tsmo {

namespace {

struct Searcher {
  Solution current;
  TabuList tabu;
  ScalarWeights weights;
};

/// Hansen-style weight derivation: objective k of searcher i is weighted
/// by how much the *other* current solutions beat it on k (normalized),
/// so each point is pushed where its peers are better and the set drifts
/// apart along the front.  A floor keeps every objective active.
void update_weights(std::vector<Searcher>& searchers) {
  const std::size_t n = searchers.size();
  if (n < 2) return;
  double lo_d = 1e300, hi_d = -1e300, lo_t = 1e300, hi_t = -1e300;
  int lo_v = 1 << 30, hi_v = -(1 << 30);
  for (const Searcher& s : searchers) {
    const Objectives& o = s.current.objectives();
    lo_d = std::min(lo_d, o.distance);
    hi_d = std::max(hi_d, o.distance);
    lo_v = std::min(lo_v, o.vehicles);
    hi_v = std::max(hi_v, o.vehicles);
    lo_t = std::min(lo_t, o.tardiness);
    hi_t = std::max(hi_t, o.tardiness);
  }
  const double span_d = std::max(hi_d - lo_d, 1e-9);
  const double span_v = std::max(static_cast<double>(hi_v - lo_v), 1e-9);
  const double span_t = std::max(hi_t - lo_t, 1e-9);

  for (Searcher& s : searchers) {
    const Objectives& mine = s.current.objectives();
    double wd = 0.1, wv = 0.1, wt = 0.1;  // floor
    for (const Searcher& other : searchers) {
      if (&other == &s) continue;
      const Objectives& theirs = other.current.objectives();
      wd += std::max(0.0, (mine.distance - theirs.distance) / span_d);
      wv += std::max(0.0, static_cast<double>(mine.vehicles -
                                              theirs.vehicles) /
                              span_v);
      wt += std::max(0.0, (mine.tardiness - theirs.tardiness) / span_t);
    }
    const double total = wd + wv + wt;
    // Scalarization operates on raw objectives; rescale the normalized
    // weights back to objective magnitudes so no objective vanishes.
    s.weights.distance = wd / total / span_d;
    s.weights.vehicles = wv / total / span_v;
    s.weights.tardiness = wt / total / span_t;
  }
}

}  // namespace

RunResult Mots::run() const {
  Timer timer;
  Rng rng(params_.seed);
  MoveEngine engine(*inst_);
  NeighborhoodGenerator generator(engine, {1, 1, 1, 1, 1},
                                  params_.feasibility_screen);
  ParetoArchive<Solution> archive(
      static_cast<std::size_t>(std::max(params_.archive_capacity, 2)));

  std::int64_t evaluations = 0;
  std::vector<Searcher> searchers;
  const int k = std::max(2, params_.num_searchers);
  searchers.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    Searcher s{construct_i1_random(*inst_, rng),
               TabuList(static_cast<std::size_t>(
                   std::max(params_.tabu_tenure, 0))),
               ScalarWeights{}};
    ++evaluations;
    archive.try_add(s.current.objectives(), s.current);
    searchers.push_back(std::move(s));
  }

  std::int64_t iterations = 0;
  while (evaluations < params_.max_evaluations) {
    update_weights(searchers);
    for (Searcher& s : searchers) {
      if (evaluations >= params_.max_evaluations) break;
      const int want = static_cast<int>(std::min<std::int64_t>(
          params_.neighborhood_size,
          params_.max_evaluations - evaluations));
      const std::vector<Neighbor> neighbors =
          generator.generate(s.current, want, rng);
      evaluations += static_cast<std::int64_t>(neighbors.size());

      const Neighbor* chosen = nullptr;
      double best = std::numeric_limits<double>::infinity();
      for (const Neighbor& nb : neighbors) {
        if (s.tabu.is_tabu(nb.creates)) continue;
        const double v = scalarize(nb.obj, s.weights);
        if (v < best) {
          best = v;
          chosen = &nb;
        }
      }
      if (chosen == nullptr) continue;  // all tabu: stay, retry next round
      s.tabu.push(chosen->destroys);
      s.current = generator.materialize(s.current, *chosen);
      archive.try_add(s.current.objectives(), s.current);
    }
    ++iterations;
  }

  RunResult result;
  result.algorithm = "mots";
  for (const auto& e : archive.entries()) {
    result.front.push_back(e.obj);
    result.solutions.push_back(e.value);
  }
  result.evaluations = evaluations;
  result.iterations = iterations;
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace tsmo
