#pragma once

// Search parameters.  Paper defaults (§IV table captions): 100,000
// evaluations, neighborhood size 200, restart after 100 unimproving
// iterations, archive size 20, tabu tenure 20.

#include <array>
#include <atomic>
#include <cstdint>

#include "operators/move.hpp"
#include "util/rng.hpp"

namespace tsmo {

struct TsmoParams {
  std::int64_t max_evaluations = 100000;
  int neighborhood_size = 200;
  int tabu_tenure = 20;
  int archive_capacity = 20;
  /// Size of the medium-term memory M_nondom (the paper does not report
  /// a value; 50 keeps a few dozen restart points without unbounded growth).
  int nondom_capacity = 50;
  /// Iterations without an archive improvement before restarting from the
  /// memories ("if no better solution was found after 100 iterations, a
  /// restart with an individual from the memory was attempted").
  int restart_after = 100;
  /// Aspiration: allow a tabu neighbor that would enter the archive.  The
  /// paper describes no aspiration criterion, so this defaults to off; the
  /// ablation bench flips it.
  bool use_aspiration = false;
  /// Relative selection probabilities of the five operators (Relocate,
  /// Exchange, 2-opt, 2-opt*, or-opt).  The paper gives "each operator the
  /// same chance"; the operator ablation bench zeroes entries.
  std::array<double, kNumMoveTypes> operator_weights{1, 1, 1, 1, 1};
  /// ALNS-style extension (ours, default off to match the paper): adapt
  /// the operator weights online toward the operators whose moves get
  /// selected, re-deriving weights every `adapt_interval` iterations from
  /// selected/offered ratios (floored so no operator dies out).
  bool adaptive_operators = false;
  int adapt_interval = 50;
  /// Feasibility screening of proposed moves (the paper uses the local
  /// criterion; the screening ablation bench compares all modes).
  FeasibilityScreen feasibility_screen = FeasibilityScreen::Local;
  /// Candidate-list pruned neighborhood sampling (DESIGN.md §11): move
  /// endpoints are drawn from per-site k-nearest-neighbor lists (TW
  /// filtered) instead of uniformly.  0 (default) keeps the paper's
  /// uniform sampling — and with it bitwise golden-seed replay of the
  /// legacy mode.  Never perturbed: every searcher of a run must share one
  /// list, and the knob changes the RNG consumption pattern.
  int candidate_k = 0;
  /// Prices each generated neighborhood in one MoveEngine::evaluate_batch
  /// pass instead of per-move evaluate() calls.  Bitwise-identical results
  /// and RNG stream either way (pricing consumes no randomness), so this
  /// is a pure performance toggle; default on.  Never perturbed.
  bool batch_pricing = true;
  /// Records a RunTrace fingerprint of every search decision (see
  /// util/trace.hpp and DESIGN.md §7).  Runtime toggle; when off the
  /// recording hooks reduce to one branch per step.  Never perturbed.
  bool trace = false;
  /// Enables the telemetry layer (util/telemetry.hpp, DESIGN.md §8) for the
  /// duration of the run.  Pure observation: counters, histograms and spans
  /// only — never consulted by the search, so fingerprints are identical
  /// with telemetry on or off.  Never perturbed.
  bool telemetry = false;
  /// Dual sampling cadence of the anytime convergence recorder (DESIGN.md
  /// §9): a searcher samples its archive every `convergence_sample_iters`
  /// iterations and additionally once `convergence_sample_ms` of wall clock
  /// passed since its last sample (either <= 0 disables that schedule).
  /// Observation only; never consulted by the search and never perturbed.
  int convergence_sample_iters = 50;
  double convergence_sample_ms = 250.0;
  /// Port of the embedded HTTP observability server (DESIGN.md §10):
  /// /metrics, /healthz, /status, /buildinfo.  0 (default) disables the
  /// server entirely; -1 asks for an ephemeral port (tests).  Serving is
  /// pure observation — handlers only read atomics and recorder state —
  /// so fingerprints are identical with the server on or off.  Never
  /// perturbed.
  int serve_port = 0;
  /// Causal trace context of this run (DESIGN.md §13): a non-zero trace_id
  /// makes the engines re-establish telemetry::TraceScope on their master
  /// and worker threads, so every recorded span carries the request's id
  /// and parents under `trace_parent_span` (the caller's enclosing span,
  /// e.g. the job plane's job.run span; 0 = root).  Ids are deterministic
  /// (derived from the seed, no wall clock/RNG) and observation-only —
  /// fingerprints are identical traced or not.  Never perturbed.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent_span = 0;
  /// Capacity of the crash flight recorder ring (DESIGN.md §10); applied
  /// before the run starts via obs::FlightRecorder::configure_capacity
  /// (clamped to [16, 65536]).  Observation only; never perturbed.
  int flight_slots = 256;
  /// Per-run cooperative stop flag (DESIGN.md §12): when non-null, every
  /// SearchState of the run treats a raised flag exactly like budget
  /// exhaustion — the engine drains and the partial result is collected.
  /// Unlike the process-wide request_stop() (SIGINT/SIGTERM), this scopes
  /// cancellation to one run, so the job plane can cancel a single job
  /// without touching its neighbors.  The pointee must outlive the run.
  /// Never raised during a normal run, so determinism and golden-seed
  /// fingerprints are untouched; never perturbed.
  const std::atomic<bool>* stop = nullptr;
  /// In-process sampling profiler rate (DESIGN.md §14).  > 0 arms the
  /// SIGPROF shadow-stack sampler at that many samples per second of
  /// *CPU time* per thread (clamped to [1, 1000]); 0 (default) leaves it
  /// untouched.  Sampling is pure observation — the handler only copies
  /// the phase stack into a per-thread ring — so fingerprints are
  /// identical profiled or not.  Never perturbed.
  int profile_hz = 0;
  /// Enables the live search-introspection hub (moo/introspect.hpp,
  /// DESIGN.md §14): per-operator acceptance rates, tabu pressure and
  /// archive churn published each step for /jobs/<id>/introspect and the
  /// tsmo_search_* gauges.  The per-searcher counters behind it are always
  /// maintained (and always summarized into RunResult); this flag only
  /// controls the shared live hub.  Observation only; never perturbed.
  bool introspect = false;
  std::uint64_t seed = 1;

  /// Perturbs every numeric parameter with N(0, p/4) noise — §III.E: "The
  /// parameters of the algorithm for each, but the first, are disturbed by
  /// a random variable derived from a normal distribution with mean 0 and
  /// a standard deviation that is the quarter of the parameter to be
  /// disturbed."  The evaluation budget and seed are left untouched.
  TsmoParams perturbed(Rng& rng) const;

  /// Clamps all fields to sane lower bounds (used after perturbation).
  void clamp();
};

}  // namespace tsmo
