#pragma once

// Single-objective weighted-sum Tabu Search baseline.
//
// §II.C of the paper discusses the classical alternative to multiobjective
// search: "Solving the problem a number of times with modified weights and
// a single criteria approach can result in several pareto-optimal solutions
// as well".  This module implements that comparator: a conventional
// best-improvement TS on the scalarized objective, plus a helper that runs
// it repeatedly with random weight draws and merges the outcomes into a
// front.  The ablation bench compares it against TSMO at equal evaluation
// budgets.

#include "core/params.hpp"
#include "core/run_result.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

class WeightedTabuSearch {
 public:
  WeightedTabuSearch(const Instance& inst, const TsmoParams& params,
                     const ScalarWeights& weights)
      : inst_(&inst), params_(params), weights_(weights) {}

  /// Classic TS: per iteration pick the best non-tabu neighbor by scalar
  /// value (aspiration: tabu neighbors improving the best-known are
  /// allowed); restart from the best-known on stagnation.  The result's
  /// front holds the single best solution found.
  RunResult run() const;

 private:
  const Instance* inst_;
  TsmoParams params_;
  ScalarWeights weights_;
};

/// Runs WeightedTabuSearch `num_weight_draws` times with random weights
/// (distance weight 1, vehicle weight ~U[0, 50], tardiness weight fixed
/// high to drive feasibility), splitting `params.max_evaluations` evenly
/// across the draws.  Returns the merged result; `front`/`solutions` hold
/// the non-dominated union of the per-run bests.
RunResult weighted_sum_front(const Instance& inst, const TsmoParams& params,
                             int num_weight_draws, Rng& rng);

}  // namespace tsmo
