#include "core/weighted_ts.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "construct/i1_insertion.hpp"
#include "core/tabu_list.hpp"
#include "operators/neighborhood.hpp"
#include "util/timer.hpp"

namespace tsmo {

RunResult WeightedTabuSearch::run() const {
  Timer timer;
  Rng rng(params_.seed);
  MoveEngine engine(*inst_);
  NeighborhoodGenerator generator(engine);
  TabuList tabu(static_cast<std::size_t>(std::max(params_.tabu_tenure, 0)));

  Solution current = construct_i1_random(*inst_, rng);
  std::int64_t evaluations = 1;
  Solution best = current;
  double best_value = scalarize(best.objectives(), weights_);

  std::int64_t iterations = 0, restarts = 0, last_improvement = 0;
  while (evaluations < params_.max_evaluations) {
    const int want = static_cast<int>(std::min<std::int64_t>(
        params_.neighborhood_size, params_.max_evaluations - evaluations));
    if (want <= 0) break;
    const std::vector<Neighbor> neighbors =
        generator.generate(current, want, rng);
    evaluations += static_cast<std::int64_t>(neighbors.size());

    // Best-improvement selection on the scalarized objective; aspiration
    // admits tabu neighbors that beat the incumbent best.
    const Neighbor* chosen = nullptr;
    double chosen_value = std::numeric_limits<double>::infinity();
    for (const Neighbor& n : neighbors) {
      const double v = scalarize(n.obj, weights_);
      const bool is_tabu = tabu.is_tabu(n.creates);
      if (is_tabu && v >= best_value) continue;
      if (v < chosen_value) {
        chosen_value = v;
        chosen = &n;
      }
    }

    ++iterations;
    if (chosen != nullptr) {
      tabu.push(chosen->destroys);
      current = generator.materialize(current, *chosen);
      if (chosen_value < best_value) {
        best_value = chosen_value;
        best = current;
        last_improvement = iterations;
      }
    }
    if (chosen == nullptr ||
        iterations - last_improvement >=
            static_cast<std::int64_t>(params_.restart_after)) {
      current = best;
      tabu.clear();
      ++restarts;
      last_improvement = iterations;
    }
  }

  RunResult r;
  r.algorithm = "weighted-ts";
  r.front.push_back(best.objectives());
  r.solutions.push_back(std::move(best));
  r.evaluations = evaluations;
  r.iterations = iterations;
  r.restarts = restarts;
  r.wall_seconds = timer.elapsed_seconds();
  return r;
}

RunResult weighted_sum_front(const Instance& inst, const TsmoParams& params,
                             int num_weight_draws, Rng& rng) {
  Timer timer;
  RunResult merged;
  merged.algorithm = "weighted-sum-front";
  const std::int64_t per_run =
      std::max<std::int64_t>(params.max_evaluations /
                                 std::max(num_weight_draws, 1),
                             1);
  for (int k = 0; k < num_weight_draws; ++k) {
    TsmoParams p = params;
    p.max_evaluations = per_run;
    p.seed = rng.next();
    ScalarWeights w;
    w.distance = 1.0;
    w.vehicles = rng.uniform(0.0, 50.0);
    w.tardiness = 1000.0;  // strongly drive toward feasibility
    const RunResult r = WeightedTabuSearch(inst, p, w).run();
    merged.evaluations += r.evaluations;
    merged.iterations += r.iterations;
    merged.restarts += r.restarts;
    for (std::size_t i = 0; i < r.front.size(); ++i) {
      // Keep only mutually non-dominated bests across weight draws.
      bool dominated = false;
      for (const Objectives& o : merged.front) {
        if (weakly_dominates(o, r.front[i])) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      for (std::size_t j = merged.front.size(); j-- > 0;) {
        if (dominates(r.front[i], merged.front[j])) {
          merged.front.erase(merged.front.begin() +
                             static_cast<std::ptrdiff_t>(j));
          merged.solutions.erase(merged.solutions.begin() +
                                 static_cast<std::ptrdiff_t>(j));
        }
      }
      merged.front.push_back(r.front[i]);
      merged.solutions.push_back(r.solutions[i]);
    }
  }
  merged.wall_seconds = timer.elapsed_seconds();
  return merged;
}

}  // namespace tsmo
