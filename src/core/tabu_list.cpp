#include "core/tabu_list.hpp"

#include "util/telemetry.hpp"

namespace tsmo {

void TabuList::set_tenure(std::size_t tenure) {
  tenure_ = tenure;
  while (queue_.size() > tenure_) evict_oldest();
}

void TabuList::push(const MoveAttrs& destroyed) {
  if (tenure_ == 0) return;
  TSMO_COUNT("tabu.push");
  queue_.push_back(destroyed);
  for (std::uint64_t a : destroyed) ++counts_[a];
  while (queue_.size() > tenure_) evict_oldest();
}

void TabuList::evict_oldest() {
  TSMO_COUNT("tabu.evictions");
  const MoveAttrs& oldest = queue_.front();
  for (std::uint64_t a : oldest) {
    auto it = counts_.find(a);
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
  }
  queue_.pop_front();
}

bool TabuList::is_tabu(const MoveAttrs& creates) const {
  TSMO_COUNT("tabu.checks");
  for (std::uint64_t a : creates) {
    if (counts_.contains(a)) {
      TSMO_COUNT("tabu.hits");
      return true;
    }
  }
  return false;
}

void TabuList::clear() {
  queue_.clear();
  counts_.clear();
}

}  // namespace tsmo
