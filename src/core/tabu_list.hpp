#pragma once

// The short-term memory of Tabu Search (§III.B): "The tabu list is
// organized as a queue and will hold information about the moves made.
// When the tabu list is full it will forget about the oldest moves.  The
// length of the tabu list can be specified by the tabu tenure parameter."
//
// One entry per accepted move (its destroyed features); a candidate move is
// tabu when any feature it would create is still remembered.  An
// unordered multiset mirrors the queue for O(1) membership tests.

#include <cstddef>
#include <deque>
#include <unordered_map>

#include "operators/move.hpp"

namespace tsmo {

class TabuList {
 public:
  explicit TabuList(std::size_t tenure) : tenure_(tenure) {}

  std::size_t tenure() const noexcept { return tenure_; }

  /// Changing the tenure takes effect immediately: a shorter list forgets
  /// its oldest entries right away (multisearch perturbs this parameter).
  void set_tenure(std::size_t tenure);

  /// Number of remembered moves (<= tenure).
  std::size_t size() const noexcept { return queue_.size(); }

  /// Records an accepted move's destroyed features, forgetting the oldest
  /// move when the queue exceeds the tenure.
  void push(const MoveAttrs& destroyed);

  /// True when any feature in `creates` is currently remembered.
  bool is_tabu(const MoveAttrs& creates) const;

  void clear();

 private:
  void evict_oldest();

  std::size_t tenure_;
  std::deque<MoveAttrs> queue_;
  std::unordered_map<std::uint64_t, int> counts_;
};

}  // namespace tsmo
