#include "core/sequential_tsmo.hpp"

#include <algorithm>
#include <memory>

#include "obs/flight_recorder.hpp"
#include "util/profiler.hpp"
#include "util/stop.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace tsmo {

RunResult collect_result(const SearchState& state, std::string algorithm,
                         double wall_seconds) {
  RunResult r;
  r.algorithm = std::move(algorithm);
  for (const auto& e : state.archive().entries()) {
    r.front.push_back(e.obj);
    r.solutions.push_back(e.value);
    r.attribution.push_back(state.attribution_for(e.obj));
  }
  r.evaluations = state.evaluations();
  r.iterations = state.iterations();
  r.restarts = state.restarts();
  r.archive_fingerprint = archive_fingerprint(r.front);
  r.trace_fingerprint = state.trace().fingerprint();
  r.wall_seconds = wall_seconds;
  r.stopped_early = state.stop_flag_raised();
  r.introspect = state.istats();
  r.refresh_throughput();
  obs::flight_fingerprint(r.trace_fingerprint);
  return r;
}

RunResult SequentialTsmo::run(const IterationObserver& observer) const {
  // Re-establish the caller's causal trace on this thread (DESIGN.md §13);
  // every span below parents under the request's job.run span.
  telemetry::TraceScope trace_scope(
      telemetry::TraceContext{params_.trace_id, params_.trace_parent_span});
  if (params_.telemetry) telemetry::set_enabled(true);
  if (params_.profile_hz > 0) prof::start(params_.profile_hz);
  TSMO_SPAN("run.sequential");
  TSMO_PROFILE_FRAME("run.sequential");
  obs::flight_engine_start("sequential", 1, 0, params_.trace_id);
  Timer timer;
  SearchState state(*inst_, params_, Rng(params_.seed));
  // Live introspection: an injected hub wins; otherwise params.introspect
  // makes the run own one so the registry's /metrics gauges see it.
  std::unique_ptr<LiveIntrospect> own_introspect;
  LiveIntrospect* live = introspect_;
  if (live == nullptr && params_.introspect) {
    own_introspect = std::make_unique<LiveIntrospect>("sequential");
    live = own_introspect.get();
  }
  if (live != nullptr) state.set_introspect(live);
  state.initialize();

  while (!state.budget_exhausted()) {
    const std::int64_t remaining =
        params_.max_evaluations - state.evaluations();
    const int want = static_cast<int>(std::min<std::int64_t>(
        params_.neighborhood_size, remaining));
    if (want <= 0) break;
    const std::vector<Candidate> candidates =
        state.generate_candidates(want);
    const auto outcome = state.step_with_candidates(candidates);
    if (observer) {
      IterationEvent ev;
      ev.iteration = state.iterations();
      ev.evaluations = state.evaluations();
      ev.current = state.current()->objectives();
      ev.candidates = &candidates;
      ev.restarted = outcome.restarted;
      ev.archive_improved = outcome.archive_improved;
      observer(ev);
    }
  }
  obs::flight_engine_finish("sequential", state.iterations(),
                            params_.trace_id);
  return collect_result(state, "sequential", timer.elapsed_seconds());
}

}  // namespace tsmo
