#pragma once

// Result of one optimizer run: the archive content plus counters.  Tables
// I-IV only admit feasible solutions ("these solutions were excluded for
// the generation of the results"), so the feasible subset is exposed
// explicitly.

#include <cstdint>
#include <string>
#include <vector>

#include "moo/introspect.hpp"
#include "vrptw/objectives.hpp"
#include "vrptw/solution.hpp"

namespace tsmo {

/// Provenance of one archive member: which searcher/worker/operator last
/// inserted its objective vector, and at which searcher iteration.  worker
/// == -1 means the searcher evaluated the move itself (or it came from
/// construction/restart, in which case op is also -1).
struct ArchiveAttribution {
  int searcher = 0;
  int worker = -1;
  int op = -1;
  std::int64_t iteration = 0;
};

struct RunResult {
  std::string algorithm;
  std::vector<Objectives> front;    ///< archive objective vectors
  std::vector<Solution> solutions;  ///< matching archive solutions
  /// Per-member provenance, parallel to `front` (empty only for results
  /// predating a run, never truncated by merges).
  std::vector<ArchiveAttribution> attribution;

  std::int64_t evaluations = 0;
  std::int64_t iterations = 0;
  std::int64_t restarts = 0;

  /// Canonical hash of `front` (sorted by objective triple; see
  /// util/trace.hpp) — always filled, equal for equivalent fronts
  /// regardless of archive insertion order.
  std::uint64_t archive_fingerprint = 0;
  /// Rolling RunTrace hash of the searcher's decision sequence; 0 unless
  /// the run was traced (TsmoParams::trace).  For merged multisearch
  /// results this is the XOR of the per-searcher fingerprints, which is
  /// independent of merge order.
  std::uint64_t trace_fingerprint = 0;

  double wall_seconds = 0.0;
  /// Modeled runtime on the virtual clock when run on the DES substrate
  /// (0 for direct executions).  The paper's runtime/speedup columns are
  /// regenerated from this — see DESIGN.md §4.
  double sim_seconds = 0.0;

  /// Iteration throughput over the run's wall clock (iterations /
  /// wall_seconds; 0 when the run was too short to time).  Filled even when
  /// full telemetry is off so bench rows always carry basic rate stats.
  double iterations_per_second = 0.0;
  /// Where the Chrome trace landed when the run was executed with
  /// --telemetry-out; empty otherwise.  The JSONL snapshot lives next to it
  /// (see util/telemetry.hpp TelemetrySink).
  std::string telemetry_path;
  /// True when the run ended on a cooperative stop request (solver_cli's
  /// SIGINT/SIGTERM path) rather than budget exhaustion; the front is the
  /// partial result at the moment of the stop.
  bool stopped_early = false;
  /// Where the crash-handler postmortem would land when the flight
  /// recorder was armed (--postmortem); empty otherwise.
  std::string postmortem_path;
  /// Search-introspection summary (DESIGN.md §14): per-operator funnel,
  /// tabu pressure and archive churn, summed over every searcher of the
  /// run.  Always filled (the counters are always maintained).
  IntrospectStats introspect;

  /// Recomputes iterations_per_second from the current counters, preferring
  /// real wall clock and falling back to the DES virtual clock.  Call after
  /// adjusting wall_seconds/sim_seconds (merges, sim substrate).
  void refresh_throughput() noexcept;

  /// Archive members without time-window or capacity violations.
  std::vector<Objectives> feasible_front() const;

  /// Mean distance over the feasible front (0 when empty).
  double mean_feasible_distance() const;

  /// Mean vehicle count over the feasible front (0 when empty).
  double mean_feasible_vehicles() const;

  /// Best (minimum) distance over the feasible front (0 when empty).
  double best_feasible_distance() const;

  /// Best (minimum) vehicle count over the feasible front (0 when empty).
  int best_feasible_vehicles() const;
};

}  // namespace tsmo
