#include "core/run_result.hpp"

#include <algorithm>

namespace tsmo {

void RunResult::refresh_throughput() noexcept {
  const double secs = wall_seconds > 0.0 ? wall_seconds : sim_seconds;
  iterations_per_second =
      secs > 0.0 ? static_cast<double>(iterations) / secs : 0.0;
}

std::vector<Objectives> RunResult::feasible_front() const {
  std::vector<Objectives> out;
  for (std::size_t i = 0; i < solutions.size(); ++i) {
    if (solutions[i].feasible()) out.push_back(front[i]);
  }
  return out;
}

double RunResult::mean_feasible_distance() const {
  const auto f = feasible_front();
  if (f.empty()) return 0.0;
  double sum = 0.0;
  for (const Objectives& o : f) sum += o.distance;
  return sum / static_cast<double>(f.size());
}

double RunResult::mean_feasible_vehicles() const {
  const auto f = feasible_front();
  if (f.empty()) return 0.0;
  double sum = 0.0;
  for (const Objectives& o : f) sum += static_cast<double>(o.vehicles);
  return sum / static_cast<double>(f.size());
}

double RunResult::best_feasible_distance() const {
  const auto f = feasible_front();
  if (f.empty()) return 0.0;
  return std::min_element(f.begin(), f.end(),
                          [](const Objectives& a, const Objectives& b) {
                            return a.distance < b.distance;
                          })
      ->distance;
}

int RunResult::best_feasible_vehicles() const {
  const auto f = feasible_front();
  if (f.empty()) return 0;
  return std::min_element(f.begin(), f.end(),
                          [](const Objectives& a, const Objectives& b) {
                            return a.vehicles < b.vehicles;
                          })
      ->vehicles;
}

}  // namespace tsmo
