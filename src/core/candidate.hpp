#pragma once

// A Candidate is an evaluated potential next solution: a move, the
// objectives it yields, its tabu features, and a shared handle on the base
// solution the move applies to.
//
// Keeping the base alive matters for the asynchronous algorithm (§III.D):
// the master may select "solutions that were neighbors of a previous
// solution, but not evaluated at the time the algorithm continued" — i.e.
// candidates whose base is no longer the current solution.  Materializing
// a candidate therefore applies the move to *its own* base, never to the
// current solution.

#include <cstdint>
#include <memory>
#include <vector>

#include "operators/neighborhood.hpp"
#include "vrptw/solution.hpp"

namespace tsmo {

struct Candidate {
  Objectives obj;
  Move move;
  MoveAttrs creates;
  MoveAttrs destroys;
  std::shared_ptr<const Solution> base;
  /// Generation worker that evaluated this candidate; -1 when the searcher
  /// produced it itself.  Stamped by WorkerTeam / the DES worker model and
  /// carried into the convergence recorder's contribution attribution.
  std::int16_t origin = -1;
};

/// Wraps evaluated neighbors of `base` into candidates sharing one handle.
std::vector<Candidate> make_candidates(
    const NeighborhoodGenerator& generator,
    std::shared_ptr<const Solution> base, int count, Rng& rng);

/// Applies the candidate's move to a copy of its base.
Solution materialize(const MoveEngine& engine, const Candidate& c);

/// Indices of the non-dominated members of `candidates` (first occurrence
/// wins among duplicates).
std::vector<std::size_t> nondominated_indices(
    const std::vector<Candidate>& candidates);

}  // namespace tsmo
