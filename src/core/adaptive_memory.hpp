#pragma once

// Adaptive-memory Tabu Search, the domain-decomposition approach the paper
// describes in §I: "Adaptive memory is represented as a pool of solution
// parts from which new solutions are created.  During the search good
// parts are identified and added to the memory" (Taillard et al. 1997;
// parallelized hierarchically by Badeau et al. 1997).
//
// Simplified single-process realization of that concept, used as a fourth
// family member in the comparison benches:
//   cycle:  (1) assemble a solution from non-overlapping routes drawn
//               from the pool, biased toward routes that came from good
//               solutions; leftover customers are best-cost inserted;
//           (2) improve it with a TSMO burst (the same SearchState the
//               other variants use);
//           (3) harvest: the burst's archive feeds the global front and
//               its non-dominated solutions donate their routes to the
//               pool (pruned to capacity by parent quality).

#include "core/params.hpp"
#include "core/run_result.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

struct AdaptiveMemoryParams {
  std::int64_t max_evaluations = 100000;
  /// Evaluation budget per improvement burst (cycle).
  std::int64_t cycle_evaluations = 5000;
  /// Maximum routes retained in the adaptive memory.
  int pool_capacity = 200;
  /// Bias exponent for drawing routes: 1 = uniform over the pool,
  /// larger values favor routes from better solutions.
  double selection_bias = 4.0;
  /// Parameters of the inner TSMO bursts (budget fields are overridden).
  TsmoParams inner;
  std::uint64_t seed = 1;
};

class AdaptiveMemoryTsmo {
 public:
  AdaptiveMemoryTsmo(const Instance& inst,
                     const AdaptiveMemoryParams& params)
      : inst_(&inst), params_(params) {}

  RunResult run() const;

 private:
  const Instance* inst_;
  AdaptiveMemoryParams params_;
};

}  // namespace tsmo
