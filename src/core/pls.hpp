#pragma once

// Pareto Local Search (Paquete, Chiarandini & Stützle 2004) — the
// canonical archive-based local search for multiobjective combinatorial
// problems, included as the simplest trajectory-method comparator: no tabu
// memory, no randomized sampling, just exhaustive neighborhood exploration
// of unexplored archive members.
//
//   archive <- { initial solution }
//   while an unexplored member exists and budget remains:
//     pick an unexplored member s, enumerate every screened move of every
//     operator, try to add each neighbor to the archive; mark s explored.
//
// Neighborhood enumeration reuses the VND machinery; acceptance uses the
// same crowding-bounded archive as TSMO so fronts are size-comparable.

#include "core/params.hpp"
#include "core/run_result.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

struct PlsParams {
  std::int64_t max_evaluations = 100000;
  int archive_capacity = 20;
  FeasibilityScreen feasibility_screen = FeasibilityScreen::Local;
  std::uint64_t seed = 1;
};

class ParetoLocalSearch {
 public:
  ParetoLocalSearch(const Instance& inst, const PlsParams& params)
      : inst_(&inst), params_(params) {}

  RunResult run() const;

 private:
  const Instance* inst_;
  PlsParams params_;
};

}  // namespace tsmo
