#include "core/pls.hpp"

#include <algorithm>

#include "construct/i1_insertion.hpp"
#include "moo/archive.hpp"
#include "operators/local_search.hpp"
#include "util/timer.hpp"

namespace tsmo {

namespace {

/// Archive member with PLS's explored flag.
struct Member {
  Solution solution;
  bool explored = false;
};

/// Crowding-bounded non-dominated insertion, mirroring ParetoArchive but
/// on the flagged member list.  Returns true when `s` was stored.
bool try_add(std::vector<Member>& archive, std::size_t capacity,
             Solution s) {
  const Objectives& obj = s.objectives();
  for (const Member& m : archive) {
    if (m.solution.objectives() == obj ||
        dominates(m.solution.objectives(), obj)) {
      return false;
    }
  }
  std::erase_if(archive, [&](const Member& m) {
    return dominates(obj, m.solution.objectives());
  });
  if (archive.size() < capacity) {
    archive.push_back(Member{std::move(s), false});
    return true;
  }
  std::vector<Objectives> objs;
  objs.reserve(archive.size() + 1);
  for (const Member& m : archive) objs.push_back(m.solution.objectives());
  objs.push_back(obj);
  const std::vector<double> crowd = crowding_distances(objs);
  const std::size_t worst = static_cast<std::size_t>(
      std::min_element(crowd.begin(), crowd.end()) - crowd.begin());
  if (worst == archive.size()) return false;  // candidate most crowded
  archive.erase(archive.begin() + static_cast<std::ptrdiff_t>(worst));
  archive.push_back(Member{std::move(s), false});
  return true;
}

}  // namespace

RunResult ParetoLocalSearch::run() const {
  Timer timer;
  Rng rng(params_.seed);
  MoveEngine engine(*inst_);

  std::vector<Member> archive;
  const auto capacity =
      static_cast<std::size_t>(std::max(params_.archive_capacity, 2));
  try_add(archive, capacity, construct_i1_random(*inst_, rng));
  std::int64_t evaluations = 1;
  std::int64_t iterations = 0;

  while (evaluations < params_.max_evaluations) {
    // Random unexplored member; restart from a fresh construction when
    // the whole archive is explored (PLS would otherwise terminate —
    // restarting keeps budgets comparable with the other algorithms).
    std::vector<std::size_t> unexplored;
    for (std::size_t i = 0; i < archive.size(); ++i) {
      if (!archive[i].explored) unexplored.push_back(i);
    }
    if (unexplored.empty()) {
      Solution fresh = construct_i1_random(*inst_, rng);
      ++evaluations;
      if (!try_add(archive, capacity, std::move(fresh))) {
        // Nothing new: mark everything unexplored to re-scan the front
        // (the screen's randomless enumeration makes this a fixpoint
        // re-check; restarts keep injecting diversity).
        for (Member& m : archive) m.explored = false;
      }
      continue;
    }
    const std::size_t pick = unexplored[rng.below(unexplored.size())];
    // Copy: archive mutates during neighbor insertion.
    const Solution current = archive[pick].solution;
    archive[pick].explored = true;

    for (int t = 0;
         t < kNumMoveTypes && evaluations < params_.max_evaluations; ++t) {
      for_each_move(current, static_cast<MoveType>(t),
                    [&](const Move& m) {
                      if (evaluations >= params_.max_evaluations) return;
                      if (!engine.applicable(current, m)) return;
                      if (!engine.screened_feasible(
                              current, m, params_.feasibility_screen)) {
                        return;
                      }
                      const Objectives obj = engine.evaluate(current, m);
                      ++evaluations;
                      // Cheap pre-check before materializing.
                      bool interesting = true;
                      for (const Member& mem : archive) {
                        if (mem.solution.objectives() == obj ||
                            dominates(mem.solution.objectives(), obj)) {
                          interesting = false;
                          break;
                        }
                      }
                      if (!interesting) return;
                      Solution neighbor = current;
                      engine.apply(neighbor, m);
                      try_add(archive, capacity, std::move(neighbor));
                    });
    }
    ++iterations;
  }

  RunResult result;
  result.algorithm = "pls";
  for (Member& m : archive) {
    result.front.push_back(m.solution.objectives());
    result.solutions.push_back(std::move(m.solution));
  }
  result.evaluations = evaluations;
  result.iterations = iterations;
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace tsmo
