#include "core/params.hpp"

#include <algorithm>
#include <cmath>

namespace tsmo {

namespace {

int perturb_int(int value, Rng& rng) {
  const double noisy =
      static_cast<double>(value) +
      rng.normal(0.0, static_cast<double>(value) / 4.0);
  return static_cast<int>(std::lround(noisy));
}

}  // namespace

// candidate_k and batch_pricing are deliberately NOT perturbed: perturbing
// them would add RNG draws (breaking every golden-seed fingerprint) and
// candidate_k must agree across all searchers sharing one candidate list.
TsmoParams TsmoParams::perturbed(Rng& rng) const {
  TsmoParams p = *this;
  p.neighborhood_size = perturb_int(neighborhood_size, rng);
  p.tabu_tenure = perturb_int(tabu_tenure, rng);
  p.archive_capacity = perturb_int(archive_capacity, rng);
  p.nondom_capacity = perturb_int(nondom_capacity, rng);
  p.restart_after = perturb_int(restart_after, rng);
  p.clamp();
  return p;
}

void TsmoParams::clamp() {
  max_evaluations = std::max<std::int64_t>(max_evaluations, 1);
  neighborhood_size = std::max(neighborhood_size, 1);
  tabu_tenure = std::max(tabu_tenure, 1);
  archive_capacity = std::max(archive_capacity, 2);
  nondom_capacity = std::max(nondom_capacity, 1);
  restart_after = std::max(restart_after, 1);
  candidate_k = std::max(candidate_k, 0);
  flight_slots = std::clamp(flight_slots, 16, 65536);
  profile_hz = std::clamp(profile_hz, 0, 1000);
  if (convergence_sample_iters < 0) convergence_sample_iters = 0;
  if (!(convergence_sample_ms >= 0.0)) convergence_sample_ms = 0.0;
}

}  // namespace tsmo
