#include "core/search_state.hpp"

#include <algorithm>

#include "construct/i1_insertion.hpp"
#include "obs/flight_recorder.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"

namespace tsmo {

SearchState::SearchState(const Instance& inst, const TsmoParams& params,
                         Rng rng, std::shared_ptr<const CandidateList> cands)
    : inst_(&inst),
      params_(params),
      rng_(rng),
      cands_(cands ? std::move(cands)
                   : make_candidate_list(inst, params.candidate_k)),
      engine_(inst),
      generator_(engine_, params.operator_weights,
                 params.feasibility_screen, params.batch_pricing),
      tabu_(static_cast<std::size_t>(std::max(params.tabu_tenure, 0))),
      nondom_(static_cast<std::size_t>(std::max(params.nondom_capacity, 1))),
      archive_(static_cast<std::size_t>(std::max(params.archive_capacity, 2))),
      trace_(params.trace) {
  params_.clamp();
  if (params_.candidate_k > 0) engine_.set_candidate_list(cands_.get());
}

void SearchState::initialize() {
  initialize_with(construct_i1_random(*inst_, rng_));
}

void SearchState::set_recorder(ConvergenceRecorder* rec, int searcher_id) {
  recorder_ =
      rec ? rec->attach(searcher_id,
                        "searcher " + std::to_string(searcher_id))
          : nullptr;
}

ArchiveAttribution SearchState::attribution_for(const Objectives& obj) const {
  for (const auto& [o, attr] : provenance_) {
    if (o == obj) return attr;
  }
  ArchiveAttribution attr;
  attr.searcher = trace_id_;
  return attr;
}

void SearchState::note_insertion(const Objectives& obj, int op, int worker) {
  ArchiveAttribution attr;
  attr.searcher = trace_id_;
  attr.worker = worker;
  attr.op = op;
  attr.iteration = iterations_;
  bool found = false;
  for (auto& [o, a] : provenance_) {
    if (o == obj) {
      a = attr;
      found = true;
      break;
    }
  }
  if (!found) provenance_.emplace_back(obj, attr);
  // Anytime-front insertions surface as instant events on the ambient
  // trace's timeline (DESIGN.md §13) and tag the flight ring with the
  // request id; both are no-ops outside a traced run.
  TSMO_INSTANT("archive.insert");
  obs::flight_archive_insert(trace_id_, op, iterations_,
                             telemetry::current_trace().trace_id);
  if (recorder_) recorder_->record_insertion(obj, op, worker, iterations_);
}

void SearchState::initialize_with(Solution s) {
  s.evaluate();
  current_ = std::make_shared<const Solution>(std::move(s));
  ++evaluations_;
  const ArchiveOutcome init_outcome =
      archive_.try_add(current_->objectives(), *current_);
  observe_archive_outcome(init_outcome);
  if (archive_accepted(init_outcome)) {
    note_insertion(current_->objectives(), -1, -1);
  }
  iterations_ = 0;
  restarts_ = 0;
  last_improvement_ = 0;
  no_improvement_ = false;
  trace_.record_event(RunTrace::kTagInit,
                      static_cast<std::uint64_t>(trace_id_),
                      hash_objectives(current_->objectives()));
}

std::vector<Candidate> SearchState::generate_candidates(int count) {
  TSMO_TIME_SCOPE("search.generate_ns");
  TSMO_PROFILE_FRAME("search.generate");
  std::vector<Candidate> c =
      make_candidates(generator_, current_, count, rng_);
  evaluations_ += static_cast<std::int64_t>(c.size());
  TSMO_COUNT_N("search.candidates", c.size());
  return c;
}

std::optional<std::size_t> SearchState::select(
    const std::vector<Candidate>& candidates) {
  const std::vector<std::size_t> nd = nondominated_indices(candidates);
  std::vector<std::size_t> admissible;
  admissible.reserve(nd.size());
  for (std::size_t i : nd) {
    const bool tabu = tabu_.is_tabu(candidates[i].creates);
    const bool aspired = params_.use_aspiration && tabu &&
                         archive_.would_improve(candidates[i].obj);
    ++istats_.tabu_checked;
    if (tabu) ++istats_.tabu_hits;
    if (aspired) ++istats_.tabu_aspirations;
    if (!tabu || aspired) admissible.push_back(i);
  }
  if (admissible.empty()) return std::nullopt;
  return admissible[rng_.below(admissible.size())];
}

Solution SearchState::restart_pick() {
  const std::size_t total = nondom_.size() + archive_.size();
  if (total == 0) {
    // Both memories exhausted: fall back to a fresh construction.
    ++evaluations_;
    return construct_i1_random(*inst_, rng_);
  }
  const std::size_t k = rng_.below(total);
  if (k < nondom_.size()) {
    return std::move(nondom_.take_random(rng_).value);  // consumed
  }
  return archive_.sample(rng_).value;  // copied, archive keeps it
}

SearchState::StepOutcome SearchState::step_with_candidates(
    const std::vector<Candidate>& candidates) {
  TSMO_TIME_SCOPE("search.step_ns");
  TSMO_PROFILE_FRAME("search.step");
  TSMO_COUNT("search.steps");
  StepOutcome out;
  // A pending watchdog diversification request routes through the
  // existing stagnation path (opt-in; never set in deterministic runs).
  if (external_restart_.exchange(false, std::memory_order_relaxed)) {
    no_improvement_ = true;
  }
  // Line 8: s <- Select(N, M_tabulist)
  const std::optional<std::size_t> sel = select(candidates);

  // Lines 9-12: restart from the memories when selection failed or the
  // archive has stagnated.
  if (sel.has_value() && !no_improvement_) {
    const Candidate& c = candidates[*sel];
    Solution next = materialize(engine_, c);
    tabu_.push(c.destroys);
    current_ = std::make_shared<const Solution>(std::move(next));
    out.selected = sel;
  } else {
    current_ = std::make_shared<const Solution>(restart_pick());
    ++restarts_;
    ++istats_.restarts;
    TSMO_COUNT("search.restarts");
    out.restarted = true;
    no_improvement_ = false;
  }

  // Introspection funnel: every candidate was a proposal; the selected one
  // was accepted (improving is settled after the archive insert below).
  for (const Candidate& c : candidates) {
    ++istats_.proposed[static_cast<std::size_t>(c.move.type)];
  }
  if (out.selected) {
    ++istats_.accepted[static_cast<std::size_t>(
        candidates[*out.selected].move.type)];
  }

  // Line 13: UpdateMemories(s, N) — chosen current into M_archive,
  // remaining non-dominated neighbors into M_nondom.
  const ArchiveOutcome step_outcome =
      archive_.try_add(current_->objectives(), *current_);
  observe_archive_outcome(step_outcome);
  const bool improved = archive_accepted(step_outcome);
  if (improved) {
    if (out.selected) {
      const Candidate& c = candidates[*out.selected];
      ++istats_.improving[static_cast<std::size_t>(c.move.type)];
      note_insertion(current_->objectives(),
                     static_cast<int>(c.move.type), c.origin);
    } else {
      note_insertion(current_->objectives(), -1, -1);
    }
  }
  for (std::size_t i : nondominated_indices(candidates)) {
    if (out.selected && i == *out.selected) continue;
    const Candidate& c = candidates[i];
    if (nondom_.would_add(c.obj)) {
      nondom_.try_add(c.obj, materialize(engine_, c));
    }
  }

  // Adaptive-operator statistics (extension; no-op when disabled).
  if (params_.adaptive_operators) {
    for (const Candidate& c : candidates) {
      ++offered_[static_cast<std::size_t>(c.move.type)];
    }
    if (out.selected) {
      ++selected_[static_cast<std::size_t>(
          candidates[*out.selected].move.type)];
    }
    maybe_adapt_weights();
  }

  // Lines 14-17: stagnation bookkeeping on M_archive.
  ++iterations_;
  if (improved) {
    last_improvement_ = iterations_;
    TSMO_COUNT("search.archive_improved");
  }
  if (iterations_ - last_improvement_ >=
      static_cast<std::int64_t>(params_.restart_after)) {
    no_improvement_ = true;
  }
  out.archive_improved = improved;

  if (trace_.enabled()) {
    std::uint64_t move_hash = 0;
    if (out.selected) {
      const Move& m = candidates[*out.selected].move;
      move_hash = hash_combine(static_cast<std::uint64_t>(m.type),
                               hash_combine(
                                   hash_combine(
                                       static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(m.r1)),
                                       static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(m.r2))),
                                   hash_combine(
                                       static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(m.i)),
                                       static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(m.j)))));
    }
    trace_.record_step(trace_id_, iterations_, move_hash, out.restarted,
                       current_->objectives(), archive_.size());
  }

  if (recorder_) {
    recorder_->heartbeat(iterations_);
    if (recorder_->sample_due(iterations_)) {
      recorder_->sample(iterations_, evaluations_, archive_.objectives());
    }
  }
  // Introspection snapshot gauges + optional live publication.  Pure
  // observation of already-computed state; no RNG, no decision input.
  ++istats_.steps;
  istats_.tabu_occupancy_now = tabu_.size();
  istats_.tabu_tenure = tabu_.tenure();
  istats_.archive_size_now = archive_.size();
  if (live_introspect_ != nullptr) {
    live_introspect_->publish(introspect_slot_, istats_);
  }

  if (trace_.enabled()) obs::flight_fingerprint(trace_.fingerprint());
  return out;
}

void SearchState::observe_archive_outcome(ArchiveOutcome o) noexcept {
  switch (o) {
    case ArchiveOutcome::Added:
      ++istats_.archive_inserts;
      break;
    case ArchiveOutcome::AddedEvicted:
      ++istats_.archive_inserts;
      ++istats_.archive_evictions;
      break;
    case ArchiveOutcome::Dominated:
      ++istats_.archive_dominated_rejects;
      break;
    case ArchiveOutcome::Duplicate:
      ++istats_.archive_duplicate_rejects;
      break;
    case ArchiveOutcome::RejectedCrowded:
      ++istats_.archive_crowded_rejects;
      break;
  }
}

void SearchState::maybe_adapt_weights() {
  if ((iterations_ + 1) % std::max(params_.adapt_interval, 1) != 0) {
    return;
  }
  std::array<double, kNumMoveTypes> weights{};
  for (int t = 0; t < kNumMoveTypes; ++t) {
    const auto i = static_cast<std::size_t>(t);
    // Success ratio with additive smoothing; floor keeps every operator
    // alive (the selection signal is noisy at MO random selection).
    weights[i] = 0.2 + static_cast<double>(selected_[i] + 1) /
                           static_cast<double>(offered_[i] + 10);
    // Exponential forgetting so the weights track the current phase.
    selected_[i] /= 2;
    offered_[i] /= 2;
  }
  generator_ = NeighborhoodGenerator(engine_, weights,
                                     params_.feasibility_screen,
                                     params_.batch_pricing);
}

bool SearchState::receive(const Solution& s) {
  const bool stored = nondom_.try_add(s.objectives(), s);
  if (stored) {
    trace_.record_event(RunTrace::kTagReceive,
                        static_cast<std::uint64_t>(trace_id_),
                        hash_objectives(s.objectives()));
  }
  return stored;
}

}  // namespace tsmo
