#pragma once

// SearchState bundles everything one TSMO searcher owns — current solution,
// tabu list, the memories M_nondom and M_archive, its RNG stream — and
// implements the selection / restart / memory-update step of Algorithm 1.
//
// All four execution modes (sequential, synchronous and asynchronous
// master-worker, collaborative multisearch, and the DES-simulated variants)
// drive the *same* step_with_candidates(); they differ only in how and when
// candidate sets are produced.  This guarantees the quality comparison in
// the benchmarks measures the parallelization strategy, not divergent
// reimplementations.

#include <atomic>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/candidate.hpp"
#include "core/params.hpp"
#include "core/run_result.hpp"
#include "core/tabu_list.hpp"
#include "moo/anytime.hpp"
#include "moo/archive.hpp"
#include "moo/introspect.hpp"
#include "moo/nondom_memory.hpp"
#include "operators/move_engine.hpp"
#include "operators/neighborhood.hpp"
#include "util/rng.hpp"
#include "util/stop.hpp"
#include "util/trace.hpp"
#include "vrptw/candidate_list.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

class SearchState {
 public:
  /// `cands` optionally shares one prebuilt candidate list across the
  /// searchers/workers of a run (engines build it once via
  /// make_candidate_list).  When params.candidate_k > 0 and no list is
  /// passed, the state builds its own — identical content either way, the
  /// list is a pure function of (instance, k).
  SearchState(const Instance& inst, const TsmoParams& params, Rng rng,
              std::shared_ptr<const CandidateList> cands = nullptr);

  // Non-copyable/movable: generator_ points at engine_, so a copied or
  // moved-from state would alias the wrong engine.
  SearchState(const SearchState&) = delete;
  SearchState& operator=(const SearchState&) = delete;

  /// Builds the I1 initial solution with random parameters (§III.B) and
  /// seeds the memories with it.  Counts as one evaluation.
  void initialize();

  /// Starts from a given solution instead (workers and tests).
  void initialize_with(Solution s);

  bool initialized() const noexcept { return current_ != nullptr; }

  /// Current solution as a shared handle — candidate sets keep their base
  /// alive through this.
  std::shared_ptr<const Solution> current() const noexcept {
    return current_;
  }

  const TsmoParams& params() const noexcept { return params_; }
  Rng& rng() noexcept { return rng_; }
  const MoveEngine& engine() const noexcept { return engine_; }
  const NeighborhoodGenerator& generator() const noexcept {
    return generator_;
  }
  const ParetoArchive<Solution>& archive() const noexcept { return archive_; }
  const NondomMemory<Solution>& nondom() const noexcept { return nondom_; }
  const TabuList& tabu() const noexcept { return tabu_; }

  /// Generates an evaluated candidate set of `count` neighbors of the
  /// current solution (one evaluation each).
  std::vector<Candidate> generate_candidates(int count);

  struct StepOutcome {
    /// Index into the candidate vector of the accepted move, when one was
    /// accepted (its move was applied and its tabu features pushed).
    std::optional<std::size_t> selected;
    bool restarted = false;         ///< current was drawn from the memories
    bool archive_improved = false;  ///< M_archive changed this step
  };

  /// One iteration of Algorithm 1 given an externally produced candidate
  /// set: Select -> (restart?) -> UpdateMemories -> stagnation bookkeeping.
  /// An empty candidate set forces a restart.
  StepOutcome step_with_candidates(const std::vector<Candidate>& candidates);

  /// Multisearch reception (§III.E): "The process receiving the individual
  /// tries to store the solution in its memory of non-dominated solutions
  /// M_nondom."  Returns true when stored.
  bool receive(const Solution& s);

  /// True when this searcher would currently emit an improving solution —
  /// i.e. its last step added to the archive.
  std::int64_t iterations() const noexcept { return iterations_; }
  std::int64_t restarts() const noexcept { return restarts_; }
  std::int64_t evaluations() const noexcept { return evaluations_; }
  /// External evaluation work (e.g. by workers on this searcher's behalf)
  /// is charged here so the budget check sees the global count.
  void charge_evaluations(std::int64_t n) noexcept { evaluations_ += n; }
  /// True when the evaluation budget is spent *or* a cooperative stop was
  /// requested — either the process-wide flag (solver_cli's SIGINT/SIGTERM
  /// path) or this run's own TsmoParams::stop (job-plane cancellation):
  /// every engine loop keys off this check, so a stop request drains
  /// exactly like budget exhaustion and results are still collected and
  /// flushed.
  bool budget_exhausted() const noexcept {
    return evaluations_ >= params_.max_evaluations || stop_flag_raised();
  }

  /// True when either cooperative stop flag (process-wide or per-run) is
  /// raised; collect_result() turns this into RunResult::stopped_early.
  bool stop_flag_raised() const noexcept {
    return stop_requested() ||
           (params_.stop != nullptr &&
            params_.stop->load(std::memory_order_relaxed));
  }

  int iterations_since_improvement() const noexcept {
    return static_cast<int>(iterations_ - last_improvement_);
  }
  bool stagnated() const noexcept { return no_improvement_; }

  /// Current operator weights (fixed unless params.adaptive_operators).
  const std::array<double, kNumMoveTypes>& operator_weights()
      const noexcept {
    return generator_.weights();
  }

  /// Replay trace (enabled by params.trace).  Engines append scheduling
  /// events; step_with_candidates records every search decision.
  RunTrace& trace() noexcept { return trace_; }
  const RunTrace& trace() const noexcept { return trace_; }

  /// Identifies this searcher in trace records (multisearch/hybrid set
  /// their searcher/island index; defaults to 0 for single-master modes).
  void set_trace_id(int id) noexcept { trace_id_ = id; }
  int trace_id() const noexcept { return trace_id_; }

  /// Attaches the anytime convergence recorder (DESIGN.md §9) under this
  /// searcher's trace id — call after set_trace_id.  Observation only:
  /// heartbeats, archive samples and insertion events; never touches the
  /// RNG or any search decision.  Pass nullptr to detach.
  void set_recorder(ConvergenceRecorder* rec) {
    set_recorder(rec, trace_id_);
  }
  /// Same, under an explicit recorder searcher id (the DES drivers keep
  /// their trace ids untouched so fingerprints are recorder-independent).
  void set_recorder(ConvergenceRecorder* rec, int searcher_id);

  /// Introspection counters (DESIGN.md §14): per-operator move funnel,
  /// tabu pressure, archive churn.  Always maintained — pure observation
  /// of values the step computes anyway — and copied into RunResult.
  const IntrospectStats& istats() const noexcept { return istats_; }

  /// Attaches this searcher to a live introspection hub (registering a
  /// fresh slot); step_with_candidates then publishes its counters after
  /// every step.  Pass nullptr to detach.  Observation only: never feeds
  /// back into the search.
  void set_introspect(LiveIntrospect* live) {
    live_introspect_ = live;
    introspect_slot_ = live != nullptr ? live->register_searcher() : -1;
  }

  /// Provenance of the current archive content: attribution of the last
  /// insertion of each member's objective vector (identity attribution
  /// when the vector was never tracked, e.g. for received solutions).
  ArchiveAttribution attribution_for(const Objectives& obj) const;

  /// Asynchronous diversification request (the stall watchdog's opt-in
  /// reaction): the next step treats the search as stagnated and restarts
  /// from the memories.  Safe from any thread.
  void request_restart() noexcept {
    external_restart_.store(true, std::memory_order_relaxed);
  }

 private:
  /// Select(N, M_tabulist): uniformly random among non-tabu members of the
  /// non-dominated subset; nullopt when all are tabu (or the set is empty).
  std::optional<std::size_t> select(const std::vector<Candidate>& candidates);

  /// SelectFrom(M_nondom ∪ M_archive): random union member; M_nondom
  /// entries are consumed.  Falls back to a fresh I1 construction when
  /// both memories are empty (costs one evaluation).
  Solution restart_pick();

  /// Re-derives operator weights from selected/offered statistics when
  /// the adaptive extension is enabled.
  void maybe_adapt_weights();

  /// Records that `obj` (re)entered the archive with the given provenance
  /// and forwards the insertion to the recorder when attached.
  void note_insertion(const Objectives& obj, int op, int worker);

  /// Folds an archive try_add outcome into the churn counters.
  void observe_archive_outcome(ArchiveOutcome o) noexcept;

  const Instance* inst_;
  TsmoParams params_;
  Rng rng_;
  std::shared_ptr<const CandidateList> cands_;  ///< outlives engine_
  MoveEngine engine_;
  NeighborhoodGenerator generator_;
  TabuList tabu_;
  NondomMemory<Solution> nondom_;
  ParetoArchive<Solution> archive_;
  std::shared_ptr<const Solution> current_;
  RunTrace trace_;
  int trace_id_ = 0;
  ConvergenceRecorder::Searcher* recorder_ = nullptr;
  /// Last-writer provenance per distinct objective vector that entered the
  /// archive (linear scan: archives hold tens of points).  Always
  /// maintained so RunResult::attribution works without a recorder.
  std::vector<std::pair<Objectives, ArchiveAttribution>> provenance_;
  std::atomic<bool> external_restart_{false};

  std::int64_t iterations_ = 0;
  std::int64_t restarts_ = 0;
  std::int64_t evaluations_ = 0;
  std::int64_t last_improvement_ = 0;
  bool no_improvement_ = false;
  std::array<std::int64_t, kNumMoveTypes> offered_{};
  std::array<std::int64_t, kNumMoveTypes> selected_{};
  IntrospectStats istats_;
  LiveIntrospect* live_introspect_ = nullptr;
  int introspect_slot_ = -1;
};

}  // namespace tsmo
