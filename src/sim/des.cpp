#include "sim/des.hpp"

#include <algorithm>
#include <utility>

namespace tsmo {

void Simulation::schedule_at(double t, Callback cb) {
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(cb)});
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via a copy
  // of the shared_ptr-backed std::function, which is cheap.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(double t) {
  while (!queue_.empty() && queue_.top().time < t) {
    step();
  }
  now_ = std::max(now_, t);
}

}  // namespace tsmo
