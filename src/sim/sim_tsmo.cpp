#include "sim/sim_tsmo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "core/sequential_tsmo.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/des.hpp"
#include "util/telemetry.hpp"

namespace tsmo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One simulated generation worker: its own engine and RNG stream, an
/// absolute completion time, and the (already computed) result that
/// becomes visible to the master at that time.
class SimWorker {
 public:
  SimWorker(const Instance& inst, int id, Rng rng,
            std::shared_ptr<const CandidateList> cands = nullptr,
            bool batch_pricing = true)
      : engine_(std::make_unique<MoveEngine>(inst)),
        cands_(std::move(cands)),
        batch_pricing_(batch_pricing),
        rng_(rng),
        id_(id) {
    if (cands_) engine_->set_candidate_list(cands_.get());
  }

  bool busy() const noexcept { return busy_; }
  double done_time() const noexcept { return done_time_; }

  /// Dispatches a chunk at virtual time `start`; the candidates are
  /// computed now (against the base as of dispatch) but hidden until
  /// done_time().
  void dispatch(std::shared_ptr<const Solution> base, int count,
                double start, const CostModel& cost, Rng& noise_rng) {
    NeighborhoodGenerator generator(*engine_, {1, 1, 1, 1, 1},
                                    FeasibilityScreen::Local,
                                    batch_pricing_);
    result_ = make_candidates(generator, std::move(base), count, rng_);
    for (Candidate& c : result_) c.origin = static_cast<std::int16_t>(id_);
    const double work = static_cast<double>(result_.size()) * cost.eval_us *
                        cost.straggler_noise(noise_rng);
    done_time_ = start + cost.msg_us + work;
    busy_us_ += cost.msg_us + work;
    busy_ = true;
  }

  /// Collects the finished result (caller must check done_time <= now).
  std::vector<Candidate> collect() {
    busy_ = false;
    return std::move(result_);
  }

  /// Virtual µs this worker spent receiving + generating so far.
  double busy_us() const noexcept { return busy_us_; }

 private:
  std::unique_ptr<MoveEngine> engine_;
  std::shared_ptr<const CandidateList> cands_;
  bool batch_pricing_ = true;
  Rng rng_;
  std::vector<Candidate> result_;
  double done_time_ = kInf;
  double busy_us_ = 0.0;
  bool busy_ = false;
  int id_ = -1;
};

/// Exports the virtual utilization of simulated workers as the same
/// `worker.<id>.busy_ns` / `.idle_ns` gauges the real WorkerTeam maintains,
/// so table benches (which run on the DES substrate) report per-worker
/// utilization too.  Virtual µs are scaled to ns; idle = total − busy.
void export_sim_worker_gauges(const std::vector<SimWorker>& workers,
                              double total_us) {
#if TSMO_TELEMETRY_ENABLED
  if (!telemetry::enabled()) return;
  auto& reg = telemetry::Registry::instance();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const double busy_us = workers[i].busy_us();
    const double idle_us = std::max(0.0, total_us - busy_us);
    const std::string prefix = "worker." + std::to_string(i);
    reg.gauge_add(reg.gauge(prefix + ".busy_ns"),
                  static_cast<std::int64_t>(busy_us * 1e3));
    reg.gauge_add(reg.gauge(prefix + ".idle_ns"),
                  static_cast<std::int64_t>(idle_us * 1e3));
  }
#else
  (void)workers;
  (void)total_us;
#endif
}

double selection_cost(std::size_t pool_size, const CostModel& cost) {
  return static_cast<double>(pool_size) * cost.sel_per_cand_us +
         cost.iter_overhead_us;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sequential (virtual Ts baseline)
// ---------------------------------------------------------------------------

RunResult run_sim_sequential(const Instance& inst, const TsmoParams& params,
                             const CostModel& cost) {
  if (params.telemetry) telemetry::set_enabled(true);
  TSMO_SPAN("run.sim-sequential");
  SearchState state(inst, params, Rng(params.seed));
  state.initialize();
  double t = cost.eval_us;  // initial construction
  while (!state.budget_exhausted()) {
    const std::int64_t remaining =
        params.max_evaluations - state.evaluations();
    const int want = static_cast<int>(std::min<std::int64_t>(
        params.neighborhood_size, remaining));
    if (want <= 0) break;
    const auto candidates = state.generate_candidates(want);
    t += static_cast<double>(candidates.size()) * cost.eval_us;
    t += selection_cost(candidates.size(), cost);
    state.step_with_candidates(candidates);
  }
  RunResult r = collect_result(state, "sim-sequential", 0.0);
  r.sim_seconds = t * 1e-6;
  r.refresh_throughput();
  return r;
}

// ---------------------------------------------------------------------------
// Synchronous master-worker
// ---------------------------------------------------------------------------

RunResult run_sim_sync(const Instance& inst, const TsmoParams& params,
                       int processors, const CostModel& cost) {
  if (params.telemetry) telemetry::set_enabled(true);
  TSMO_SPAN("run.sim-sync");
  const int procs = std::max(2, processors);
  const auto cands = make_candidate_list(inst, params.candidate_k);
  SearchState state(inst, params, Rng(params.seed), cands);
  state.initialize();
  Rng noise(params.seed ^ 0xd015eULL);

  Rng stream_seed(params.seed ^ 0x5eedF00dULL);
  std::vector<SimWorker> workers;
  workers.reserve(static_cast<std::size_t>(procs - 1));
  for (int w = 0; w < procs - 1; ++w) {
    workers.emplace_back(inst, w, stream_seed.split(), cands,
                         params.batch_pricing);
  }

  double t = cost.eval_us;  // initial construction
  while (!state.budget_exhausted()) {
    const std::int64_t remaining =
        params.max_evaluations - state.evaluations();
    const int want = static_cast<int>(std::min<std::int64_t>(
        params.neighborhood_size, remaining));
    if (want <= 0) break;
    const int chunk = want / procs;

    // Serial dispatch at the master: one solution transfer per worker.
    double dispatch_end = t;
    int dispatched = 0;
    if (chunk > 0) {
      for (SimWorker& w : workers) {
        dispatch_end += cost.msg_us + cost.transfer_solution_us;
        w.dispatch(state.current(), chunk, dispatch_end, cost, noise);
        ++dispatched;
      }
      TSMO_COUNT_N("sync.chunks_dispatched",
                   static_cast<std::uint64_t>(dispatched));
    }
    // Master's own share runs after dispatching.
    const int master_chunk = want - dispatched * chunk;
    std::vector<Candidate> pool = state.generate_candidates(master_chunk);
    double master_done =
        dispatch_end + static_cast<double>(pool.size()) * cost.eval_us;

    // Barrier: the iteration continues after the slowest participant,
    // then the master deserializes every returned chunk.
    double barrier = master_done;
    for (SimWorker& w : workers) {
      if (!w.busy()) continue;
      barrier = std::max(barrier, w.done_time());
    }
    for (SimWorker& w : workers) {
      if (!w.busy()) continue;
      auto part = w.collect();
      barrier += cost.msg_us + static_cast<double>(part.size()) *
                                   cost.transfer_per_cand_us;
      state.charge_evaluations(static_cast<std::int64_t>(part.size()));
      pool.insert(pool.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
    }
    t = barrier + selection_cost(pool.size(), cost);
    state.step_with_candidates(pool);
  }
  export_sim_worker_gauges(workers, t);
  RunResult r = collect_result(state, "sim-sync", 0.0);
  r.sim_seconds = t * 1e-6;
  r.refresh_throughput();
  return r;
}

// ---------------------------------------------------------------------------
// Asynchronous master-worker — reusable core (also drives the hybrid)
// ---------------------------------------------------------------------------

namespace {

class AsyncSimCore {
 public:
  AsyncSimCore(const Instance& inst, const TsmoParams& params,
               int processors, const CostModel& cost,
               SimAsyncOptions options)
      : params_(params),
        cost_(cost),
        options_(std::move(options)),
        cands_(make_candidate_list(inst, params.candidate_k)),
        state_(inst, params, Rng(params.seed), cands_),
        noise_(params.seed ^ 0xa57cULL) {
    const int procs = std::max(2, processors);
    chunk_ = std::max(1, params.neighborhood_size / procs);
    wait_too_long_us_ = options.wait_too_long_us > 0.0
                            ? options.wait_too_long_us
                            : 0.5 * static_cast<double>(chunk_) *
                                  cost.eval_us;
    Rng stream_seed(params.seed ^ 0x5eedF00dULL);
    workers_.reserve(static_cast<std::size_t>(procs - 1));
    for (int w = 0; w < procs - 1; ++w) {
      workers_.emplace_back(inst, w, stream_seed.split(), cands_,
                            params.batch_pricing);
    }
    if (options_.recorder) {
      state_.set_recorder(options_.recorder, options_.searcher_id);
    }
    state_.initialize();
  }

  SearchState& state() noexcept { return state_; }
  bool done() const noexcept { return state_.budget_exhausted(); }

  /// Publishes per-worker virtual utilization gauges up to time `total_us`.
  void export_worker_gauges(double total_us) const {
    export_sim_worker_gauges(workers_, total_us);
  }

  struct IterResult {
    double end_time = 0.0;
    bool archive_improved = false;
    bool progressed = false;  ///< false when the budget ran out instead
  };

  /// One master macro-iteration starting no earlier than `now`.
  IterResult iterate(double now) {
    IterResult out;
    if (done()) {
      out.end_time = now;
      return out;
    }
    double t = now;

    // Dispatch fresh chunks to idle workers while the budget leaves room.
    for (SimWorker& w : workers_) {
      const std::int64_t headroom = params_.max_evaluations -
                                    state_.evaluations() - inflight_;
      if (w.busy() || headroom < chunk_) continue;
      t += cost_.msg_us + cost_.transfer_solution_us;
      w.dispatch(state_.current(), chunk_, t, cost_, noise_);
      inflight_ += chunk_;
      TSMO_COUNT("async.chunks_dispatched");
    }

    // Master's own share.
    const std::int64_t remaining =
        params_.max_evaluations - state_.evaluations();
    const int master_chunk =
        static_cast<int>(std::min<std::int64_t>(chunk_, remaining));
    if (master_chunk > 0) {
      auto mine = state_.generate_candidates(master_chunk);
      t += static_cast<double>(mine.size()) * cost_.eval_us;
      pool_.insert(pool_.end(), std::make_move_iterator(mine.begin()),
                   std::make_move_iterator(mine.end()));
    }
    t = collect_arrived(t);

    // Algorithm 2 on the virtual clock.
    const double wait_start = t;
    for (;;) {
      const bool c1 = std::any_of(workers_.begin(), workers_.end(),
                                  [](const SimWorker& w) {
                                    return !w.busy();
                                  });
      const bool c2 = std::any_of(
          pool_.begin(), pool_.end(), [&](const Candidate& c) {
            return dominates(c.obj, state_.current()->objectives());
          });
      const bool c4 = state_.budget_exhausted();
      if ((options_.use_c1 && c1) || (options_.use_c2 && c2) || c4) break;
      const double next = next_completion();
      if (next == kInf) break;  // nothing in flight: waiting is pointless
      if (next > wait_start + wait_too_long_us_) {
        t = wait_start + wait_too_long_us_;  // c3
        break;
      }
      t = collect_arrived(next);
    }

    if (pool_.empty() && state_.budget_exhausted()) {
      out.end_time = t;
      return out;
    }
    t += selection_cost(pool_.size(), cost_);
    std::vector<Objectives> pool_objs;
    if (options_.observer) {
      pool_objs.reserve(pool_.size());
      for (const Candidate& c : pool_) pool_objs.push_back(c.obj);
    }
    const auto step = state_.step_with_candidates(pool_);
    pool_.clear();
    if (options_.observer) {
      SimAsyncIterationEvent ev;
      ev.iteration = state_.iterations();
      ev.virtual_time_s = t * 1e-6;
      ev.pool = std::move(pool_objs);
      ev.selected = state_.current()->objectives();
      ev.restarted = step.restarted;
      options_.observer(ev);
    }
    out.end_time = t;
    out.archive_improved = step.archive_improved;
    out.progressed = true;
    return out;
  }

 private:
  double next_completion() const {
    double next = kInf;
    for (const SimWorker& w : workers_) {
      if (w.busy()) next = std::min(next, w.done_time());
    }
    return next;
  }

  /// Moves every result with done_time <= t into the pool, charging the
  /// master's receive costs; returns the advanced master time.
  double collect_arrived(double t) {
    for (SimWorker& w : workers_) {
      if (!w.busy() || w.done_time() > t) continue;
      auto part = w.collect();
      inflight_ -= chunk_;
      t += cost_.msg_us + static_cast<double>(part.size()) *
                              cost_.transfer_per_cand_us;
      state_.charge_evaluations(static_cast<std::int64_t>(part.size()));
      pool_.insert(pool_.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    return t;
  }

  TsmoParams params_;
  CostModel cost_;
  SimAsyncOptions options_;
  std::shared_ptr<const CandidateList> cands_;  ///< init before state_
  SearchState state_;
  Rng noise_;
  std::vector<SimWorker> workers_;
  std::vector<Candidate> pool_;
  int chunk_ = 1;
  std::int64_t inflight_ = 0;
  double wait_too_long_us_ = 0.0;
};

}  // namespace

RunResult run_sim_async(const Instance& inst, const TsmoParams& params,
                        int processors, const CostModel& cost,
                        SimAsyncOptions options) {
  if (params.telemetry) telemetry::set_enabled(true);
  TSMO_SPAN("run.sim-async");
  ConvergenceRecorder* rec = options.recorder;
  obs::flight_engine_start("sim-async", 1, std::max(2, processors) - 1);
  if (rec) {
    rec->engine_started("sim-async", 1, std::max(2, processors) - 1);
  }
  AsyncSimCore core(inst, params, processors, cost, std::move(options));
  double t = cost.eval_us;  // initial construction
  while (!core.done()) {
    const auto iter = core.iterate(t);
    t = iter.end_time;
    if (!iter.progressed) break;
  }
  core.export_worker_gauges(t);
  obs::flight_engine_finish("sim-async", core.state().iterations());
  if (rec) rec->engine_finished(core.state().iterations());
  RunResult r = collect_result(core.state(), "sim-async", 0.0);
  r.sim_seconds = t * 1e-6;
  r.refresh_throughput();
  return r;
}

// ---------------------------------------------------------------------------
// Collaborative multisearch on the DES
// ---------------------------------------------------------------------------

MultisearchResult run_sim_multisearch(const Instance& inst,
                                      const TsmoParams& params,
                                      int processors,
                                      const CostModel& cost) {
  if (params.telemetry) telemetry::set_enabled(true);
  TSMO_SPAN("run.sim-coll");
  const int procs = std::max(2, processors);
  const auto n = static_cast<std::size_t>(procs);
  const double contention = cost.contention_factor(procs);

  struct CollSearcher {
    std::unique_ptr<SearchState> state;
    TsmoParams params;
    std::vector<int> comm;
    std::vector<Solution> mailbox;
    bool initial_phase = true;
    double finish_time = 0.0;
    std::int64_t sent = 0;
  };
  std::vector<CollSearcher> searchers(n);
  std::int64_t messages_sent = 0, messages_accepted = 0;

  for (int id = 0; id < procs; ++id) {
    auto& s = searchers[static_cast<std::size_t>(id)];
    Rng rng(params.seed + static_cast<std::uint64_t>(id) * 0x51ed2701ULL);
    s.params = id == 0 ? params : params.perturbed(rng);
    s.params.max_evaluations = params.max_evaluations;
    s.params.seed = rng.next();
    s.state =
        std::make_unique<SearchState>(inst, s.params, Rng(s.params.seed));
    s.state->initialize();
    for (int k = 0; k < procs; ++k) {
      if (k != id) s.comm.push_back(k);
    }
    for (std::size_t k = s.comm.size(); k > 1; --k) {
      std::swap(s.comm[k - 1], s.comm[rng.below(k)]);
    }
  }

  Simulation sim;
  // One self-rescheduling "iteration" event per searcher.
  std::function<void(int)> do_step = [&](int id) {
    auto& s = searchers[static_cast<std::size_t>(id)];
    if (s.state->budget_exhausted()) {
      s.finish_time = sim.now();
      return;
    }
    double dt = 0.0;
    for (Solution& incoming : s.mailbox) {
      dt += cost.msg_us;  // reception handling
      if (s.state->receive(incoming)) ++messages_accepted;
    }
    s.mailbox.clear();

    const std::int64_t remaining =
        s.params.max_evaluations - s.state->evaluations();
    const int want = static_cast<int>(std::min<std::int64_t>(
        s.params.neighborhood_size, remaining));
    if (want <= 0) {
      s.finish_time = sim.now();
      return;
    }
    const auto candidates = s.state->generate_candidates(want);
    const auto outcome = s.state->step_with_candidates(candidates);
    dt += static_cast<double>(candidates.size()) * cost.eval_us;
    dt += selection_cost(candidates.size(), cost);
    dt *= contention;

    if (s.initial_phase && s.state->iterations_since_improvement() >=
                               s.params.restart_after) {
      s.initial_phase = false;
    }
    if (!s.initial_phase && outcome.archive_improved && !s.comm.empty()) {
      const int target = s.comm.front();
      std::rotate(s.comm.begin(), s.comm.begin() + 1, s.comm.end());
      dt += cost.msg_us + cost.transfer_solution_us;
      ++messages_sent;
      Solution payload = *s.state->current();
      sim.schedule_after(dt + cost.msg_us,
                         [&, target, payload = std::move(payload)] {
                           searchers[static_cast<std::size_t>(target)]
                               .mailbox.push_back(payload);
                         });
    }
    sim.schedule_after(dt, [&, id] { do_step(id); });
  };

  const double init_cost = cost.eval_us * contention;
  for (int id = 0; id < procs; ++id) {
    sim.schedule_at(init_cost, [&, id] { do_step(id); });
  }
  sim.run();

  MultisearchResult result;
  result.per_searcher.reserve(n);
  for (auto& s : searchers) {
    RunResult r = collect_result(*s.state, "sim-coll", 0.0);
    r.sim_seconds = s.finish_time * 1e-6;
    r.refresh_throughput();
    result.per_searcher.push_back(std::move(r));
  }
  result.merged = merge_results(result.per_searcher, "sim-coll");
  result.messages_sent = messages_sent;
  result.messages_accepted = messages_accepted;
  return result;
}

// ---------------------------------------------------------------------------
// Hybrid (future work §V): collaborating asynchronous islands
// ---------------------------------------------------------------------------

MultisearchResult run_sim_hybrid(const Instance& inst,
                                 const TsmoParams& params, int islands,
                                 int procs_per_island,
                                 const CostModel& cost) {
  if (params.telemetry) telemetry::set_enabled(true);
  TSMO_SPAN("run.sim-hybrid");
  const int k = std::max(2, islands);
  const auto n = static_cast<std::size_t>(k);
  const double contention = cost.contention_factor(k);

  struct Island {
    std::unique_ptr<AsyncSimCore> core;
    TsmoParams params;
    std::vector<int> comm;
    std::vector<Solution> mailbox;
    bool initial_phase = true;
    double finish_time = 0.0;
  };
  std::vector<Island> nodes(n);
  std::int64_t messages_sent = 0, messages_accepted = 0;

  for (int id = 0; id < k; ++id) {
    auto& isl = nodes[static_cast<std::size_t>(id)];
    Rng rng(params.seed + static_cast<std::uint64_t>(id) * 0x9d2c5680ULL);
    isl.params = id == 0 ? params : params.perturbed(rng);
    isl.params.max_evaluations = params.max_evaluations;
    isl.params.seed = rng.next();
    isl.core = std::make_unique<AsyncSimCore>(
        inst, isl.params, procs_per_island, cost, SimAsyncOptions{});
    for (int j = 0; j < k; ++j) {
      if (j != id) isl.comm.push_back(j);
    }
    for (std::size_t j = isl.comm.size(); j > 1; --j) {
      std::swap(isl.comm[j - 1], isl.comm[rng.below(j)]);
    }
  }

  Simulation sim;
  std::function<void(int)> do_step = [&](int id) {
    auto& isl = nodes[static_cast<std::size_t>(id)];
    if (isl.core->done()) {
      isl.finish_time = sim.now();
      return;
    }
    double extra = 0.0;
    for (Solution& incoming : isl.mailbox) {
      extra += cost.msg_us;
      if (isl.core->state().receive(incoming)) ++messages_accepted;
    }
    isl.mailbox.clear();

    const auto iter = isl.core->iterate(sim.now() + extra);
    if (!iter.progressed) {
      isl.finish_time = iter.end_time;
      return;
    }
    double end = sim.now() + (iter.end_time - sim.now()) * contention;

    if (isl.initial_phase &&
        isl.core->state().iterations_since_improvement() >=
            isl.params.restart_after) {
      isl.initial_phase = false;
    }
    if (!isl.initial_phase && iter.archive_improved && !isl.comm.empty()) {
      const int target = isl.comm.front();
      std::rotate(isl.comm.begin(), isl.comm.begin() + 1, isl.comm.end());
      end += cost.msg_us + cost.transfer_solution_us;
      ++messages_sent;
      Solution payload = *isl.core->state().current();
      sim.schedule_at(end + cost.msg_us,
                      [&, target, payload = std::move(payload)] {
                        nodes[static_cast<std::size_t>(target)]
                            .mailbox.push_back(payload);
                      });
    }
    sim.schedule_at(end, [&, id] { do_step(id); });
  };

  for (int id = 0; id < k; ++id) {
    sim.schedule_at(cost.eval_us, [&, id] { do_step(id); });
  }
  sim.run();

  MultisearchResult result;
  result.per_searcher.reserve(n);
  for (auto& isl : nodes) {
    isl.core->export_worker_gauges(isl.finish_time);
    RunResult r = collect_result(isl.core->state(), "sim-hybrid", 0.0);
    r.sim_seconds = isl.finish_time * 1e-6;
    r.refresh_throughput();
    result.per_searcher.push_back(std::move(r));
  }
  result.merged = merge_results(result.per_searcher, "sim-hybrid");
  result.messages_sent = messages_sent;
  result.messages_accepted = messages_accepted;
  return result;
}

}  // namespace tsmo
