#pragma once

// Simulated executions of the four algorithms on a virtual clock.
//
// These drivers run the REAL search code (the same SearchState /
// MoveEngine / memories as the threaded implementations); the CostModel
// only determines how much virtual time each piece of work consumes and
// hence *when worker results become visible to the master* — exactly the
// mechanism that separates the synchronous, asynchronous and collaborative
// strategies in the paper.  Results carry the virtual runtime in
// RunResult::sim_seconds; the speedup columns of Tables I-IV are
// Ts_sim / Tp_sim.
//
// Everything here is deterministic in (instance, params, processors, seed).

#include <functional>

#include "core/run_result.hpp"
#include "core/search_state.hpp"
#include "parallel/multisearch_tsmo.hpp"
#include "sim/cost_model.hpp"

namespace tsmo {

/// Sequential TSMO with virtual-time accounting (the Ts baseline).
RunResult run_sim_sequential(const Instance& inst, const TsmoParams& params,
                             const CostModel& cost);

/// Synchronous master-worker (§III.C): per iteration the master dispatches
/// chunks, computes its own, and blocks at a barrier until the slowest
/// worker (straggler noise applies) has returned.
RunResult run_sim_sync(const Instance& inst, const TsmoParams& params,
                       int processors, const CostModel& cost);

/// Per-master-iteration snapshot of the asynchronous search, used by the
/// Fig. 1 trajectory bench: the candidate pool considered (which may mix
/// neighbors generated against earlier current solutions) and the solution
/// selected from it.
struct SimAsyncIterationEvent {
  std::int64_t iteration = 0;
  double virtual_time_s = 0.0;
  std::vector<Objectives> pool;
  Objectives selected;
  bool restarted = false;
};

struct SimAsyncOptions {
  /// c3 threshold in virtual microseconds; <= 0 selects the default of
  /// half a worker-chunk evaluation time.
  double wait_too_long_us = 0.0;
  /// Ablation switches for the decision function's conditions (Algorithm
  /// 2): disabling c1 makes the master ignore idle workers; disabling c2
  /// ignores dominating candidates.  c3 (the timeout) and c4 (the budget)
  /// always apply, so the search cannot deadlock.
  bool use_c1 = true;
  bool use_c2 = true;
  /// Invoked after every master iteration when set.
  std::function<void(const SimAsyncIterationEvent&)> observer;
  /// Anytime convergence recorder (DESIGN.md §9); the simulated master
  /// attaches under `searcher_id` (which deliberately does NOT change the
  /// search's trace id, so fingerprints stay identical with the recorder
  /// on or off).  Observation only; must outlive the run.
  ConvergenceRecorder* recorder = nullptr;
  int searcher_id = 0;
};

/// Asynchronous master-worker (§III.D, Algorithm 2) on the virtual clock.
RunResult run_sim_async(const Instance& inst, const TsmoParams& params,
                        int processors, const CostModel& cost,
                        SimAsyncOptions options = {});

/// Collaborative multisearch (§III.E) on a discrete-event simulation:
/// searchers interleave on the virtual timeline and solution messages are
/// delivered with latency.  Deterministic, unlike the threaded variant.
MultisearchResult run_sim_multisearch(const Instance& inst,
                                      const TsmoParams& params,
                                      int processors, const CostModel& cost);

/// The paper's future-work hybrid (§V): `islands` collaborative islands,
/// each an asynchronous master-worker group of `procs_per_island`
/// processors, exchanging improving solutions like the multisearch TS.
MultisearchResult run_sim_hybrid(const Instance& inst,
                                 const TsmoParams& params, int islands,
                                 int procs_per_island,
                                 const CostModel& cost);

}  // namespace tsmo
