#pragma once

// Minimal discrete-event simulator: a priority queue of timestamped
// callbacks and a virtual clock.  Ties are broken FIFO so runs are fully
// deterministic.  Used by the simulated collaborative/hybrid drivers,
// where multiple searchers interleave on the virtual timeline.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tsmo {

class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time (microseconds by library convention).
  double now() const noexcept { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (>= now; earlier times
  /// are clamped to now).
  void schedule_at(double t, Callback cb);

  /// Schedules `cb` at now + dt (dt < 0 clamps to now).
  void schedule_after(double dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Executes the next event; false when the queue is empty.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs while events exist and now() < t.
  void run_until(double t);

  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed (diagnostics).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace tsmo
