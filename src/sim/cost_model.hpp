#pragma once

// Timing model of the paper's execution platform (SGI Origin 3800,
// 128 x R12000 @ 400 MHz, DEME middleware).  See DESIGN.md §4: the host
// for this reproduction has a single CPU core, so the runtime/speedup
// columns of Tables I-IV are regenerated on a virtual clock.  The search
// *logic* executed under the model is the real algorithm code; the model
// only decides how long each piece of work takes and therefore when worker
// results become visible to the master.
//
// Parameter rationale (fitted to the structure of the paper's numbers,
// not to reproduce them exactly):
//   * eval_us scales linearly with instance size — the paper's sequential
//     runtimes scale almost exactly with N (2226s/400 ≈ 3260s/600 per city)
//   * a serial master share (selection + memory updates) plus straggler
//     noise on worker chunks makes the synchronous speedup saturate early,
//     as observed ("a maximum speedup seemed to be reached quickly")
//   * per-message and per-solution transfer costs grow the dispatch bill
//     with P, producing the asynchronous speedup dip at 12 processors
//     ("communication overhead becomes noticeable at 12 processors")
//   * a log(P) contention factor slows collaborative searchers, matching
//     the monotonically growing collaborative runtimes (negative speedup)

#include "util/rng.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

struct CostModel {
  /// Per-candidate neighborhood generation + evaluation, microseconds.
  double eval_us = 18000.0;
  /// Serial master cost per candidate considered (selection, dominance
  /// checks, memory updates) — exists in every variant.
  double sel_per_cand_us = 4000.0;
  /// Fixed per-iteration overhead at the master / searcher.
  double iter_overhead_us = 1000.0;
  /// Fixed cost per message between processes.
  double msg_us = 300.0;
  /// Serializing + shipping one full solution (dispatching the current
  /// solution to a worker; exchanging solutions between searchers).
  double transfer_solution_us = 20000.0;
  /// Per candidate inside a returned result message.
  double transfer_per_cand_us = 40.0;
  /// Lognormal sigma of worker chunk durations (stragglers on the shared
  /// machine).  Mean is kept at 1.
  double straggler_sigma = 0.9;
  /// Collaborative slowdown: searcher speed multiplier 1 + c * ln(P).
  double coll_contention = 0.15;

  /// Model scaled to an instance: evaluation and transfer costs grow
  /// linearly with the number of sites.
  static CostModel for_instance(const Instance& inst);

  /// Multiplicative chunk-duration noise, lognormal with mean 1.
  double straggler_noise(Rng& rng) const;

  /// Collaborative contention multiplier for P concurrent searchers.
  double contention_factor(int processors) const;
};

}  // namespace tsmo
