#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace tsmo {

CostModel CostModel::for_instance(const Instance& inst) {
  CostModel m;
  const double n = static_cast<double>(inst.num_sites());
  // Evaluating a move re-schedules the affected routes, so the per-
  // candidate cost grows with the expected route length.  Type-2
  // instances (capacity 700, few vehicles) have ~3x longer routes and run
  // ~26% slower in the paper's tables; the clamp reproduces that ratio.
  const double avg_route_len =
      static_cast<double>(inst.num_customers()) /
      std::max(1, inst.min_vehicles_by_capacity());
  const double route_factor =
      std::clamp(0.8 + avg_route_len / 50.0, 1.0, 1.3);
  // Anchored on the paper's 400-city sequential runtimes: ~22 ms per
  // evaluated candidate including the master's share.
  m.eval_us = 45.0 * n * route_factor;
  m.sel_per_cand_us = 10.0 * n;
  // Shipping a full solution through the middleware dominates dispatch;
  // this serial master cost is what bends the async speedup down at 12
  // processors and flattens the synchronous curve.
  m.transfer_solution_us = 250.0 * n;
  m.transfer_per_cand_us = 0.1 * n;
  // Chunk-duration skew on the time-shared machine: the synchronous
  // barrier pays the slowest worker every iteration.
  m.straggler_sigma = 1.2;
  return m;
}

double CostModel::straggler_noise(Rng& rng) const {
  const double sigma = std::max(straggler_sigma, 0.0);
  if (sigma == 0.0) return 1.0;
  // exp(sigma Z - sigma^2/2) has mean exactly 1.
  return std::exp(sigma * rng.normal() - 0.5 * sigma * sigma);
}

double CostModel::contention_factor(int processors) const {
  if (processors <= 1) return 1.0;
  return 1.0 + coll_contention * std::log(static_cast<double>(processors));
}

}  // namespace tsmo
