#pragma once

// SPEA2 (Zitzler, Laumanns, Thiele 2001) applied to the multiobjective
// CVRPTW.  Together with NSGA-II this completes the set of "well
// established multiobjective evolutionary algorithms" the paper names in
// §III.A and defers comparing against in §V.
//
// Standard SPEA2: strength/raw fitness (how many dominate you, weighted
// by how much they dominate), density via the k-th nearest neighbour in
// objective space, a fixed-size external archive maintained by truncation
// (iteratively removing the most crowded member), binary tournament on the
// archive, and the same VRPTW variation operators as the NSGA-II
// comparator (best-cost route crossover + the paper's move operators).

#include "core/run_result.hpp"
#include "operators/move.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

struct Spea2Params {
  std::int64_t max_evaluations = 100000;
  int population_size = 80;
  int archive_size = 40;
  double crossover_rate = 0.9;
  double mutation_rate = 0.3;
  FeasibilityScreen feasibility_screen = FeasibilityScreen::Local;
  std::uint64_t seed = 1;
};

class Spea2 {
 public:
  Spea2(const Instance& inst, const Spea2Params& params)
      : inst_(&inst), params_(params) {}

  /// Runs until the evaluation budget is exhausted; the result's front is
  /// the non-dominated subset of the final archive.
  RunResult run() const;

 private:
  const Instance* inst_;
  Spea2Params params_;
};

}  // namespace tsmo
