#pragma once

// NSGA-II (Deb et al. 2000) applied to the multiobjective CVRPTW —
// implements the comparison the paper defers to future work (§V): "a
// comparison between the TSMO versions here and the well established
// multiobjective evolutionary algorithms".
//
// Standard generational NSGA-II: binary tournament on (rank, crowding),
// best-cost route crossover, mutation by the paper's own move operators
// (reusing the MoveEngine), (mu + lambda) elitist survival via fast
// non-dominated sorting and crowding distance.  The evaluation budget is
// counted per constructed/offspring solution, making runs directly
// comparable to TSMO at equal `max_evaluations`.

#include "core/run_result.hpp"
#include "operators/move.hpp"
#include "vrptw/instance.hpp"

namespace tsmo {

struct Nsga2Params {
  std::int64_t max_evaluations = 100000;
  int population_size = 100;
  double crossover_rate = 0.9;
  /// Probability that an offspring is mutated (1-3 random operator moves,
  /// screened like the TSMO neighborhood).
  double mutation_rate = 0.3;
  FeasibilityScreen feasibility_screen = FeasibilityScreen::Local;
  std::uint64_t seed = 1;
};

class Nsga2 {
 public:
  Nsga2(const Instance& inst, const Nsga2Params& params)
      : inst_(&inst), params_(params) {}

  /// Runs until the evaluation budget is exhausted.  The result's front
  /// holds the final population's rank-0 solutions (deduplicated).
  RunResult run() const;

 private:
  const Instance* inst_;
  Nsga2Params params_;
};

}  // namespace tsmo
