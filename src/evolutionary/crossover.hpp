#pragma once

// Best-cost route crossover (BCRC) for the VRPTW, the standard recombina-
// tion in multiobjective evolutionary VRPTW solvers (Ombuki et al. 2006):
// the child inherits parent A's routes, a randomly chosen route of parent
// B is removed from it, and the displaced customers are re-inserted one by
// one at their cheapest position (preferring positions that keep the
// schedule tardiness-free, falling back to capacity-feasible ones).
//
// This is the recombination used by the NSGA-II comparator — the paper's
// §V future-work comparison against "well established multiobjective
// evolutionary algorithms".

#include "construct/insertion_utils.hpp"
#include "util/rng.hpp"
#include "vrptw/instance.hpp"
#include "vrptw/solution.hpp"

namespace tsmo {

/// Produces a child from parents `a` and `b`.  Always yields a valid
/// solution (every customer exactly once, capacity respected); when `b`
/// has no non-empty route, returns a copy of `a`.
Solution best_cost_route_crossover(const Instance& inst, const Solution& a,
                                   const Solution& b, Rng& rng);

}  // namespace tsmo
