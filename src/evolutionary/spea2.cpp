#include "evolutionary/spea2.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "construct/i1_insertion.hpp"
#include "evolutionary/crossover.hpp"
#include "operators/move_engine.hpp"
#include "util/timer.hpp"

namespace tsmo {

namespace {

struct Individual {
  Solution solution;
  double fitness = 0.0;  // lower is better (raw + density)
};

/// Normalized objective-space Euclidean distance used by the density
/// estimator and archive truncation.
double objective_distance(const Objectives& a, const Objectives& b,
                          const Objectives& scale) {
  const double dd = (a.distance - b.distance) / std::max(scale.distance, 1e-9);
  const double dv = static_cast<double>(a.vehicles - b.vehicles) /
                    std::max(static_cast<double>(scale.vehicles), 1e-9);
  const double dt =
      (a.tardiness - b.tardiness) / std::max(scale.tardiness, 1e-9);
  return std::sqrt(dd * dd + dv * dv + dt * dt);
}

Objectives objective_ranges(const std::vector<Individual>& pool) {
  Objectives lo{1e300, 1 << 30, 1e300}, hi{-1e300, -(1 << 30), -1e300};
  for (const Individual& ind : pool) {
    const Objectives& o = ind.solution.objectives();
    lo.distance = std::min(lo.distance, o.distance);
    hi.distance = std::max(hi.distance, o.distance);
    lo.vehicles = std::min(lo.vehicles, o.vehicles);
    hi.vehicles = std::max(hi.vehicles, o.vehicles);
    lo.tardiness = std::min(lo.tardiness, o.tardiness);
    hi.tardiness = std::max(hi.tardiness, o.tardiness);
  }
  return Objectives{std::max(hi.distance - lo.distance, 1e-9),
                    std::max(hi.vehicles - lo.vehicles, 1),
                    std::max(hi.tardiness - lo.tardiness, 1e-9)};
}

/// SPEA2 fitness over the combined pool: strength -> raw fitness ->
/// density (1 / (2 + kth-nearest distance)).
void assign_fitness(std::vector<Individual>& pool) {
  const std::size_t n = pool.size();
  std::vector<int> strength(n, 0);
  std::vector<std::vector<std::size_t>> dominators(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(pool[i].solution.objectives(),
                    pool[j].solution.objectives())) {
        ++strength[i];
        dominators[j].push_back(i);
      }
    }
  }
  const Objectives scale = objective_ranges(pool);
  const auto k = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(n)));
  std::vector<double> dists;
  for (std::size_t i = 0; i < n; ++i) {
    double raw = 0.0;
    for (std::size_t d : dominators[i]) {
      raw += static_cast<double>(strength[d]);
    }
    dists.clear();
    dists.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.push_back(objective_distance(pool[i].solution.objectives(),
                                         pool[j].solution.objectives(),
                                         scale));
    }
    const std::size_t kth = std::min(k, dists.size() - 1);
    std::nth_element(dists.begin(),
                     dists.begin() + static_cast<std::ptrdiff_t>(kth),
                     dists.end());
    const double density =
        1.0 / (2.0 + dists[kth]);
    pool[i].fitness = raw + density;
  }
}

/// Environmental selection: all non-dominated (fitness < 1) members, then
/// truncation (remove the most crowded) or fill-up with the best
/// dominated ones.
std::vector<Individual> environmental_selection(
    std::vector<Individual> pool, std::size_t archive_size) {
  std::vector<Individual> archive;
  std::vector<Individual> rest;
  for (Individual& ind : pool) {
    (ind.fitness < 1.0 ? archive : rest).push_back(std::move(ind));
  }
  if (archive.size() < archive_size) {
    std::sort(rest.begin(), rest.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    for (Individual& ind : rest) {
      if (archive.size() >= archive_size) break;
      archive.push_back(std::move(ind));
    }
    return archive;
  }
  // Truncation: repeatedly remove the member with the smallest nearest-
  // neighbour distance.
  while (archive.size() > archive_size) {
    std::vector<Individual>& a = archive;
    const Objectives scale = objective_ranges(a);
    double min_d = std::numeric_limits<double>::infinity();
    std::size_t victim = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < a.size(); ++j) {
        if (i == j) continue;
        nearest = std::min(
            nearest, objective_distance(a[i].solution.objectives(),
                                        a[j].solution.objectives(), scale));
      }
      if (nearest < min_d) {
        min_d = nearest;
        victim = i;
      }
    }
    archive.erase(archive.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return archive;
}

const Individual& tournament(const std::vector<Individual>& pool,
                             Rng& rng) {
  const Individual& a = pool[rng.below(pool.size())];
  const Individual& b = pool[rng.below(pool.size())];
  return a.fitness <= b.fitness ? a : b;
}

}  // namespace

RunResult Spea2::run() const {
  Timer timer;
  Rng rng(params_.seed);
  MoveEngine engine(*inst_);
  const int n = std::max(4, params_.population_size);
  const auto archive_size =
      static_cast<std::size_t>(std::max(4, params_.archive_size));
  std::int64_t evaluations = 0;

  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n && evaluations < params_.max_evaluations; ++i) {
    population.push_back(Individual{construct_i1_random(*inst_, rng)});
    ++evaluations;
  }
  std::vector<Individual> archive;

  std::int64_t generations = 0;
  while (evaluations < params_.max_evaluations) {
    // Pool = population + archive; fitness; environmental selection.
    std::vector<Individual> pool = std::move(population);
    for (Individual& ind : archive) pool.push_back(std::move(ind));
    assign_fitness(pool);
    archive = environmental_selection(std::move(pool), archive_size);

    // Mating selection + variation from the archive.
    population.clear();
    while (population.size() < static_cast<std::size_t>(n) &&
           evaluations < params_.max_evaluations) {
      const Individual& p1 = tournament(archive, rng);
      Solution child =
          rng.chance(params_.crossover_rate)
              ? best_cost_route_crossover(
                    *inst_, p1.solution, tournament(archive, rng).solution,
                    rng)
              : p1.solution;
      if (rng.chance(params_.mutation_rate)) {
        const int moves = static_cast<int>(rng.uniform_int(1, 3));
        for (int m = 0; m < moves; ++m) {
          const auto type = static_cast<MoveType>(
              rng.below(static_cast<std::uint64_t>(kNumMoveTypes)));
          const auto move = engine.propose(type, child, rng, 12,
                                           params_.feasibility_screen);
          if (move) engine.apply(child, *move);
        }
      }
      ++evaluations;
      population.push_back(Individual{std::move(child)});
    }
    ++generations;
  }

  // Final archive: report its non-dominated subset.
  RunResult result;
  result.algorithm = "spea2";
  for (const Individual& ind : archive) {
    const Objectives& o = ind.solution.objectives();
    bool keep = true;
    for (const Individual& other : archive) {
      if (&other == &ind) continue;
      if (dominates(other.solution.objectives(), o)) {
        keep = false;
        break;
      }
    }
    for (const Objectives& seen : result.front) {
      if (seen == o) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    result.front.push_back(o);
    result.solutions.push_back(ind.solution);
  }
  result.evaluations = evaluations;
  result.iterations = generations;
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace tsmo
