#include "evolutionary/nsga2.hpp"

#include <algorithm>
#include <numeric>

#include "construct/i1_insertion.hpp"
#include "evolutionary/crossover.hpp"
#include "moo/archive.hpp"
#include "moo/sorting.hpp"
#include "operators/move_engine.hpp"
#include "util/timer.hpp"

namespace tsmo {

namespace {

struct Individual {
  Solution solution;
  int rank = 0;
  double crowding = 0.0;
};

/// Binary tournament on (rank asc, crowding desc).
const Individual& tournament(const std::vector<Individual>& pop, Rng& rng) {
  const Individual& a = pop[rng.below(pop.size())];
  const Individual& b = pop[rng.below(pop.size())];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding >= b.crowding ? a : b;
}

/// Assigns ranks and per-front crowding distances in place.
void assign_fitness(std::vector<Individual>& pop) {
  std::vector<Objectives> objs;
  objs.reserve(pop.size());
  for (const Individual& ind : pop) {
    objs.push_back(ind.solution.objectives());
  }
  const std::vector<int> ranks = nondominated_sort(objs);
  int max_rank = 0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    pop[i].rank = ranks[i];
    max_rank = std::max(max_rank, ranks[i]);
  }
  for (int level = 0; level <= max_rank; ++level) {
    std::vector<std::size_t> members;
    std::vector<Objectives> front;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      if (pop[i].rank == level) {
        members.push_back(i);
        front.push_back(objs[i]);
      }
    }
    const std::vector<double> crowd = crowding_distances(front);
    for (std::size_t k = 0; k < members.size(); ++k) {
      pop[members[k]].crowding = crowd[k];
    }
  }
}

}  // namespace

RunResult Nsga2::run() const {
  Timer timer;
  Rng rng(params_.seed);
  MoveEngine engine(*inst_);
  const int n = std::max(4, params_.population_size);
  std::int64_t evaluations = 0;

  // --- Initial population: randomized I1 constructions. ---
  std::vector<Individual> pop;
  pop.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n && evaluations < params_.max_evaluations; ++i) {
    pop.push_back(Individual{construct_i1_random(*inst_, rng)});
    ++evaluations;
  }
  assign_fitness(pop);

  std::int64_t generations = 0;
  while (evaluations < params_.max_evaluations) {
    // --- Variation: one offspring per parent slot. ---
    std::vector<Individual> offspring;
    offspring.reserve(pop.size());
    while (offspring.size() < pop.size() &&
           evaluations < params_.max_evaluations) {
      const Individual& p1 = tournament(pop, rng);
      Solution child =
          rng.chance(params_.crossover_rate)
              ? best_cost_route_crossover(*inst_, p1.solution,
                                          tournament(pop, rng).solution,
                                          rng)
              : p1.solution;
      if (rng.chance(params_.mutation_rate)) {
        const int moves = static_cast<int>(rng.uniform_int(1, 3));
        for (int m = 0; m < moves; ++m) {
          const auto type = static_cast<MoveType>(
              rng.below(static_cast<std::uint64_t>(kNumMoveTypes)));
          const auto move = engine.propose(type, child, rng, 12,
                                           params_.feasibility_screen);
          if (move) engine.apply(child, *move);
        }
      }
      ++evaluations;
      offspring.push_back(Individual{std::move(child)});
    }

    // --- (mu + lambda) elitist survival. ---
    for (Individual& ind : offspring) pop.push_back(std::move(ind));
    assign_fitness(pop);
    std::stable_sort(pop.begin(), pop.end(),
                     [](const Individual& a, const Individual& b) {
                       if (a.rank != b.rank) return a.rank < b.rank;
                       return a.crowding > b.crowding;
                     });
    pop.erase(pop.begin() + n, pop.end());
    ++generations;
  }

  // --- Report the final rank-0 front (deduplicated objectives). ---
  assign_fitness(pop);
  RunResult result;
  result.algorithm = "nsga2";
  for (const Individual& ind : pop) {
    if (ind.rank != 0) continue;
    const Objectives& o = ind.solution.objectives();
    bool duplicate = false;
    for (const Objectives& seen : result.front) {
      if (seen == o) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    result.front.push_back(o);
    result.solutions.push_back(ind.solution);
  }
  result.evaluations = evaluations;
  result.iterations = generations;
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace tsmo
