#include "evolutionary/crossover.hpp"

#include <algorithm>

namespace tsmo {

Solution best_cost_route_crossover(const Instance& inst, const Solution& a,
                                   const Solution& b, Rng& rng) {
  (void)inst;  // parents carry their instance; kept for API symmetry
  // Pick a random non-empty route of b.
  std::vector<int> donors;
  for (int r = 0; r < b.num_routes(); ++r) {
    if (!b.route(r).empty()) donors.push_back(r);
  }
  Solution child = a;
  if (donors.empty()) return child;
  const auto& removed = b.route(donors[rng.below(donors.size())]);

  remove_customers(child, removed);
  // Reinsertion order is randomized — BCRC's main diversification lever.
  std::vector<int> order(removed.begin(), removed.end());
  for (std::size_t k = order.size(); k > 1; --k) {
    std::swap(order[k - 1], order[rng.below(k)]);
  }
  for (int c : order) best_cost_insert(child, c, rng);
  return child;
}

}  // namespace tsmo
