#pragma once

// Solution-repair utilities shared by the recombination operator (BCRC)
// and the adaptive-memory constructor: removing customers and re-inserting
// them at their cheapest position.

#include <span>

#include "util/rng.hpp"
#include "vrptw/solution.hpp"

namespace tsmo {

/// Removes the given customers from `s` (missing ones are ignored).
void remove_customers(Solution& s, std::span<const int> customers);

/// Inserts `c` at its cheapest position: first choice among positions
/// keeping all touched schedules tardiness-free; otherwise the cheapest
/// capacity-feasible position; otherwise appended to the least-loaded
/// route (capacity violation is measured, and selection weeds it out).
/// Returns the route index used.
int best_cost_insert(Solution& s, int c, Rng& rng);

}  // namespace tsmo
