#include "construct/insertion_utils.hpp"

#include <algorithm>
#include <limits>

#include "vrptw/schedule.hpp"

namespace tsmo {

void remove_customers(Solution& s, std::span<const int> customers) {
  for (int c : customers) {
    const int r = s.route_of(c);
    if (r < 0) continue;
    auto& route = s.mutable_route(r);
    route.erase(std::find(route.begin(), route.end(), c));
    s.evaluate();  // keeps route_of/position_of indexes fresh
  }
}

int best_cost_insert(Solution& s, int c, Rng& rng) {
  const Instance& inst = s.instance();
  const double demand = inst.site(c).demand;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Best {
    double delta = kInf;
    int route = -1;
    int pos = 0;
  };
  Best keeps_schedule, capacity_only;

  for (int r = 0; r < s.num_routes(); ++r) {
    const auto& route = s.route(r);
    if (s.route_stats(r).load + demand > inst.capacity()) continue;
    // `s` is evaluated here, so the cached-arc overload applies.
    const RouteSchedule sched = RouteSchedule::compute(s, r);
    for (int pos = 0; pos <= static_cast<int>(route.size()); ++pos) {
      const int pred =
          pos > 0 ? route[static_cast<std::size_t>(pos - 1)] : 0;
      const int succ = pos < static_cast<int>(route.size())
                           ? route[static_cast<std::size_t>(pos)]
                           : 0;
      const double delta = inst.distance(pred, c) + inst.distance(c, succ) -
                           inst.distance(pred, succ);
      // Tiny jitter diversifies ties across repeated insertions.
      const double keyed = delta * rng.uniform(1.0, 1.0001);
      if (keyed < capacity_only.delta) {
        capacity_only = Best{keyed, r, pos};
      }
      if (keyed < keeps_schedule.delta &&
          insertion_keeps_schedule(inst, route, sched, c,
                                   static_cast<std::size_t>(pos))) {
        keeps_schedule = Best{keyed, r, pos};
      }
    }
  }

  const Best& pick =
      keeps_schedule.route >= 0 ? keeps_schedule : capacity_only;
  int target = pick.route;
  int pos = pick.pos;
  if (target < 0) {
    double lightest = kInf;
    target = 0;
    for (int r = 0; r < s.num_routes(); ++r) {
      if (s.route_stats(r).load < lightest) {
        lightest = s.route_stats(r).load;
        target = r;
      }
    }
    pos = static_cast<int>(s.route(target).size());
  }
  auto& route = s.mutable_route(target);
  route.insert(route.begin() + pos, c);
  s.evaluate();
  return target;
}

}  // namespace tsmo
