#pragma once

// Solomon's I1 sequential insertion heuristic (Solomon 1987, §III.B of the
// paper): routes are built one at a time.  A route is seeded with either
// the unrouted customer farthest from the depot or the one with the
// earliest due date ("this parameter was controlled randomly"); customers
// are then inserted at the position minimizing a weighted detour-plus-delay
// cost c1, choosing the customer maximizing the savings c2 = lambda * d_0u
// - c1(u).  When no feasible insertion exists the next route is opened.
//
// Insertions keep the route time-window- and capacity-feasible (hard check
// during construction), so on instances admitting a feasible solution the
// initial solution normally has zero tardiness.  If the fleet runs out,
// remaining customers are placed at their cheapest capacity-feasible
// position, accepting tardiness (the search operates on soft windows).

#include "util/rng.hpp"
#include "vrptw/instance.hpp"
#include "vrptw/solution.hpp"

namespace tsmo {

struct I1Params {
  double lambda = 2.0;  ///< weight of the depot-distance savings term
  double mu = 1.0;      ///< weight of the removed direct edge in the detour
  double alpha1 = 0.5;  ///< detour weight; alpha2 = 1 - alpha1 (delay weight)
  bool seed_farthest = true;  ///< seed rule: farthest vs earliest due date
};

/// Draws the randomized parameter set used by the paper's initialization:
/// seed rule is a fair coin, lambda in [1,2], mu in [0.5,1.5],
/// alpha1 in [0,1].
I1Params random_i1_params(Rng& rng);

/// Deterministic I1 construction for a fixed parameter set.
Solution construct_i1(const Instance& inst, const I1Params& params);

/// Convenience: random parameters, then construct.
Solution construct_i1_random(const Instance& inst, Rng& rng);

/// Baseline constructor: randomized nearest-neighbour, respecting capacity
/// and opening a new route when the nearest feasible customer would be
/// reached after its due date.  Used in tests and as a comparison seed.
Solution construct_nearest_neighbor(const Instance& inst, Rng& rng);

}  // namespace tsmo
