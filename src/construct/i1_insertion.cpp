#include "construct/i1_insertion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/profiler.hpp"
#include "vrptw/evaluation.hpp"
#include "vrptw/schedule.hpp"

namespace tsmo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Best feasible insertion of `u` into `route` under the I1 c1 criterion.
/// Returns the c1 value and writes the position; kInf when infeasible.
/// Feasibility per position is O(1) via the route's forward time slack;
/// I1 keeps routes tardiness-free, so "adds no new lateness" is exactly
/// the classic hard-window insertion check.
double best_insertion(const Instance& inst, const I1Params& p,
                      const std::vector<int>& route,
                      const RouteSchedule& sched, double load, int u,
                      int* best_pos) {
  const Site& su = inst.site(u);
  if (load + su.demand > inst.capacity()) return kInf;
  double best = kInf;
  const int n = static_cast<int>(route.size());
  for (int pos = 0; pos <= n; ++pos) {
    if (!insertion_keeps_schedule(inst, route, sched, u,
                                  static_cast<std::size_t>(pos))) {
      continue;
    }
    const int i = pos > 0 ? route[static_cast<std::size_t>(pos - 1)] : 0;
    const int j = pos < n ? route[static_cast<std::size_t>(pos)] : 0;
    const double detour = inst.distance(i, u) + inst.distance(u, j) -
                          p.mu * inst.distance(i, j);
    // Delay of the successor's begin-of-service caused by the insertion
    // (Solomon's c12); zero when u is appended at the end.
    double delay = 0.0;
    if (pos < n) {
      const double depart_pred =
          pos > 0 ? sched.departure[static_cast<std::size_t>(pos - 1)]
                  : 0.0;
      const double begin_u =
          std::max(depart_pred + inst.distance(i, u), su.ready);
      const double new_begin_succ =
          std::max(begin_u + su.service + inst.distance(u, j),
                   inst.site(j).ready);
      delay = new_begin_succ - sched.begin[static_cast<std::size_t>(pos)];
    }
    const double c1 = p.alpha1 * detour + (1.0 - p.alpha1) * delay;
    if (c1 < best) {
      best = c1;
      *best_pos = pos;
    }
  }
  return best;
}

/// Fallback when the fleet is exhausted: cheapest capacity-feasible detour
/// over all routes, ignoring time windows (search handles soft windows).
void force_insert(const Instance& inst, std::vector<std::vector<int>>& routes,
                  std::vector<double>& loads, int u) {
  double best = kInf;
  std::size_t best_r = 0;
  int best_pos = 0;
  for (std::size_t r = 0; r < routes.size(); ++r) {
    if (loads[r] + inst.site(u).demand > inst.capacity()) continue;
    const auto& route = routes[r];
    for (int pos = 0; pos <= static_cast<int>(route.size()); ++pos) {
      const int i = pos > 0 ? route[static_cast<std::size_t>(pos - 1)] : 0;
      const int j = pos < static_cast<int>(route.size())
                        ? route[static_cast<std::size_t>(pos)]
                        : 0;
      const double detour =
          inst.distance(i, u) + inst.distance(u, j) - inst.distance(i, j);
      if (detour < best) {
        best = detour;
        best_r = r;
        best_pos = pos;
      }
    }
  }
  // Instance::validate guarantees total demand fits the fleet, but
  // fragmentation can still strand a customer; overload the emptiest
  // route rather than lose the customer (capacity violation is measured).
  if (best == kInf) {
    best_r = static_cast<std::size_t>(
        std::min_element(loads.begin(), loads.end()) - loads.begin());
    best_pos = static_cast<int>(routes[best_r].size());
  }
  routes[best_r].insert(routes[best_r].begin() + best_pos, u);
  loads[best_r] += inst.site(u).demand;
}

}  // namespace

I1Params random_i1_params(Rng& rng) {
  I1Params p;
  p.seed_farthest = rng.chance(0.5);
  p.lambda = rng.uniform(1.0, 2.0);
  p.mu = rng.uniform(0.5, 1.5);
  p.alpha1 = rng.uniform(0.0, 1.0);
  return p;
}

Solution construct_i1(const Instance& inst, const I1Params& params) {
  const int n = inst.num_customers();
  std::vector<bool> routed(static_cast<std::size_t>(n) + 1, false);
  int unrouted = n;

  std::vector<std::vector<int>> routes;
  std::vector<double> loads;

  while (unrouted > 0 &&
         static_cast<int>(routes.size()) < inst.max_vehicles()) {
    // --- Seed the new route. ---
    int seed = -1;
    double best_key = -kInf;
    for (int u = 1; u <= n; ++u) {
      if (routed[static_cast<std::size_t>(u)]) continue;
      const double key = params.seed_farthest ? inst.distance(0, u)
                                              : -inst.site(u).due;
      if (key > best_key) {
        best_key = key;
        seed = u;
      }
    }
    std::vector<int> route{seed};
    double load = inst.site(seed).demand;
    routed[static_cast<std::size_t>(seed)] = true;
    --unrouted;

    // --- Grow the route until no feasible insertion remains. ---
    while (unrouted > 0) {
      const RouteSchedule sched = RouteSchedule::compute(inst, route);
      int chosen = -1, chosen_pos = 0;
      double best_c2 = -kInf;
      for (int u = 1; u <= n; ++u) {
        if (routed[static_cast<std::size_t>(u)]) continue;
        int pos = 0;
        const double c1 =
            best_insertion(inst, params, route, sched, load, u, &pos);
        if (c1 == kInf) continue;
        const double c2 = params.lambda * inst.distance(0, u) - c1;
        if (c2 > best_c2) {
          best_c2 = c2;
          chosen = u;
          chosen_pos = pos;
        }
      }
      if (chosen < 0) break;
      route.insert(route.begin() + chosen_pos, chosen);
      load += inst.site(chosen).demand;
      routed[static_cast<std::size_t>(chosen)] = true;
      --unrouted;
    }
    routes.push_back(std::move(route));
    loads.push_back(load);
  }

  // Fleet exhausted with customers left: force them in (soft windows).
  for (int u = 1; u <= n && unrouted > 0; ++u) {
    if (routed[static_cast<std::size_t>(u)]) continue;
    force_insert(inst, routes, loads, u);
    routed[static_cast<std::size_t>(u)] = true;
    --unrouted;
  }
  return Solution::from_routes(inst, std::move(routes));
}

Solution construct_i1_random(const Instance& inst, Rng& rng) {
  TSMO_PROFILE_FRAME("construct.i1");
  return construct_i1(inst, random_i1_params(rng));
}

Solution construct_nearest_neighbor(const Instance& inst, Rng& rng) {
  const int n = inst.num_customers();
  std::vector<bool> routed(static_cast<std::size_t>(n) + 1, false);
  int unrouted = n;
  std::vector<std::vector<int>> routes;
  std::vector<double> loads;

  std::vector<int> route;
  double load = 0.0, time = 0.0;
  int prev = 0;
  auto close_route = [&] {
    if (!route.empty()) {
      routes.push_back(route);
      loads.push_back(load);
    }
    route.clear();
    load = 0.0;
    time = 0.0;
    prev = 0;
  };

  while (unrouted > 0) {
    // Nearest unrouted customer reachable feasibly; small random
    // perturbation of the distance diversifies repeated constructions.
    int best = -1;
    double best_d = kInf;
    for (int u = 1; u <= n; ++u) {
      if (routed[static_cast<std::size_t>(u)]) continue;
      const Site& s = inst.site(u);
      if (load + s.demand > inst.capacity()) continue;
      const double arrival = time + inst.distance(prev, u);
      if (arrival > s.due) continue;
      const double back = std::max(arrival, s.ready) + s.service +
                          inst.distance(u, 0);
      if (back > inst.depot().due) continue;
      const double d = inst.distance(prev, u) * rng.uniform(1.0, 1.1);
      if (d < best_d) {
        best_d = d;
        best = u;
      }
    }
    if (best < 0) {
      if (route.empty()) {
        // Not even from the depot: pick any unrouted customer and accept
        // the (soft) violation so construction always terminates.
        for (int u = 1; u <= n; ++u) {
          if (!routed[static_cast<std::size_t>(u)]) {
            best = u;
            break;
          }
        }
      } else {
        if (static_cast<int>(routes.size()) + 1 >= inst.max_vehicles()) {
          // Last slot: stop opening routes, force the rest.
          close_route();
          break;
        }
        close_route();
        continue;
      }
    }
    const Site& s = inst.site(best);
    const double arrival = time + inst.distance(prev, best);
    time = std::max(arrival, s.ready) + s.service;
    route.push_back(best);
    load += s.demand;
    prev = best;
    routed[static_cast<std::size_t>(best)] = true;
    --unrouted;
  }
  close_route();

  for (int u = 1; u <= n && unrouted > 0; ++u) {
    if (routed[static_cast<std::size_t>(u)]) continue;
    if (routes.empty()) {
      routes.push_back({});
      loads.push_back(0.0);
    }
    force_insert(inst, routes, loads, u);
    routed[static_cast<std::size_t>(u)] = true;
    --unrouted;
  }
  return Solution::from_routes(inst, std::move(routes));
}

}  // namespace tsmo
