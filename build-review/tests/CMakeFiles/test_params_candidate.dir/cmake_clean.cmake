file(REMOVE_RECURSE
  "CMakeFiles/test_params_candidate.dir/test_params_candidate.cpp.o"
  "CMakeFiles/test_params_candidate.dir/test_params_candidate.cpp.o.d"
  "test_params_candidate"
  "test_params_candidate.pdb"
  "test_params_candidate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_params_candidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
