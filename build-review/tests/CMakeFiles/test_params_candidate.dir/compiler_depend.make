# Empty compiler generated dependencies file for test_params_candidate.
# This may be replaced when dependencies are built.
