file(REMOVE_RECURSE
  "CMakeFiles/test_dominance.dir/test_dominance.cpp.o"
  "CMakeFiles/test_dominance.dir/test_dominance.cpp.o.d"
  "test_dominance"
  "test_dominance.pdb"
  "test_dominance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
