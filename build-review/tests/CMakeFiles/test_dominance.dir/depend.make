# Empty dependencies file for test_dominance.
# This may be replaced when dependencies are built.
