# Empty compiler generated dependencies file for test_worker_team.
# This may be replaced when dependencies are built.
