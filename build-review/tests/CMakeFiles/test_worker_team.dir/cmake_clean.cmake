file(REMOVE_RECURSE
  "CMakeFiles/test_worker_team.dir/test_worker_team.cpp.o"
  "CMakeFiles/test_worker_team.dir/test_worker_team.cpp.o.d"
  "test_worker_team"
  "test_worker_team.pdb"
  "test_worker_team[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worker_team.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
