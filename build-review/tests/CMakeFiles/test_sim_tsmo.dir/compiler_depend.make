# Empty compiler generated dependencies file for test_sim_tsmo.
# This may be replaced when dependencies are built.
