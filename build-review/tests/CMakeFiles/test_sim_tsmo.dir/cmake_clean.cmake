file(REMOVE_RECURSE
  "CMakeFiles/test_sim_tsmo.dir/test_sim_tsmo.cpp.o"
  "CMakeFiles/test_sim_tsmo.dir/test_sim_tsmo.cpp.o.d"
  "test_sim_tsmo"
  "test_sim_tsmo.pdb"
  "test_sim_tsmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_tsmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
