# Empty dependencies file for test_stats_nonparametric.
# This may be replaced when dependencies are built.
