file(REMOVE_RECURSE
  "CMakeFiles/test_stats_nonparametric.dir/test_stats_nonparametric.cpp.o"
  "CMakeFiles/test_stats_nonparametric.dir/test_stats_nonparametric.cpp.o.d"
  "test_stats_nonparametric"
  "test_stats_nonparametric.pdb"
  "test_stats_nonparametric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_nonparametric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
