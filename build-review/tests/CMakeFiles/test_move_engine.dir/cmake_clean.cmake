file(REMOVE_RECURSE
  "CMakeFiles/test_move_engine.dir/test_move_engine.cpp.o"
  "CMakeFiles/test_move_engine.dir/test_move_engine.cpp.o.d"
  "test_move_engine"
  "test_move_engine.pdb"
  "test_move_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_move_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
