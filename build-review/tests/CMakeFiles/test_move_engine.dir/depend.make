# Empty dependencies file for test_move_engine.
# This may be replaced when dependencies are built.
