file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_tsmo.dir/test_parallel_tsmo.cpp.o"
  "CMakeFiles/test_parallel_tsmo.dir/test_parallel_tsmo.cpp.o.d"
  "test_parallel_tsmo"
  "test_parallel_tsmo.pdb"
  "test_parallel_tsmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_tsmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
