# Empty dependencies file for test_parallel_tsmo.
# This may be replaced when dependencies are built.
