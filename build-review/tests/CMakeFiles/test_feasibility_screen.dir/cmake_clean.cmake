file(REMOVE_RECURSE
  "CMakeFiles/test_feasibility_screen.dir/test_feasibility_screen.cpp.o"
  "CMakeFiles/test_feasibility_screen.dir/test_feasibility_screen.cpp.o.d"
  "test_feasibility_screen"
  "test_feasibility_screen.pdb"
  "test_feasibility_screen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feasibility_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
