# Empty dependencies file for test_feasibility_screen.
# This may be replaced when dependencies are built.
