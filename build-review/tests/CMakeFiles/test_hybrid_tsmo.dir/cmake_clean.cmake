file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_tsmo.dir/test_hybrid_tsmo.cpp.o"
  "CMakeFiles/test_hybrid_tsmo.dir/test_hybrid_tsmo.cpp.o.d"
  "test_hybrid_tsmo"
  "test_hybrid_tsmo.pdb"
  "test_hybrid_tsmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_tsmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
