# Empty dependencies file for test_hybrid_tsmo.
# This may be replaced when dependencies are built.
