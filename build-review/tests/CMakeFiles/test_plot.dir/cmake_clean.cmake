file(REMOVE_RECURSE
  "CMakeFiles/test_plot.dir/test_plot.cpp.o"
  "CMakeFiles/test_plot.dir/test_plot.cpp.o.d"
  "test_plot"
  "test_plot.pdb"
  "test_plot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
