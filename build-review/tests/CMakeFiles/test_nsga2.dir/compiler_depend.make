# Empty compiler generated dependencies file for test_nsga2.
# This may be replaced when dependencies are built.
