file(REMOVE_RECURSE
  "CMakeFiles/test_nsga2.dir/test_nsga2.cpp.o"
  "CMakeFiles/test_nsga2.dir/test_nsga2.cpp.o.d"
  "test_nsga2"
  "test_nsga2.pdb"
  "test_nsga2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsga2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
