file(REMOVE_RECURSE
  "CMakeFiles/test_paper_scale.dir/test_paper_scale.cpp.o"
  "CMakeFiles/test_paper_scale.dir/test_paper_scale.cpp.o.d"
  "test_paper_scale"
  "test_paper_scale.pdb"
  "test_paper_scale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
