# Empty dependencies file for test_cross_implementation.
# This may be replaced when dependencies are built.
