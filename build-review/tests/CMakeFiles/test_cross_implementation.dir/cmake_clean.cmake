file(REMOVE_RECURSE
  "CMakeFiles/test_cross_implementation.dir/test_cross_implementation.cpp.o"
  "CMakeFiles/test_cross_implementation.dir/test_cross_implementation.cpp.o.d"
  "test_cross_implementation"
  "test_cross_implementation.pdb"
  "test_cross_implementation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_implementation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
