file(REMOVE_RECURSE
  "CMakeFiles/test_solomon_io.dir/test_solomon_io.cpp.o"
  "CMakeFiles/test_solomon_io.dir/test_solomon_io.cpp.o.d"
  "test_solomon_io"
  "test_solomon_io.pdb"
  "test_solomon_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solomon_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
