# Empty dependencies file for test_solomon_io.
# This may be replaced when dependencies are built.
