file(REMOVE_RECURSE
  "CMakeFiles/test_channel_stress.dir/test_channel_stress.cpp.o"
  "CMakeFiles/test_channel_stress.dir/test_channel_stress.cpp.o.d"
  "test_channel_stress"
  "test_channel_stress.pdb"
  "test_channel_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
