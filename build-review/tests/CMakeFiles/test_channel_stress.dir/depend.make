# Empty dependencies file for test_channel_stress.
# This may be replaced when dependencies are built.
