file(REMOVE_RECURSE
  "CMakeFiles/test_golden_seed.dir/test_golden_seed.cpp.o"
  "CMakeFiles/test_golden_seed.dir/test_golden_seed.cpp.o.d"
  "test_golden_seed"
  "test_golden_seed.pdb"
  "test_golden_seed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
