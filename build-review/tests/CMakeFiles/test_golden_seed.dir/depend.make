# Empty dependencies file for test_golden_seed.
# This may be replaced when dependencies are built.
