# Empty compiler generated dependencies file for test_pls.
# This may be replaced when dependencies are built.
