file(REMOVE_RECURSE
  "CMakeFiles/test_pls.dir/test_pls.cpp.o"
  "CMakeFiles/test_pls.dir/test_pls.cpp.o.d"
  "test_pls"
  "test_pls.pdb"
  "test_pls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
