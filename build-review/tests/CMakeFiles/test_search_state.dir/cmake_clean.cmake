file(REMOVE_RECURSE
  "CMakeFiles/test_search_state.dir/test_search_state.cpp.o"
  "CMakeFiles/test_search_state.dir/test_search_state.cpp.o.d"
  "test_search_state"
  "test_search_state.pdb"
  "test_search_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
