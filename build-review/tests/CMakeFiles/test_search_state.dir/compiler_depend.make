# Empty compiler generated dependencies file for test_search_state.
# This may be replaced when dependencies are built.
