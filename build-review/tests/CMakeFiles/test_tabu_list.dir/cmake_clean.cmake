file(REMOVE_RECURSE
  "CMakeFiles/test_tabu_list.dir/test_tabu_list.cpp.o"
  "CMakeFiles/test_tabu_list.dir/test_tabu_list.cpp.o.d"
  "test_tabu_list"
  "test_tabu_list.pdb"
  "test_tabu_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tabu_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
