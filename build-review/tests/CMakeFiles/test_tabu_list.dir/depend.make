# Empty dependencies file for test_tabu_list.
# This may be replaced when dependencies are built.
