file(REMOVE_RECURSE
  "CMakeFiles/test_nondom_memory.dir/test_nondom_memory.cpp.o"
  "CMakeFiles/test_nondom_memory.dir/test_nondom_memory.cpp.o.d"
  "test_nondom_memory"
  "test_nondom_memory.pdb"
  "test_nondom_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nondom_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
