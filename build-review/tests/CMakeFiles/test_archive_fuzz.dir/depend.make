# Empty dependencies file for test_archive_fuzz.
# This may be replaced when dependencies are built.
