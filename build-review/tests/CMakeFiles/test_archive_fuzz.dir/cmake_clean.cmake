file(REMOVE_RECURSE
  "CMakeFiles/test_archive_fuzz.dir/test_archive_fuzz.cpp.o"
  "CMakeFiles/test_archive_fuzz.dir/test_archive_fuzz.cpp.o.d"
  "test_archive_fuzz"
  "test_archive_fuzz.pdb"
  "test_archive_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_archive_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
