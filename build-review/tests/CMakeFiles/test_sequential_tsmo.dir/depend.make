# Empty dependencies file for test_sequential_tsmo.
# This may be replaced when dependencies are built.
