file(REMOVE_RECURSE
  "CMakeFiles/test_sequential_tsmo.dir/test_sequential_tsmo.cpp.o"
  "CMakeFiles/test_sequential_tsmo.dir/test_sequential_tsmo.cpp.o.d"
  "test_sequential_tsmo"
  "test_sequential_tsmo.pdb"
  "test_sequential_tsmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential_tsmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
