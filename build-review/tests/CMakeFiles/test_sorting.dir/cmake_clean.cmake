file(REMOVE_RECURSE
  "CMakeFiles/test_sorting.dir/test_sorting.cpp.o"
  "CMakeFiles/test_sorting.dir/test_sorting.cpp.o.d"
  "test_sorting"
  "test_sorting.pdb"
  "test_sorting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
