# Empty dependencies file for test_sorting.
# This may be replaced when dependencies are built.
