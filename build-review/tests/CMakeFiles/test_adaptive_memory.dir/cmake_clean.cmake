file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_memory.dir/test_adaptive_memory.cpp.o"
  "CMakeFiles/test_adaptive_memory.dir/test_adaptive_memory.cpp.o.d"
  "test_adaptive_memory"
  "test_adaptive_memory.pdb"
  "test_adaptive_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
