# Empty dependencies file for test_adaptive_memory.
# This may be replaced when dependencies are built.
