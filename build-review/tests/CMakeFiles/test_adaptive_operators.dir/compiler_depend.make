# Empty compiler generated dependencies file for test_adaptive_operators.
# This may be replaced when dependencies are built.
