file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_operators.dir/test_adaptive_operators.cpp.o"
  "CMakeFiles/test_adaptive_operators.dir/test_adaptive_operators.cpp.o.d"
  "test_adaptive_operators"
  "test_adaptive_operators.pdb"
  "test_adaptive_operators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
