# Empty compiler generated dependencies file for test_weighted_ts.
# This may be replaced when dependencies are built.
