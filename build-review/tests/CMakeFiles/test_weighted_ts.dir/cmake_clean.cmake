file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_ts.dir/test_weighted_ts.cpp.o"
  "CMakeFiles/test_weighted_ts.dir/test_weighted_ts.cpp.o.d"
  "test_weighted_ts"
  "test_weighted_ts.pdb"
  "test_weighted_ts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
