file(REMOVE_RECURSE
  "CMakeFiles/test_optimizer_contract.dir/test_optimizer_contract.cpp.o"
  "CMakeFiles/test_optimizer_contract.dir/test_optimizer_contract.cpp.o.d"
  "test_optimizer_contract"
  "test_optimizer_contract.pdb"
  "test_optimizer_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizer_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
