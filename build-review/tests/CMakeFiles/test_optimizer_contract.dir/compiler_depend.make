# Empty compiler generated dependencies file for test_optimizer_contract.
# This may be replaced when dependencies are built.
