file(REMOVE_RECURSE
  "CMakeFiles/test_operator_weights.dir/test_operator_weights.cpp.o"
  "CMakeFiles/test_operator_weights.dir/test_operator_weights.cpp.o.d"
  "test_operator_weights"
  "test_operator_weights.pdb"
  "test_operator_weights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operator_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
