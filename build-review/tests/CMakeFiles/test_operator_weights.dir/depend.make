# Empty dependencies file for test_operator_weights.
# This may be replaced when dependencies are built.
