file(REMOVE_RECURSE
  "CMakeFiles/test_run_result.dir/test_run_result.cpp.o"
  "CMakeFiles/test_run_result.dir/test_run_result.cpp.o.d"
  "test_run_result"
  "test_run_result.pdb"
  "test_run_result[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
