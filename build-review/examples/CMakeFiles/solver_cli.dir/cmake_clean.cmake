file(REMOVE_RECURSE
  "CMakeFiles/solver_cli.dir/solver_cli.cpp.o"
  "CMakeFiles/solver_cli.dir/solver_cli.cpp.o.d"
  "solver_cli"
  "solver_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
