# Empty dependencies file for solver_cli.
# This may be replaced when dependencies are built.
