file(REMOVE_RECURSE
  "CMakeFiles/instance_tool.dir/instance_tool.cpp.o"
  "CMakeFiles/instance_tool.dir/instance_tool.cpp.o.d"
  "instance_tool"
  "instance_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
