# Empty dependencies file for instance_tool.
# This may be replaced when dependencies are built.
