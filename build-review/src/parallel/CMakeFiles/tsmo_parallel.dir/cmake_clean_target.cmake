file(REMOVE_RECURSE
  "libtsmo_parallel.a"
)
