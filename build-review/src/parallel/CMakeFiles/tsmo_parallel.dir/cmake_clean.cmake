file(REMOVE_RECURSE
  "CMakeFiles/tsmo_parallel.dir/async_tsmo.cpp.o"
  "CMakeFiles/tsmo_parallel.dir/async_tsmo.cpp.o.d"
  "CMakeFiles/tsmo_parallel.dir/hybrid_tsmo.cpp.o"
  "CMakeFiles/tsmo_parallel.dir/hybrid_tsmo.cpp.o.d"
  "CMakeFiles/tsmo_parallel.dir/multisearch_tsmo.cpp.o"
  "CMakeFiles/tsmo_parallel.dir/multisearch_tsmo.cpp.o.d"
  "CMakeFiles/tsmo_parallel.dir/sync_tsmo.cpp.o"
  "CMakeFiles/tsmo_parallel.dir/sync_tsmo.cpp.o.d"
  "CMakeFiles/tsmo_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/tsmo_parallel.dir/thread_pool.cpp.o.d"
  "CMakeFiles/tsmo_parallel.dir/worker_team.cpp.o"
  "CMakeFiles/tsmo_parallel.dir/worker_team.cpp.o.d"
  "libtsmo_parallel.a"
  "libtsmo_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
