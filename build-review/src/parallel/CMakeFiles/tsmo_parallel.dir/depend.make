# Empty dependencies file for tsmo_parallel.
# This may be replaced when dependencies are built.
