
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/async_tsmo.cpp" "src/parallel/CMakeFiles/tsmo_parallel.dir/async_tsmo.cpp.o" "gcc" "src/parallel/CMakeFiles/tsmo_parallel.dir/async_tsmo.cpp.o.d"
  "/root/repo/src/parallel/hybrid_tsmo.cpp" "src/parallel/CMakeFiles/tsmo_parallel.dir/hybrid_tsmo.cpp.o" "gcc" "src/parallel/CMakeFiles/tsmo_parallel.dir/hybrid_tsmo.cpp.o.d"
  "/root/repo/src/parallel/multisearch_tsmo.cpp" "src/parallel/CMakeFiles/tsmo_parallel.dir/multisearch_tsmo.cpp.o" "gcc" "src/parallel/CMakeFiles/tsmo_parallel.dir/multisearch_tsmo.cpp.o.d"
  "/root/repo/src/parallel/sync_tsmo.cpp" "src/parallel/CMakeFiles/tsmo_parallel.dir/sync_tsmo.cpp.o" "gcc" "src/parallel/CMakeFiles/tsmo_parallel.dir/sync_tsmo.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/parallel/CMakeFiles/tsmo_parallel.dir/thread_pool.cpp.o" "gcc" "src/parallel/CMakeFiles/tsmo_parallel.dir/thread_pool.cpp.o.d"
  "/root/repo/src/parallel/worker_team.cpp" "src/parallel/CMakeFiles/tsmo_parallel.dir/worker_team.cpp.o" "gcc" "src/parallel/CMakeFiles/tsmo_parallel.dir/worker_team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/tsmo_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/operators/CMakeFiles/tsmo_operators.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vrptw/CMakeFiles/tsmo_vrptw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/construct/CMakeFiles/tsmo_construct.dir/DependInfo.cmake"
  "/root/repo/build-review/src/moo/CMakeFiles/tsmo_moo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
