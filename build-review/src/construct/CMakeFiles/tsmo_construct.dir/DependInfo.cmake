
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/construct/i1_insertion.cpp" "src/construct/CMakeFiles/tsmo_construct.dir/i1_insertion.cpp.o" "gcc" "src/construct/CMakeFiles/tsmo_construct.dir/i1_insertion.cpp.o.d"
  "/root/repo/src/construct/insertion_utils.cpp" "src/construct/CMakeFiles/tsmo_construct.dir/insertion_utils.cpp.o" "gcc" "src/construct/CMakeFiles/tsmo_construct.dir/insertion_utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/vrptw/CMakeFiles/tsmo_vrptw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
