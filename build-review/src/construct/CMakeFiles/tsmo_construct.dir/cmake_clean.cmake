file(REMOVE_RECURSE
  "CMakeFiles/tsmo_construct.dir/i1_insertion.cpp.o"
  "CMakeFiles/tsmo_construct.dir/i1_insertion.cpp.o.d"
  "CMakeFiles/tsmo_construct.dir/insertion_utils.cpp.o"
  "CMakeFiles/tsmo_construct.dir/insertion_utils.cpp.o.d"
  "libtsmo_construct.a"
  "libtsmo_construct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
