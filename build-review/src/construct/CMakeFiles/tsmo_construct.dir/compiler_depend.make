# Empty compiler generated dependencies file for tsmo_construct.
# This may be replaced when dependencies are built.
