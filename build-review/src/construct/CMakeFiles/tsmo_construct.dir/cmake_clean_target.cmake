file(REMOVE_RECURSE
  "libtsmo_construct.a"
)
