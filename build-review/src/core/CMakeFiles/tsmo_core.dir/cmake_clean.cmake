file(REMOVE_RECURSE
  "CMakeFiles/tsmo_core.dir/adaptive_memory.cpp.o"
  "CMakeFiles/tsmo_core.dir/adaptive_memory.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/candidate.cpp.o"
  "CMakeFiles/tsmo_core.dir/candidate.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/mots.cpp.o"
  "CMakeFiles/tsmo_core.dir/mots.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/params.cpp.o"
  "CMakeFiles/tsmo_core.dir/params.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/pls.cpp.o"
  "CMakeFiles/tsmo_core.dir/pls.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/run_result.cpp.o"
  "CMakeFiles/tsmo_core.dir/run_result.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/search_state.cpp.o"
  "CMakeFiles/tsmo_core.dir/search_state.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/sequential_tsmo.cpp.o"
  "CMakeFiles/tsmo_core.dir/sequential_tsmo.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/tabu_list.cpp.o"
  "CMakeFiles/tsmo_core.dir/tabu_list.cpp.o.d"
  "CMakeFiles/tsmo_core.dir/weighted_ts.cpp.o"
  "CMakeFiles/tsmo_core.dir/weighted_ts.cpp.o.d"
  "libtsmo_core.a"
  "libtsmo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
