file(REMOVE_RECURSE
  "libtsmo_core.a"
)
