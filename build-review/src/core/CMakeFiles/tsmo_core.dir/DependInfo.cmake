
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_memory.cpp" "src/core/CMakeFiles/tsmo_core.dir/adaptive_memory.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/adaptive_memory.cpp.o.d"
  "/root/repo/src/core/candidate.cpp" "src/core/CMakeFiles/tsmo_core.dir/candidate.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/candidate.cpp.o.d"
  "/root/repo/src/core/mots.cpp" "src/core/CMakeFiles/tsmo_core.dir/mots.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/mots.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/tsmo_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/params.cpp.o.d"
  "/root/repo/src/core/pls.cpp" "src/core/CMakeFiles/tsmo_core.dir/pls.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/pls.cpp.o.d"
  "/root/repo/src/core/run_result.cpp" "src/core/CMakeFiles/tsmo_core.dir/run_result.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/run_result.cpp.o.d"
  "/root/repo/src/core/search_state.cpp" "src/core/CMakeFiles/tsmo_core.dir/search_state.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/search_state.cpp.o.d"
  "/root/repo/src/core/sequential_tsmo.cpp" "src/core/CMakeFiles/tsmo_core.dir/sequential_tsmo.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/sequential_tsmo.cpp.o.d"
  "/root/repo/src/core/tabu_list.cpp" "src/core/CMakeFiles/tsmo_core.dir/tabu_list.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/tabu_list.cpp.o.d"
  "/root/repo/src/core/weighted_ts.cpp" "src/core/CMakeFiles/tsmo_core.dir/weighted_ts.cpp.o" "gcc" "src/core/CMakeFiles/tsmo_core.dir/weighted_ts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/operators/CMakeFiles/tsmo_operators.dir/DependInfo.cmake"
  "/root/repo/build-review/src/construct/CMakeFiles/tsmo_construct.dir/DependInfo.cmake"
  "/root/repo/build-review/src/moo/CMakeFiles/tsmo_moo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vrptw/CMakeFiles/tsmo_vrptw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
