# Empty dependencies file for tsmo_core.
# This may be replaced when dependencies are built.
