file(REMOVE_RECURSE
  "libtsmo_util.a"
)
