file(REMOVE_RECURSE
  "CMakeFiles/tsmo_util.dir/cli.cpp.o"
  "CMakeFiles/tsmo_util.dir/cli.cpp.o.d"
  "CMakeFiles/tsmo_util.dir/env.cpp.o"
  "CMakeFiles/tsmo_util.dir/env.cpp.o.d"
  "CMakeFiles/tsmo_util.dir/json.cpp.o"
  "CMakeFiles/tsmo_util.dir/json.cpp.o.d"
  "CMakeFiles/tsmo_util.dir/rng.cpp.o"
  "CMakeFiles/tsmo_util.dir/rng.cpp.o.d"
  "CMakeFiles/tsmo_util.dir/stats.cpp.o"
  "CMakeFiles/tsmo_util.dir/stats.cpp.o.d"
  "CMakeFiles/tsmo_util.dir/table.cpp.o"
  "CMakeFiles/tsmo_util.dir/table.cpp.o.d"
  "CMakeFiles/tsmo_util.dir/telemetry.cpp.o"
  "CMakeFiles/tsmo_util.dir/telemetry.cpp.o.d"
  "CMakeFiles/tsmo_util.dir/trace.cpp.o"
  "CMakeFiles/tsmo_util.dir/trace.cpp.o.d"
  "libtsmo_util.a"
  "libtsmo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
