# Empty dependencies file for tsmo_util.
# This may be replaced when dependencies are built.
