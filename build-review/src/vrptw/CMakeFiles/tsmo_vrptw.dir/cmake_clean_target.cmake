file(REMOVE_RECURSE
  "libtsmo_vrptw.a"
)
