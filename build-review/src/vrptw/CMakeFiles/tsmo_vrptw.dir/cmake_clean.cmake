file(REMOVE_RECURSE
  "CMakeFiles/tsmo_vrptw.dir/bounds.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/bounds.cpp.o.d"
  "CMakeFiles/tsmo_vrptw.dir/evaluation.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/evaluation.cpp.o.d"
  "CMakeFiles/tsmo_vrptw.dir/generator.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/generator.cpp.o.d"
  "CMakeFiles/tsmo_vrptw.dir/instance.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/instance.cpp.o.d"
  "CMakeFiles/tsmo_vrptw.dir/objectives.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/objectives.cpp.o.d"
  "CMakeFiles/tsmo_vrptw.dir/schedule.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/schedule.cpp.o.d"
  "CMakeFiles/tsmo_vrptw.dir/solomon_io.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/solomon_io.cpp.o.d"
  "CMakeFiles/tsmo_vrptw.dir/solution.cpp.o"
  "CMakeFiles/tsmo_vrptw.dir/solution.cpp.o.d"
  "libtsmo_vrptw.a"
  "libtsmo_vrptw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_vrptw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
