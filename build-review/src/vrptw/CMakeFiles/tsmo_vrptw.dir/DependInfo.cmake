
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vrptw/bounds.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/bounds.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/bounds.cpp.o.d"
  "/root/repo/src/vrptw/evaluation.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/evaluation.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/evaluation.cpp.o.d"
  "/root/repo/src/vrptw/generator.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/generator.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/generator.cpp.o.d"
  "/root/repo/src/vrptw/instance.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/instance.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/instance.cpp.o.d"
  "/root/repo/src/vrptw/objectives.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/objectives.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/objectives.cpp.o.d"
  "/root/repo/src/vrptw/schedule.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/schedule.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/schedule.cpp.o.d"
  "/root/repo/src/vrptw/solomon_io.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/solomon_io.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/solomon_io.cpp.o.d"
  "/root/repo/src/vrptw/solution.cpp" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/solution.cpp.o" "gcc" "src/vrptw/CMakeFiles/tsmo_vrptw.dir/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
