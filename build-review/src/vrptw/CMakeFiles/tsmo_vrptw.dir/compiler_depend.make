# Empty compiler generated dependencies file for tsmo_vrptw.
# This may be replaced when dependencies are built.
