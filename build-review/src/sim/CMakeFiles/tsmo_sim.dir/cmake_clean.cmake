file(REMOVE_RECURSE
  "CMakeFiles/tsmo_sim.dir/cost_model.cpp.o"
  "CMakeFiles/tsmo_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/tsmo_sim.dir/des.cpp.o"
  "CMakeFiles/tsmo_sim.dir/des.cpp.o.d"
  "CMakeFiles/tsmo_sim.dir/sim_tsmo.cpp.o"
  "CMakeFiles/tsmo_sim.dir/sim_tsmo.cpp.o.d"
  "libtsmo_sim.a"
  "libtsmo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
