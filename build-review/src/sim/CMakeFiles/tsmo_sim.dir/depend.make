# Empty dependencies file for tsmo_sim.
# This may be replaced when dependencies are built.
