file(REMOVE_RECURSE
  "libtsmo_sim.a"
)
