# Empty dependencies file for tsmo_evolutionary.
# This may be replaced when dependencies are built.
