file(REMOVE_RECURSE
  "CMakeFiles/tsmo_evolutionary.dir/crossover.cpp.o"
  "CMakeFiles/tsmo_evolutionary.dir/crossover.cpp.o.d"
  "CMakeFiles/tsmo_evolutionary.dir/nsga2.cpp.o"
  "CMakeFiles/tsmo_evolutionary.dir/nsga2.cpp.o.d"
  "CMakeFiles/tsmo_evolutionary.dir/spea2.cpp.o"
  "CMakeFiles/tsmo_evolutionary.dir/spea2.cpp.o.d"
  "libtsmo_evolutionary.a"
  "libtsmo_evolutionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_evolutionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
