
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evolutionary/crossover.cpp" "src/evolutionary/CMakeFiles/tsmo_evolutionary.dir/crossover.cpp.o" "gcc" "src/evolutionary/CMakeFiles/tsmo_evolutionary.dir/crossover.cpp.o.d"
  "/root/repo/src/evolutionary/nsga2.cpp" "src/evolutionary/CMakeFiles/tsmo_evolutionary.dir/nsga2.cpp.o" "gcc" "src/evolutionary/CMakeFiles/tsmo_evolutionary.dir/nsga2.cpp.o.d"
  "/root/repo/src/evolutionary/spea2.cpp" "src/evolutionary/CMakeFiles/tsmo_evolutionary.dir/spea2.cpp.o" "gcc" "src/evolutionary/CMakeFiles/tsmo_evolutionary.dir/spea2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/tsmo_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/construct/CMakeFiles/tsmo_construct.dir/DependInfo.cmake"
  "/root/repo/build-review/src/operators/CMakeFiles/tsmo_operators.dir/DependInfo.cmake"
  "/root/repo/build-review/src/moo/CMakeFiles/tsmo_moo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vrptw/CMakeFiles/tsmo_vrptw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
