file(REMOVE_RECURSE
  "libtsmo_evolutionary.a"
)
