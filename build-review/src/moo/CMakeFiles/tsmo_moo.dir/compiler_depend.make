# Empty compiler generated dependencies file for tsmo_moo.
# This may be replaced when dependencies are built.
