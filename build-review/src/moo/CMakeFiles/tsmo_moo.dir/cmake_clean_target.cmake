file(REMOVE_RECURSE
  "libtsmo_moo.a"
)
