
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moo/archive.cpp" "src/moo/CMakeFiles/tsmo_moo.dir/archive.cpp.o" "gcc" "src/moo/CMakeFiles/tsmo_moo.dir/archive.cpp.o.d"
  "/root/repo/src/moo/metrics.cpp" "src/moo/CMakeFiles/tsmo_moo.dir/metrics.cpp.o" "gcc" "src/moo/CMakeFiles/tsmo_moo.dir/metrics.cpp.o.d"
  "/root/repo/src/moo/sorting.cpp" "src/moo/CMakeFiles/tsmo_moo.dir/sorting.cpp.o" "gcc" "src/moo/CMakeFiles/tsmo_moo.dir/sorting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/vrptw/CMakeFiles/tsmo_vrptw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
