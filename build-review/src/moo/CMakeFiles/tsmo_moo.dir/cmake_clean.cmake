file(REMOVE_RECURSE
  "CMakeFiles/tsmo_moo.dir/archive.cpp.o"
  "CMakeFiles/tsmo_moo.dir/archive.cpp.o.d"
  "CMakeFiles/tsmo_moo.dir/metrics.cpp.o"
  "CMakeFiles/tsmo_moo.dir/metrics.cpp.o.d"
  "CMakeFiles/tsmo_moo.dir/sorting.cpp.o"
  "CMakeFiles/tsmo_moo.dir/sorting.cpp.o.d"
  "libtsmo_moo.a"
  "libtsmo_moo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_moo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
