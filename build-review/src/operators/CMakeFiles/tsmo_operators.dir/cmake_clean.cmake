file(REMOVE_RECURSE
  "CMakeFiles/tsmo_operators.dir/local_search.cpp.o"
  "CMakeFiles/tsmo_operators.dir/local_search.cpp.o.d"
  "CMakeFiles/tsmo_operators.dir/move.cpp.o"
  "CMakeFiles/tsmo_operators.dir/move.cpp.o.d"
  "CMakeFiles/tsmo_operators.dir/move_engine.cpp.o"
  "CMakeFiles/tsmo_operators.dir/move_engine.cpp.o.d"
  "CMakeFiles/tsmo_operators.dir/neighborhood.cpp.o"
  "CMakeFiles/tsmo_operators.dir/neighborhood.cpp.o.d"
  "libtsmo_operators.a"
  "libtsmo_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
