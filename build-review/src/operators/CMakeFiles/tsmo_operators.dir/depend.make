# Empty dependencies file for tsmo_operators.
# This may be replaced when dependencies are built.
