file(REMOVE_RECURSE
  "libtsmo_operators.a"
)
