
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/operators/local_search.cpp" "src/operators/CMakeFiles/tsmo_operators.dir/local_search.cpp.o" "gcc" "src/operators/CMakeFiles/tsmo_operators.dir/local_search.cpp.o.d"
  "/root/repo/src/operators/move.cpp" "src/operators/CMakeFiles/tsmo_operators.dir/move.cpp.o" "gcc" "src/operators/CMakeFiles/tsmo_operators.dir/move.cpp.o.d"
  "/root/repo/src/operators/move_engine.cpp" "src/operators/CMakeFiles/tsmo_operators.dir/move_engine.cpp.o" "gcc" "src/operators/CMakeFiles/tsmo_operators.dir/move_engine.cpp.o.d"
  "/root/repo/src/operators/neighborhood.cpp" "src/operators/CMakeFiles/tsmo_operators.dir/neighborhood.cpp.o" "gcc" "src/operators/CMakeFiles/tsmo_operators.dir/neighborhood.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/vrptw/CMakeFiles/tsmo_vrptw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
