file(REMOVE_RECURSE
  "CMakeFiles/tsmo_harness.dir/experiment.cpp.o"
  "CMakeFiles/tsmo_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/tsmo_harness.dir/plot.cpp.o"
  "CMakeFiles/tsmo_harness.dir/plot.cpp.o.d"
  "CMakeFiles/tsmo_harness.dir/report.cpp.o"
  "CMakeFiles/tsmo_harness.dir/report.cpp.o.d"
  "libtsmo_harness.a"
  "libtsmo_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsmo_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
