# Empty compiler generated dependencies file for tsmo_harness.
# This may be replaced when dependencies are built.
