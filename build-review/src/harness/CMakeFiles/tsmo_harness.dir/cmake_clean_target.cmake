file(REMOVE_RECURSE
  "libtsmo_harness.a"
)
