file(REMOVE_RECURSE
  "CMakeFiles/micro_telemetry.dir/micro_telemetry.cpp.o"
  "CMakeFiles/micro_telemetry.dir/micro_telemetry.cpp.o.d"
  "micro_telemetry"
  "micro_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
