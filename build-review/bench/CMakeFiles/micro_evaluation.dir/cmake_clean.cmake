file(REMOVE_RECURSE
  "CMakeFiles/micro_evaluation.dir/micro_evaluation.cpp.o"
  "CMakeFiles/micro_evaluation.dir/micro_evaluation.cpp.o.d"
  "micro_evaluation"
  "micro_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
