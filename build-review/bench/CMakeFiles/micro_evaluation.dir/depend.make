# Empty dependencies file for micro_evaluation.
# This may be replaced when dependencies are built.
