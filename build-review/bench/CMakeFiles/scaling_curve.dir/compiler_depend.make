# Empty compiler generated dependencies file for scaling_curve.
# This may be replaced when dependencies are built.
