# Empty dependencies file for scaling_curve.
# This may be replaced when dependencies are built.
