file(REMOVE_RECURSE
  "CMakeFiles/scaling_curve.dir/scaling_curve.cpp.o"
  "CMakeFiles/scaling_curve.dir/scaling_curve.cpp.o.d"
  "scaling_curve"
  "scaling_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
