# Empty compiler generated dependencies file for table1_400_small_tw.
# This may be replaced when dependencies are built.
