file(REMOVE_RECURSE
  "CMakeFiles/table1_400_small_tw.dir/table1_400_small_tw.cpp.o"
  "CMakeFiles/table1_400_small_tw.dir/table1_400_small_tw.cpp.o.d"
  "table1_400_small_tw"
  "table1_400_small_tw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_400_small_tw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
