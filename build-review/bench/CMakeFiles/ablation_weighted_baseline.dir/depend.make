# Empty dependencies file for ablation_weighted_baseline.
# This may be replaced when dependencies are built.
