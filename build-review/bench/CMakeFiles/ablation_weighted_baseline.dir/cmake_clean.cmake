file(REMOVE_RECURSE
  "CMakeFiles/ablation_weighted_baseline.dir/ablation_weighted_baseline.cpp.o"
  "CMakeFiles/ablation_weighted_baseline.dir/ablation_weighted_baseline.cpp.o.d"
  "ablation_weighted_baseline"
  "ablation_weighted_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weighted_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
