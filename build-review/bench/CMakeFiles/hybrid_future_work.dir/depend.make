# Empty dependencies file for hybrid_future_work.
# This may be replaced when dependencies are built.
