file(REMOVE_RECURSE
  "CMakeFiles/hybrid_future_work.dir/hybrid_future_work.cpp.o"
  "CMakeFiles/hybrid_future_work.dir/hybrid_future_work.cpp.o.d"
  "hybrid_future_work"
  "hybrid_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
