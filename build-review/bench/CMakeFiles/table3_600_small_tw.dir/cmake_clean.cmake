file(REMOVE_RECURSE
  "CMakeFiles/table3_600_small_tw.dir/table3_600_small_tw.cpp.o"
  "CMakeFiles/table3_600_small_tw.dir/table3_600_small_tw.cpp.o.d"
  "table3_600_small_tw"
  "table3_600_small_tw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_600_small_tw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
