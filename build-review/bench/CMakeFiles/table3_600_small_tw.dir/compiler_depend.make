# Empty compiler generated dependencies file for table3_600_small_tw.
# This may be replaced when dependencies are built.
