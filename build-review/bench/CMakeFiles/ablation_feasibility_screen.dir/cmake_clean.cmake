file(REMOVE_RECURSE
  "CMakeFiles/ablation_feasibility_screen.dir/ablation_feasibility_screen.cpp.o"
  "CMakeFiles/ablation_feasibility_screen.dir/ablation_feasibility_screen.cpp.o.d"
  "ablation_feasibility_screen"
  "ablation_feasibility_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feasibility_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
