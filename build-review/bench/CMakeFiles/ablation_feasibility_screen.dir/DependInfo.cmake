
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_feasibility_screen.cpp" "bench/CMakeFiles/ablation_feasibility_screen.dir/ablation_feasibility_screen.cpp.o" "gcc" "bench/CMakeFiles/ablation_feasibility_screen.dir/ablation_feasibility_screen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/tsmo_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/tsmo_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/moo/CMakeFiles/tsmo_moo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vrptw/CMakeFiles/tsmo_vrptw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/tsmo_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/tsmo_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/construct/CMakeFiles/tsmo_construct.dir/DependInfo.cmake"
  "/root/repo/build-review/src/operators/CMakeFiles/tsmo_operators.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
