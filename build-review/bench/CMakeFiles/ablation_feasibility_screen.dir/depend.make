# Empty dependencies file for ablation_feasibility_screen.
# This may be replaced when dependencies are built.
