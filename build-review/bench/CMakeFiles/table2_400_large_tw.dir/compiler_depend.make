# Empty compiler generated dependencies file for table2_400_large_tw.
# This may be replaced when dependencies are built.
