file(REMOVE_RECURSE
  "CMakeFiles/table2_400_large_tw.dir/table2_400_large_tw.cpp.o"
  "CMakeFiles/table2_400_large_tw.dir/table2_400_large_tw.cpp.o.d"
  "table2_400_large_tw"
  "table2_400_large_tw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_400_large_tw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
