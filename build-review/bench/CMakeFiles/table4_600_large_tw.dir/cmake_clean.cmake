file(REMOVE_RECURSE
  "CMakeFiles/table4_600_large_tw.dir/table4_600_large_tw.cpp.o"
  "CMakeFiles/table4_600_large_tw.dir/table4_600_large_tw.cpp.o.d"
  "table4_600_large_tw"
  "table4_600_large_tw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_600_large_tw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
