# Empty compiler generated dependencies file for table4_600_large_tw.
# This may be replaced when dependencies are built.
