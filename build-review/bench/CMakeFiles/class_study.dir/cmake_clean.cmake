file(REMOVE_RECURSE
  "CMakeFiles/class_study.dir/class_study.cpp.o"
  "CMakeFiles/class_study.dir/class_study.cpp.o.d"
  "class_study"
  "class_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
