# Empty compiler generated dependencies file for class_study.
# This may be replaced when dependencies are built.
