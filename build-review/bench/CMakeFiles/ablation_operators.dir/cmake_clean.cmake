file(REMOVE_RECURSE
  "CMakeFiles/ablation_operators.dir/ablation_operators.cpp.o"
  "CMakeFiles/ablation_operators.dir/ablation_operators.cpp.o.d"
  "ablation_operators"
  "ablation_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
