# Empty dependencies file for ablation_operators.
# This may be replaced when dependencies are built.
