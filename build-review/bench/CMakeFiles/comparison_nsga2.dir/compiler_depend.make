# Empty compiler generated dependencies file for comparison_nsga2.
# This may be replaced when dependencies are built.
