file(REMOVE_RECURSE
  "CMakeFiles/comparison_nsga2.dir/comparison_nsga2.cpp.o"
  "CMakeFiles/comparison_nsga2.dir/comparison_nsga2.cpp.o.d"
  "comparison_nsga2"
  "comparison_nsga2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_nsga2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
