# Empty dependencies file for ablation_tabu.
# This may be replaced when dependencies are built.
