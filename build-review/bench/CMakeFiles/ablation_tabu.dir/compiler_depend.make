# Empty compiler generated dependencies file for ablation_tabu.
# This may be replaced when dependencies are built.
