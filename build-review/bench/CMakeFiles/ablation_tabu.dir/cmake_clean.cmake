file(REMOVE_RECURSE
  "CMakeFiles/ablation_tabu.dir/ablation_tabu.cpp.o"
  "CMakeFiles/ablation_tabu.dir/ablation_tabu.cpp.o.d"
  "ablation_tabu"
  "ablation_tabu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tabu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
