file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_decision.dir/ablation_async_decision.cpp.o"
  "CMakeFiles/ablation_async_decision.dir/ablation_async_decision.cpp.o.d"
  "ablation_async_decision"
  "ablation_async_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
