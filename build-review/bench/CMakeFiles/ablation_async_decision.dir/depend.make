# Empty dependencies file for ablation_async_decision.
# This may be replaced when dependencies are built.
