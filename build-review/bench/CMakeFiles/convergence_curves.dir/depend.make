# Empty dependencies file for convergence_curves.
# This may be replaced when dependencies are built.
