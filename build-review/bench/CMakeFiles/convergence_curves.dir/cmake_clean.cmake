file(REMOVE_RECURSE
  "CMakeFiles/convergence_curves.dir/convergence_curves.cpp.o"
  "CMakeFiles/convergence_curves.dir/convergence_curves.cpp.o.d"
  "convergence_curves"
  "convergence_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
