file(REMOVE_RECURSE
  "CMakeFiles/ablation_neighborhood.dir/ablation_neighborhood.cpp.o"
  "CMakeFiles/ablation_neighborhood.dir/ablation_neighborhood.cpp.o.d"
  "ablation_neighborhood"
  "ablation_neighborhood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_neighborhood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
