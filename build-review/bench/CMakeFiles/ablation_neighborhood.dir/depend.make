# Empty dependencies file for ablation_neighborhood.
# This may be replaced when dependencies are built.
