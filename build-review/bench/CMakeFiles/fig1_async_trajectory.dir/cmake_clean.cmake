file(REMOVE_RECURSE
  "CMakeFiles/fig1_async_trajectory.dir/fig1_async_trajectory.cpp.o"
  "CMakeFiles/fig1_async_trajectory.dir/fig1_async_trajectory.cpp.o.d"
  "fig1_async_trajectory"
  "fig1_async_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_async_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
