# Empty compiler generated dependencies file for fig1_async_trajectory.
# This may be replaced when dependencies are built.
