// Black-box HTTP conformance of the job plane (DESIGN.md §12): full
// submit → poll → result lifecycle, input validation (400), unknown ids
// (404), method discipline (405), admission control (429 + Retry-After),
// and mid-run cancellation yielding a stopped_early partial result.
// Everything here talks to the server over real sockets — the same path
// external clients use.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "harness/job_runner.hpp"
#include "obs/http_server.hpp"
#include "obs/job_manager.hpp"
#include "obs/obs_server.hpp"
#include "util/json.hpp"
#include "util/telemetry.hpp"
#include "vrptw/generator.hpp"
#include "vrptw/solomon_io.hpp"

namespace tsmo {
namespace {

/// One service instance on an ephemeral port: ObsServer + JobManager wired
/// exactly like `solver_cli --serve-jobs`.
struct JobService {
  explicit JobService(obs::JobManagerConfig config = {})
      : jobs(config, make_job_runner()) {
    server.attach_jobs(&jobs);
    EXPECT_TRUE(server.start()) << server.reason();
    jobs.start();
  }
  ~JobService() {
    jobs.shutdown();
    server.stop();
  }

  int port() const noexcept { return server.port(); }

  /// Issues one request, returns the status and fills `body`.
  int request(const std::string& method, const std::string& path,
              const std::string& payload, std::string& body,
              std::string* raw_out = nullptr) {
    const std::string raw =
        obs::http_request(port(), method, path, payload);
    if (raw_out != nullptr) *raw_out = raw;
    return obs::http_split_response(raw, body);
  }

  obs::JobManager jobs;
  obs::ObsServer server;
};

/// A quick seq job on a generated instance (~milliseconds).
std::string quick_body(std::uint64_t seed = 7,
                       std::int64_t evaluations = 3000) {
  std::ostringstream os;
  os << "{\"instance\": \"R1_1_1\", \"algorithm\": \"seq\", \"params\": "
     << "{\"evaluations\": " << evaluations << ", \"seed\": " << seed
     << "}}";
  return os.str();
}

/// A job big enough to still be running when we cancel it.
std::string long_body() {
  return "{\"instance\": \"R1_1_1\", \"algorithm\": \"seq\", \"params\": "
         "{\"evaluations\": 500000000, \"neighborhood\": 60}}";
}

std::string id_of(const std::string& submit_body) {
  const std::unique_ptr<JsonValue> doc = json_parse(submit_body);
  if (!doc) return "";
  const JsonValue* id = doc->find("id");
  return id != nullptr && id->is_string() ? id->as_string() : "";
}

std::string state_of(JobService& svc, const std::string& id) {
  std::string body;
  if (svc.request("GET", "/jobs/" + id, "", body) != 200) return "";
  const std::unique_ptr<JsonValue> doc = json_parse(body);
  if (!doc) return "";
  const JsonValue* state = doc->find("state");
  return state != nullptr ? state->as_string() : "";
}

/// Polls until the job reaches `want` (or any terminal state when `want`
/// is empty); false on timeout.
bool wait_for_state(JobService& svc, const std::string& id,
                    const std::string& want, int timeout_ms = 30000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string state = state_of(svc, id);
    if (!want.empty() && state == want) return true;
    if (want.empty() && (state == "done" || state == "failed" ||
                         state == "cancelled")) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(JobApi, SubmitPollResultLifecycle) {
  JobService svc;
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(), body), 202) << body;
  const std::string id = id_of(body);
  ASSERT_FALSE(id.empty()) << body;
  EXPECT_NE(body.find("\"state\": \"queued\""), std::string::npos);
  EXPECT_NE(body.find("\"status_url\": \"/jobs/" + id + "\""),
            std::string::npos);

  ASSERT_TRUE(wait_for_state(svc, id, "done"));

  // Terminal status carries the run summary with hex fingerprints.
  ASSERT_EQ(svc.request("GET", "/jobs/" + id, "", body), 200);
  EXPECT_NE(body.find("\"algorithm\": \"sequential\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"trace_fingerprint\": \"0x"), std::string::npos);
  EXPECT_NE(body.find("\"archive_fingerprint\": \"0x"), std::string::npos);
  EXPECT_NE(body.find("\"stopped_early\": false"), std::string::npos);

  // The result is the full RunResult document.
  ASSERT_EQ(svc.request("GET", "/jobs/" + id + "/result", "", body), 200);
  const std::unique_ptr<JsonValue> doc = json_parse(body);
  ASSERT_NE(doc, nullptr) << body.substr(0, 300);
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("algorithm")->as_string(), "sequential");
  EXPECT_EQ(doc->find("instance")->find("name")->as_string(), "R1_1_1");
  EXPECT_EQ(doc->find("evaluations")->as_int64(), 3000);
  ASSERT_NE(doc->find("front"), nullptr);
  EXPECT_GT(doc->find("front")->size(), 0u);
  ASSERT_NE(doc->find("archive_fingerprint"), nullptr);
  EXPECT_EQ(doc->find("archive_fingerprint")->as_string().substr(0, 2),
            "0x");

  // The listing reflects the terminal job and conserves the counters.
  ASSERT_EQ(svc.request("GET", "/jobs", "", body), 200);
  EXPECT_NE(body.find("\"id\": \"" + id + "\""), std::string::npos);
  EXPECT_NE(body.find("\"done\": 1"), std::string::npos) << body;
}

TEST(JobApi, SolomonTextBodyRoundTrips) {
  // Serialize a small generated instance to Solomon text and submit that
  // (bodies >1 KiB also exercise the Expect: 100-continue path).
  GeneratorConfig config;
  config.num_customers = 30;
  config.seed = 11;
  config.name = "job_api_R30";
  const Instance inst = generate_instance(config);
  std::ostringstream solomon;
  write_solomon(solomon, inst);

  std::ostringstream os;
  os << "{\"solomon\": \"" << JsonWriter::escape(solomon.str())
     << "\", \"params\": {\"evaluations\": 2000}}";

  JobService svc;
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", os.str(), body), 202) << body;
  const std::string id = id_of(body);
  ASSERT_TRUE(wait_for_state(svc, id, "done"));
  ASSERT_EQ(svc.request("GET", "/jobs/" + id + "/result", "", body), 200);
  EXPECT_NE(body.find("job_api_R30"), std::string::npos);
}

TEST(JobApi, MalformedSubmissionsGet400) {
  JobService svc;
  std::string body;
  EXPECT_EQ(svc.request("POST", "/jobs", "not json at all", body), 400);
  EXPECT_NE(body.find("error"), std::string::npos);
  EXPECT_EQ(svc.request("POST", "/jobs", "[1, 2, 3]", body), 400);
  EXPECT_EQ(svc.request("POST", "/jobs", "{\"algorithm\": \"seq\"}", body),
            400);
  EXPECT_NE(body.find("instance"), std::string::npos) << body;
  // Nothing was admitted.
  EXPECT_EQ(svc.jobs.stats().accepted, 0u);
}

TEST(JobApi, BadJobParametersFailTheJobNotTheServer) {
  JobService svc;
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs",
                        "{\"instance\": \"NOPE_9_9\"}", body),
            202);
  const std::string bad_instance = id_of(body);
  ASSERT_EQ(svc.request("POST", "/jobs",
                        "{\"instance\": \"R1_1_1\", \"algorithm\": "
                        "\"warp\"}",
                        body),
            202);
  const std::string bad_algorithm = id_of(body);

  ASSERT_TRUE(wait_for_state(svc, bad_instance, "failed"));
  ASSERT_TRUE(wait_for_state(svc, bad_algorithm, "failed"));
  ASSERT_EQ(svc.request("GET", "/jobs/" + bad_algorithm, "", body), 200);
  EXPECT_NE(body.find("unknown algorithm"), std::string::npos) << body;
  // A failed job has no result document.
  EXPECT_EQ(svc.request("GET", "/jobs/" + bad_instance + "/result", "",
                        body),
            500);
  // The plane is still healthy.
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(), body), 202);
  ASSERT_TRUE(wait_for_state(svc, id_of(body), "done"));
}

TEST(JobApi, UnknownIdsGet404) {
  JobService svc;
  std::string body;
  EXPECT_EQ(svc.request("GET", "/jobs/job-999", "", body), 404);
  EXPECT_EQ(svc.request("GET", "/jobs/job-999/result", "", body), 404);
  EXPECT_EQ(svc.request("DELETE", "/jobs/job-999", "", body), 404);
  EXPECT_EQ(svc.request("GET", "/jobs/banana", "", body), 404);
  EXPECT_EQ(svc.request("GET", "/jobs/job-", "", body), 404);
}

TEST(JobApi, WrongMethodsGet405) {
  JobService svc;
  std::string body;
  EXPECT_EQ(svc.request("PUT", "/jobs", "{}", body), 405);
  EXPECT_EQ(svc.request("DELETE", "/jobs", "", body), 405);
  EXPECT_EQ(svc.request("POST", "/jobs/job-1", "{}", body), 405);
  // The read-only plane rejects mutations too.
  EXPECT_EQ(svc.request("POST", "/metrics", "", body), 405);
}

TEST(JobApi, FullQueueGets429WithRetryAfter) {
  obs::JobManagerConfig config;
  config.queue_capacity = 1;
  config.executors = 1;
  config.retry_after_seconds = 3;
  JobService svc(config);

  // One long job occupies the single executor; the next fills the queue;
  // the third must be refused with backpressure advice.
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", long_body(), body), 202);
  const std::string running = id_of(body);
  ASSERT_TRUE(wait_for_state(svc, running, "running"));
  ASSERT_EQ(svc.request("POST", "/jobs", long_body(), body), 202);
  const std::string queued = id_of(body);

  std::string raw;
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(), body, &raw), 429)
      << body;
  EXPECT_EQ(obs::http_header(raw, "Retry-After"), "3") << raw;
  EXPECT_NE(body.find("queue full"), std::string::npos);
  EXPECT_EQ(svc.jobs.stats().rejected, 1u);

  // Cancel both so teardown is prompt.
  EXPECT_EQ(svc.request("DELETE", "/jobs/" + queued, "", body), 202);
  EXPECT_NE(body.find("\"state\": \"cancelled\""), std::string::npos);
  EXPECT_EQ(svc.request("DELETE", "/jobs/" + running, "", body), 202);
  ASSERT_TRUE(wait_for_state(svc, running, "cancelled"));

  // Rejected submissions never appear in the registry.
  ASSERT_EQ(svc.request("GET", "/jobs", "", body), 200);
  EXPECT_EQ(body.find("job-3"), std::string::npos) << body;
}

TEST(JobApi, MidRunCancelYieldsStoppedEarlyPartialResult) {
  JobService svc;
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", long_body(), body), 202);
  const std::string id = id_of(body);
  ASSERT_TRUE(wait_for_state(svc, id, "running"));

  // Result is not ready while the job runs: 409 with the status document.
  ASSERT_EQ(svc.request("GET", "/jobs/" + id + "/result", "", body), 409);
  EXPECT_NE(body.find("\"state\": \"running\""), std::string::npos);

  ASSERT_EQ(svc.request("DELETE", "/jobs/" + id, "", body), 202);
  EXPECT_NE(body.find("\"cancel_requested\": true"), std::string::npos);
  ASSERT_TRUE(wait_for_state(svc, id, "cancelled"));

  // The drained engine left a partial RunResult with stopped_early set.
  ASSERT_EQ(svc.request("GET", "/jobs/" + id + "/result", "", body), 200);
  const std::unique_ptr<JsonValue> doc = json_parse(body);
  ASSERT_NE(doc, nullptr) << body.substr(0, 300);
  ASSERT_NE(doc->find("stopped_early"), nullptr) << body.substr(0, 300);
  EXPECT_TRUE(doc->find("stopped_early")->as_bool());
  // Far fewer evaluations than the (absurd) budget: it really stopped.
  EXPECT_LT(doc->find("evaluations")->as_int64(), 500000000);

  // Cancelling a terminal job is refused.
  EXPECT_EQ(svc.request("DELETE", "/jobs/" + id, "", body), 409);
}

TEST(JobApi, CancelQueuedJobNeverRuns) {
  obs::JobManagerConfig config;
  config.queue_capacity = 4;
  config.executors = 1;
  JobService svc(config);

  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", long_body(), body), 202);
  const std::string running = id_of(body);
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(), body), 202);
  const std::string queued = id_of(body);

  ASSERT_EQ(svc.request("DELETE", "/jobs/" + queued, "", body), 202);
  EXPECT_EQ(state_of(svc, queued), "cancelled");
  // No result ever existed for it.
  EXPECT_EQ(svc.request("GET", "/jobs/" + queued + "/result", "", body),
            409);

  ASSERT_EQ(svc.request("DELETE", "/jobs/" + running, "", body), 202);
  ASSERT_TRUE(wait_for_state(svc, running, "cancelled"));
  const obs::JobManager::Stats stats = svc.jobs.stats();
  EXPECT_EQ(stats.cancelled, 2u);
  EXPECT_EQ(stats.done, 0u);
}

TEST(JobApi, MetricsExposeJobCounters) {
  JobService svc;
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(), body), 202);
  ASSERT_TRUE(wait_for_state(svc, id_of(body), "done"));
  ASSERT_EQ(svc.request("GET", "/metrics", "", body), 200);
  EXPECT_NE(body.find("tsmo_jobs_accepted_total 1"), std::string::npos)
      << body.substr(0, 400);
  EXPECT_NE(body.find("tsmo_jobs_done_total 1"), std::string::npos);
  EXPECT_NE(body.find("tsmo_jobs_queue_depth 0"), std::string::npos);
  ASSERT_EQ(svc.request("GET", "/", "", body), 200);
  EXPECT_NE(body.find("/jobs"), std::string::npos);
}

TEST(JobApi, TraceExportIsValidChromeTraceWithRootedSpans) {
  JobService svc;
  std::string body;
  // telemetry: true so engine/worker spans join the manager skeleton.
  ASSERT_EQ(svc.request("POST", "/jobs",
                        "{\"instance\": \"R1_1_1\", \"algorithm\": \"seq\", "
                        "\"params\": {\"evaluations\": 3000, \"telemetry\": "
                        "true}}",
                        body),
            202)
      << body;
  const std::string id = id_of(body);
  // The submit receipt advertises the causal ids and the trace endpoint.
  EXPECT_NE(body.find("\"trace_id\": \"0x"), std::string::npos) << body;
  EXPECT_NE(body.find("\"trace_url\": \"/jobs/" + id + "/trace\""),
            std::string::npos)
      << body;
  ASSERT_TRUE(wait_for_state(svc, id, "done"));

  ASSERT_EQ(svc.request("GET", "/jobs/" + id + "/trace", "", body), 200);
  std::string err;
  const std::unique_ptr<JsonValue> doc = json_parse(body, &err);
  ASSERT_NE(doc, nullptr) << err << "\n" << body.substr(0, 300);
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  const JsonValue* other = doc->find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("job")->as_string(), id);
  EXPECT_EQ(other->find("state")->as_string(), "done");
  const std::string trace_id = other->find("trace_id")->as_string();
  EXPECT_EQ(trace_id.substr(0, 2), "0x");
  EXPECT_NE(trace_id, "0x0000000000000000");
  EXPECT_GE(other->find("span_budget")->as_int64(), 1);
  EXPECT_GE(other->find("dropped_spans")->as_int64(), 0);

  // Every span event carries the job's trace id; parent links form a tree
  // with exactly one root (the "job" span, parent 0).
  std::set<std::string> span_ids;
  std::set<std::string> names;
  for (const JsonValue& ev : events->items()) {
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "M") continue;  // process metadata
    const JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("trace"), nullptr);
    EXPECT_EQ(args->find("trace")->as_string(), trace_id);
    span_ids.insert(args->find("span")->as_string());
    names.insert(ev.find("name")->as_string());
  }
  EXPECT_TRUE(names.count("job") == 1 && names.count("job.run") == 1 &&
              names.count("job.queue_wait") == 1)
      << body.substr(0, 500);
  int roots = 0;
  for (const JsonValue& ev : events->items()) {
    if (ev.find("ph")->as_string() == "M") continue;
    const std::string parent = ev.find("args")->find("parent")->as_string();
    if (parent == "0x0000000000000000") {
      ++roots;
      EXPECT_EQ(ev.find("name")->as_string(), "job");
    } else {
      EXPECT_EQ(span_ids.count(parent), 1u)
          << ev.find("name")->as_string() << " dangles from " << parent;
    }
  }
  EXPECT_EQ(roots, 1);
#if TSMO_TELEMETRY_ENABLED
  // With telemetry compiled in and requested, engine spans join the tree
  // under job.run.
  EXPECT_TRUE(names.count("run.sequential") == 1) << body.substr(0, 500);
#endif
}

TEST(JobApi, ConcurrentJobsGetDistinctTraceIds) {
  JobService svc;
  std::string body;
  // Identical bodies (same seed): trace ids must still differ per job.
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(7), body), 202);
  const std::string first = id_of(body);
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(7), body), 202);
  const std::string second = id_of(body);
  ASSERT_TRUE(wait_for_state(svc, first, "done"));
  ASSERT_TRUE(wait_for_state(svc, second, "done"));

  const auto trace_of = [&](const std::string& id) {
    std::string status;
    EXPECT_EQ(svc.request("GET", "/jobs/" + id, "", status), 200);
    const std::unique_ptr<JsonValue> doc = json_parse(status);
    if (!doc || doc->find("trace_id") == nullptr) return std::string();
    return doc->find("trace_id")->as_string();
  };
  const std::string t1 = trace_of(first);
  const std::string t2 = trace_of(second);
  EXPECT_EQ(t1.substr(0, 2), "0x");
  EXPECT_NE(t1, "0x0000000000000000");
  EXPECT_NE(t2, "0x0000000000000000");
  EXPECT_NE(t1, t2);
}

TEST(JobApi, MetricsCarryRedHistogramsWithExemplars) {
  JobService svc;
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(), body), 202);
  ASSERT_TRUE(wait_for_state(svc, id_of(body), "done"));

  ASSERT_EQ(svc.request("GET", "/metrics", "", body), 200);
  EXPECT_NE(body.find("tsmo_http_requests_total{route=\"/jobs\","
                      "method=\"POST\",code=\"202\"} 1"),
            std::string::npos)
      << body.substr(0, 600);
  EXPECT_NE(body.find("tsmo_http_request_duration_seconds_bucket{"
                      "route=\"/jobs\",method=\"POST\""),
            std::string::npos);
  EXPECT_NE(body.find("tsmo_http_request_duration_seconds_count{"
                      "route=\"/jobs\",method=\"POST\"} 1"),
            std::string::npos);
  // The POST carried the job's trace id, so its slowest bucket must carry
  // an exemplar naming trace and job.
  EXPECT_NE(body.find(" # {trace_id=\"0x"), std::string::npos)
      << body.substr(0, 600);
  EXPECT_NE(body.find(",job=\"job-1\"}"), std::string::npos);
  // Cumulative histogram closes with +Inf.
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);
}

TEST(JobApi, HealthzReportsTheJobPlane) {
  obs::JobManagerConfig config;
  config.queue_capacity = 9;
  config.executors = 2;
  JobService svc(config);
  std::string body;
  ASSERT_EQ(svc.request("POST", "/jobs", quick_body(), body), 202);
  ASSERT_TRUE(wait_for_state(svc, id_of(body), "done"));

  ASSERT_EQ(svc.request("GET", "/healthz", "", body), 200);
  const std::unique_ptr<JsonValue> doc = json_parse(body);
  ASSERT_NE(doc, nullptr) << body;
  const JsonValue* jobs = doc->find("jobs");
  ASSERT_NE(jobs, nullptr) << body;
  EXPECT_EQ(jobs->find("queue_depth")->as_int64(), 0);
  EXPECT_EQ(jobs->find("queue_capacity")->as_int64(), 9);
  EXPECT_EQ(jobs->find("executors")->as_int64(), 2);
  EXPECT_EQ(jobs->find("running")->as_int64(), 0);
  EXPECT_EQ(jobs->find("accepted")->as_int64(), 1);
  EXPECT_EQ(jobs->find("done")->as_int64(), 1);
}

}  // namespace
}  // namespace tsmo
