#include "parallel/worker_team.hpp"

#include <gtest/gtest.h>

#include <set>

#include "construct/i1_insertion.hpp"
#include "vrptw/generator.hpp"

namespace tsmo {
namespace {

class WorkerTeamTest : public ::testing::Test {
 protected:
  WorkerTeamTest() : inst_(generate_named("R1_1_1")) {}

  std::shared_ptr<const Solution> base() {
    Rng rng(3);
    return std::make_shared<const Solution>(
        construct_i1_random(inst_, rng));
  }

  Instance inst_;
};

TEST_F(WorkerTeamTest, RoundTripsOneRequest) {
  WorkerTeam team(inst_, 2, 7);
  team.submit(GenRequest{base(), 25, 99});
  const auto result = team.collect();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->ticket, 99u);
  EXPECT_EQ(result->candidates.size(), 25u);
  EXPECT_GE(result->worker_id, 0);
  EXPECT_LT(result->worker_id, 2);
}

TEST_F(WorkerTeamTest, AllRequestsAnswered) {
  WorkerTeam team(inst_, 3, 7);
  const auto b = base();
  std::set<std::uint64_t> tickets;
  for (std::uint64_t t = 1; t <= 12; ++t) {
    team.submit(GenRequest{b, 10, t});
  }
  std::size_t total = 0;
  for (int i = 0; i < 12; ++i) {
    const auto r = team.collect();
    ASSERT_TRUE(r.has_value());
    tickets.insert(r->ticket);
    total += r->candidates.size();
  }
  EXPECT_EQ(tickets.size(), 12u);
  EXPECT_EQ(total, 120u);
}

TEST_F(WorkerTeamTest, CandidatesAreValidAgainstBase) {
  WorkerTeam team(inst_, 2, 7);
  const auto b = base();
  team.submit(GenRequest{b, 30, 1});
  const auto result = team.collect();
  ASSERT_TRUE(result.has_value());
  MoveEngine engine(inst_);
  for (const Candidate& c : result->candidates) {
    EXPECT_EQ(c.base.get(), b.get());
    EXPECT_TRUE(engine.applicable(*b, c.move));
    const Solution s = materialize(engine, c);
    EXPECT_EQ(s.objectives(), c.obj);
  }
}

TEST_F(WorkerTeamTest, TryCollectNonBlocking) {
  WorkerTeam team(inst_, 1, 7);
  EXPECT_FALSE(team.try_collect().has_value());
  team.submit(GenRequest{base(), 5, 1});
  // Eventually the result must appear.
  std::optional<GenResult> r;
  for (int spin = 0; spin < 1000 && !r; ++spin) {
    r = team.collect_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(r.has_value());
}

TEST_F(WorkerTeamTest, CleanShutdownWithPendingRequests) {
  const auto b = base();
  {
    WorkerTeam team(inst_, 2, 7);
    for (int i = 0; i < 20; ++i) team.submit(GenRequest{b, 50, 1});
    // Destructor must join without deadlock even with work outstanding.
  }
  SUCCEED();
}

TEST_F(WorkerTeamTest, AtLeastOneWorker) {
  WorkerTeam team(inst_, 0, 7);
  EXPECT_EQ(team.num_workers(), 1);
}

}  // namespace
}  // namespace tsmo
