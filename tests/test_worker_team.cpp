#include "parallel/worker_team.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "construct/i1_insertion.hpp"
#include "util/rng.hpp"
#include "vrptw/generator.hpp"

namespace tsmo {
namespace {

class WorkerTeamTest : public ::testing::Test {
 protected:
  WorkerTeamTest() : inst_(generate_named("R1_1_1")) {}

  std::shared_ptr<const Solution> base() {
    Rng rng(3);
    return std::make_shared<const Solution>(
        construct_i1_random(inst_, rng));
  }

  Instance inst_;
};

TEST_F(WorkerTeamTest, RoundTripsOneRequest) {
  WorkerTeam team(inst_, 2, 7);
  team.submit(GenRequest{base(), 25, 99});
  const auto result = team.collect();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->ticket, 99u);
  EXPECT_EQ(result->candidates.size(), 25u);
  EXPECT_GE(result->worker_id, 0);
  EXPECT_LT(result->worker_id, 2);
}

TEST_F(WorkerTeamTest, AllRequestsAnswered) {
  WorkerTeam team(inst_, 3, 7);
  const auto b = base();
  std::set<std::uint64_t> tickets;
  for (std::uint64_t t = 1; t <= 12; ++t) {
    team.submit(GenRequest{b, 10, t});
  }
  std::size_t total = 0;
  for (int i = 0; i < 12; ++i) {
    const auto r = team.collect();
    ASSERT_TRUE(r.has_value());
    tickets.insert(r->ticket);
    total += r->candidates.size();
  }
  EXPECT_EQ(tickets.size(), 12u);
  EXPECT_EQ(total, 120u);
}

TEST_F(WorkerTeamTest, CandidatesAreValidAgainstBase) {
  WorkerTeam team(inst_, 2, 7);
  const auto b = base();
  team.submit(GenRequest{b, 30, 1});
  const auto result = team.collect();
  ASSERT_TRUE(result.has_value());
  MoveEngine engine(inst_);
  for (const Candidate& c : result->candidates) {
    EXPECT_EQ(c.base.get(), b.get());
    EXPECT_TRUE(engine.applicable(*b, c.move));
    const Solution s = materialize(engine, c);
    EXPECT_EQ(s.objectives(), c.obj);
  }
}

TEST_F(WorkerTeamTest, TryCollectNonBlocking) {
  WorkerTeam team(inst_, 1, 7);
  EXPECT_FALSE(team.try_collect().has_value());
  team.submit(GenRequest{base(), 5, 1});
  // Eventually the result must appear.
  std::optional<GenResult> r;
  for (int spin = 0; spin < 1000 && !r; ++spin) {
    r = team.collect_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(r.has_value());
}

TEST_F(WorkerTeamTest, CleanShutdownWithPendingRequests) {
  const auto b = base();
  {
    WorkerTeam team(inst_, 2, 7);
    for (int i = 0; i < 20; ++i) team.submit(GenRequest{b, 50, 1});
    // Destructor must join without deadlock even with work outstanding.
  }
  SUCCEED();
}

TEST_F(WorkerTeamTest, AtLeastOneWorker) {
  WorkerTeam team(inst_, 0, 7);
  EXPECT_EQ(team.num_workers(), 1);
}

TEST_F(WorkerTeamTest, SeededRequestsIndependentOfTeamSize) {
  // A seeded request is a pure function of (seed, base, count): two teams
  // of different sizes must return identical candidates for it.  This is
  // the primitive the deterministic engine modes are built on.
  const auto b = base();
  auto run_with = [&](int workers) {
    WorkerTeam team(inst_, workers, /*seed=*/1234 + workers);
    std::vector<GenResult> results;
    for (std::uint64_t t = 1; t <= 6; ++t) {
      team.submit(GenRequest{b, 15, t, 0xabc0ffee00ULL + t, true});
    }
    for (int i = 0; i < 6; ++i) {
      auto r = team.collect();
      EXPECT_TRUE(r.has_value());
      if (r) results.push_back(std::move(*r));
    }
    std::sort(results.begin(), results.end(),
              [](const GenResult& x, const GenResult& y) {
                return x.ticket < y.ticket;
              });
    return results;
  };
  const auto one = run_with(1);
  const auto four = run_with(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t r = 0; r < one.size(); ++r) {
    ASSERT_EQ(one[r].candidates.size(), four[r].candidates.size());
    for (std::size_t c = 0; c < one[r].candidates.size(); ++c) {
      EXPECT_EQ(one[r].candidates[c].move, four[r].candidates[c].move);
      EXPECT_EQ(one[r].candidates[c].obj, four[r].candidates[c].obj);
    }
  }
}

TEST_F(WorkerTeamTest, ChurnConcurrentSubmittersShutdownMidFlight) {
  // Team churn designed for the TSan job: concurrent submitters racing a
  // collector, teams destroyed with work still in flight, repeatedly.
  const auto b = base();
  for (int round = 0; round < 6; ++round) {
    std::atomic<int> submitted{0};
    int collected = 0;
    {
      WorkerTeam team(inst_, 3, static_cast<std::uint64_t>(7 + round));
      std::vector<std::thread> submitters;
      for (int s = 0; s < 2; ++s) {
        submitters.emplace_back([&, s] {
          Rng rng(static_cast<std::uint64_t>(round * 10 + s));
          for (std::uint64_t t = 1; t <= 10; ++t) {
            team.submit(GenRequest{b, 12, t});
            submitted.fetch_add(1, std::memory_order_relaxed);
            if (rng.below(3) == 0) {
              std::this_thread::sleep_for(
                  std::chrono::microseconds(rng.below(200)));
            }
          }
        });
      }
      // Collect roughly half the traffic, leaving the rest in flight when
      // the team is torn down.
      for (int i = 0; i < 10; ++i) {
        if (team.collect_for(std::chrono::milliseconds(20))) ++collected;
      }
      for (std::thread& t : submitters) t.join();
    }  // destructor joins workers with requests still queued
    EXPECT_EQ(submitted.load(), 20);
    EXPECT_LE(collected, 20);
  }
}

}  // namespace
}  // namespace tsmo
